//! Criterion benches for the table-reproduction harness itself: the
//! cost of one Monte-Carlo cell (simulate + filter + all three
//! property checks) for each table.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use rcm_sim::montecarlo::{evaluate_cell, FilterKind, ScenarioKind, Topology};

fn bench_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables/cell_3_runs");
    g.sample_size(10);
    for (name, kind, topo, filter) in [
        ("table1_aggr_ad1", ScenarioKind::LossyAggressive, Topology::SingleVar, FilterKind::Ad1),
        ("table2_aggr_ad2", ScenarioKind::LossyAggressive, Topology::SingleVar, FilterKind::Ad2),
        ("table1'_aggr_ad3", ScenarioKind::LossyAggressive, Topology::SingleVar, FilterKind::Ad3),
        ("table2'_aggr_ad4", ScenarioKind::LossyAggressive, Topology::SingleVar, FilterKind::Ad4),
        ("table3_aggr_ad5", ScenarioKind::LossyAggressive, Topology::MultiVar, FilterKind::Ad5),
        ("table3'_aggr_ad6", ScenarioKind::LossyAggressive, Topology::MultiVar, FilterKind::Ad6),
        ("thm10_lossless_ad1", ScenarioKind::Lossless, Topology::MultiVar, FilterKind::Ad1),
    ] {
        g.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                evaluate_cell(black_box(kind), topo, filter, 3, seed)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cells);
criterion_main!(benches);
