//! Criterion benches for the paper's sequence mathematics (§2.2):
//! ordered union, subsequence tests, spanning sets, projections and
//! interleaving enumeration.

use std::collections::BTreeSet;
use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use rcm_core::seq::{interleavings, is_ordered, is_subsequence, ordered_union, phi, spanning_gaps};

fn evens(n: u64) -> Vec<u64> {
    (0..n).map(|i| i * 2).collect()
}

fn odds(n: u64) -> Vec<u64> {
    (0..n).map(|i| i * 2 + 1).collect()
}

fn bench_sequences(c: &mut Criterion) {
    let a = evens(1000);
    let b = odds(1000);
    c.bench_function("seq/ordered_union/1k+1k", |bch| {
        bch.iter(|| ordered_union(black_box(&a), black_box(&b)))
    });

    let sup = ordered_union(&a, &b);
    c.bench_function("seq/is_subsequence/1k_in_2k", |bch| {
        bch.iter(|| is_subsequence(black_box(&a), black_box(&sup)))
    });

    c.bench_function("seq/is_ordered/2k", |bch| bch.iter(|| is_ordered(black_box(&sup))));

    c.bench_function("seq/phi/2k", |bch| bch.iter(|| phi(black_box(&sup))));

    let sparse: BTreeSet<u64> = (0..200u64).map(|i| i * 7).collect();
    c.bench_function("seq/spanning_gaps/200_sparse", |bch| {
        bch.iter(|| spanning_gaps(black_box(&sparse)))
    });

    let left = evens(6);
    let right = odds(6);
    c.bench_function("seq/interleavings/6x6_enumerate", |bch| {
        bch.iter(|| interleavings(black_box(&left), black_box(&right)).count())
    });
}

criterion_group!(benches, bench_sequences);
criterion_main!(benches);
