//! Criterion benches for the alert hot path: inline fingerprint
//! construction vs the old per-call `Vec` rebuild, and the
//! interval-backed AD-3/AD-6 consistency bookkeeping vs the retained
//! BTreeSet reference ([`BTreeConsistency`]).
//!
//! Two stream shapes matter. The simulated arrivals mirror the paper's
//! table scenarios (short runs, realistic loss); the synthetic marching
//! stream is thousands of alerts with monotonically growing seqnos and
//! periodic gaps, which is where the reference's per-seqno
//! `Received`/`Missed` sets grow without bound while the interval
//! representation stays at a handful of runs.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rcm_bench::executions;
use rcm_core::ad::{apply_filter, Ad3, Ad6, AlertFilter, BTreeConsistency};
use rcm_core::{
    Alert, AlertId, CeId, CondId, HistoryFingerprint, HistorySet, SeqNo, Update, VarId,
};
use rcm_sim::montecarlo::{ScenarioKind, Topology};

fn single_var_arrivals() -> Vec<Alert> {
    executions(ScenarioKind::LossyAggressive, Topology::SingleVar, 300, 7)
        .into_iter()
        .flat_map(|e| e.arrivals)
        .collect()
}

fn multi_var_arrivals() -> Vec<Alert> {
    executions(ScenarioKind::LossyAggressive, Topology::MultiVar, 300, 7)
        .into_iter()
        .flat_map(|e| e.arrivals)
        .collect()
}

/// A long stream of degree-2 alerts whose histories march upward with a
/// gap every eighth step (so both `Received` and `Missed` keep growing
/// under the per-seqno reference representation).
fn marching_arrivals(n: u64) -> Vec<Alert> {
    let x = VarId::new(0);
    let mut seq = 1u64;
    (0..n)
        .map(|i| {
            let prev = seq;
            seq += if i % 8 == 7 { 2 } else { 1 };
            Alert::new(
                CondId::SINGLE,
                HistoryFingerprint::single(x, vec![SeqNo::new(seq), SeqNo::new(prev)]),
                vec![],
                AlertId { ce: CeId::new(0), index: i },
            )
        })
        .collect()
}

fn bench_fingerprint(c: &mut Criterion) {
    let x = VarId::new(0);
    let y = VarId::new(1);
    let mut set = HistorySet::new([(x, 3), (y, 3)]);
    for s in 1..=5u64 {
        set.push(Update::new(x, s, s as f64)).unwrap();
        set.push(Update::new(y, s, -(s as f64))).unwrap();
    }

    let mut g = c.benchmark_group("hotpath/fingerprint");
    g.bench_function("inline", |b| b.iter(|| black_box(&set).fingerprint()));
    g.bench_function("vec_rebuild", |b| {
        // The pre-inline path: every history's seqnos collected into a
        // fresh Vec, then the entry list into another.
        b.iter(|| {
            let entries: Vec<(VarId, Vec<SeqNo>)> =
                black_box(&set).iter().map(|h| (h.var(), h.seqnos().to_vec())).collect();
            HistoryFingerprint::new(entries)
        })
    });
    g.finish();
}

fn run_filter<F: AlertFilter>(b: &mut criterion::Bencher, mk: impl Fn() -> F, s: &[Alert]) {
    b.iter(|| {
        let mut f = mk();
        apply_filter(&mut f, black_box(s)).len()
    })
}

fn bench_consistency_filters(c: &mut Criterion) {
    let x = VarId::new(0);
    let y = VarId::new(1);
    let single = single_var_arrivals();
    let multi = multi_var_arrivals();
    let marching = marching_arrivals(4_000);

    let mut g = c.benchmark_group("hotpath/ad3_offer");
    g.throughput(Throughput::Elements(single.len() as u64));
    g.bench_function("interval", |b| run_filter(b, || Ad3::new(x), &single));
    g.bench_function("btree_reference", |b| {
        run_filter(b, || Ad3::<BTreeConsistency>::with_state(x), &single)
    });
    g.finish();

    let mut g = c.benchmark_group("hotpath/ad6_offer");
    g.throughput(Throughput::Elements(multi.len() as u64));
    g.bench_function("interval", |b| run_filter(b, || Ad6::new([x, y]), &multi));
    g.bench_function("btree_reference", |b| {
        run_filter(b, || Ad6::<BTreeConsistency>::with_state([x, y]), &multi)
    });
    g.finish();

    let mut g = c.benchmark_group("hotpath/ad3_marching");
    g.throughput(Throughput::Elements(marching.len() as u64));
    g.bench_function("interval", |b| run_filter(b, || Ad3::new(x), &marching));
    g.bench_function("btree_reference", |b| {
        run_filter(b, || Ad3::<BTreeConsistency>::with_state(x), &marching)
    });
    g.finish();
}

criterion_group!(benches, bench_fingerprint, bench_consistency_filters);
criterion_main!(benches);
