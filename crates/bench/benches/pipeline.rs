//! Criterion benches for the CE's shard-parallel evaluation pipeline:
//! the same `rcm_bench::throughput` workload evaluated by the
//! single-threaded registry (the inline actor path) and by
//! [`EvalPipeline`] at 1 / 4 / 8 workers, over 100 and 10 000 hosted
//! conditions.
//!
//! Every pipelined pass first asserts byte-identical output against
//! the single-threaded reference — a slow pipeline is a bench
//! regression, a divergent one is a correctness bug and panics here.
//!
//! The workload is shared verbatim with `bench_snapshot` (which feeds
//! the `pipeline` section of `BENCH_rcm.json`; `bench_gate` floors
//! `speedup_4` at 2× for the 10k-condition cell).

use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rcm_bench::throughput::{conditions, stream};
use rcm_core::condition::Condition;
use rcm_core::{Alert, CeId, ConditionRegistry, LatencyHistogram, Update};
use rcm_runtime::{AlertDrain, EvalPipeline, PipelineOptions};

/// Drain that only counts alerts — the cheapest observable sink, so
/// the measurement stays on evaluation + merge, not on sink work.
struct CountDrain(Arc<AtomicU64>);

impl AlertDrain for CountDrain {
    fn alerts(&mut self, alerts: Vec<Alert>) {
        self.0.fetch_add(alerts.len() as u64, Ordering::Relaxed);
    }
    fn end_of_stream(&mut self) {}
}

/// Drain that keeps every alert, for the pre-timing equivalence check.
struct VecDrain(Arc<Mutex<Vec<Alert>>>);

impl AlertDrain for VecDrain {
    fn alerts(&mut self, alerts: Vec<Alert>) {
        self.0.lock().expect("bench drain lock").extend(alerts);
    }
    fn end_of_stream(&mut self) {}
}

/// One full pipelined pass: start, feed every update on the blocking
/// (never-shedding) path, drain and join.
fn pipeline_pass(
    conds: &[Arc<dyn Condition>],
    updates: &[Update],
    workers: usize,
    drain: Box<dyn AlertDrain>,
) {
    let mut pipe = EvalPipeline::start(
        CeId::new(0),
        conds,
        &PipelineOptions::with_workers(workers),
        drain,
        Arc::new(LatencyHistogram::new()),
        Arc::new(AtomicU64::new(0)),
    );
    for &u in updates {
        pipe.dispatch_wait(u);
    }
    pipe.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    for (label, n_conds, n_updates) in [("conds_100", 100, 2048), ("conds_10k", 10_000, 256)] {
        let (compiled, ids) = conditions(n_conds);
        let updates = stream(&ids, n_updates);
        let conds: Vec<Arc<dyn Condition>> =
            compiled.iter().map(|c| Arc::new(c.clone()) as Arc<dyn Condition>).collect();

        // The inline reference — and the equivalence oracle.
        let mut registry = ConditionRegistry::new(CeId::new(0));
        for c in &conds {
            registry.add(Arc::clone(c));
        }
        let mut want = Vec::new();
        registry.ingest_batch(&updates, &mut want);
        for workers in [1usize, 4, 8] {
            let got = Arc::new(Mutex::new(Vec::new()));
            pipeline_pass(&conds, &updates, workers, Box::new(VecDrain(Arc::clone(&got))));
            let got = got.lock().expect("bench drain lock");
            assert_eq!(
                *got, want,
                "{label}: {workers}-worker pipeline diverged from the single-threaded registry"
            );
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.id, w.id, "{label}: AlertId numbering diverged at {workers} workers");
            }
        }

        let mut g = c.benchmark_group(format!("pipeline/{label}"));
        g.throughput(Throughput::Elements(n_updates as u64));
        let mut out: Vec<Alert> = Vec::new();
        g.bench_function("inline", |b| {
            b.iter(|| {
                registry.restart();
                out.clear();
                registry.ingest_batch(black_box(&updates), &mut out);
                out.len()
            })
        });
        for workers in [1usize, 4, 8] {
            g.bench_function(format!("workers_{workers}"), |b| {
                b.iter(|| {
                    let count = Arc::new(AtomicU64::new(0));
                    pipeline_pass(
                        &conds,
                        black_box(&updates),
                        workers,
                        Box::new(CountDrain(Arc::clone(&count))),
                    );
                    count.load(Ordering::Relaxed)
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
