//! Criterion benches for the multi-condition engine's ingest
//! throughput: a [`ConditionRegistry`] hosting 1 / 100 / 10 000
//! compiled conditions over one shared update stream, evaluated
//! incrementally (per-node caches with dirty bits) vs with a full
//! expression walk per routed arrival — plus the sharded registry at
//! several shard counts to show the merge overhead is paid back.
//!
//! The workload is `rcm_bench::throughput`, shared verbatim with
//! `bench_snapshot` (which feeds `BENCH_rcm.json`) and the
//! `throughput_smoke` CI check.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rcm_bench::throughput::{conditions, stream};
use rcm_core::condition::Condition;
use rcm_core::{Alert, CeId, ConditionRegistry};
use rcm_sim::shard::ShardedRegistry;

fn bench_registry(c: &mut Criterion) {
    for (label, n_conds, n_updates) in
        [("conds_1", 1, 4096), ("conds_100", 100, 2048), ("conds_10k", 10_000, 256)]
    {
        let (conds, ids) = conditions(n_conds);
        let updates = stream(&ids, n_updates);

        let mut incremental = ConditionRegistry::new(CeId::new(0));
        let mut full = ConditionRegistry::new(CeId::new(0));
        for cond in &conds {
            incremental.add_compiled(cond.clone());
            full.add(Arc::new(cond.clone()) as Arc<dyn Condition>);
        }

        let mut g = c.benchmark_group(format!("throughput/{label}"));
        g.throughput(Throughput::Elements(n_updates as u64));
        if n_conds >= 10_000 {
            g.sample_size(10);
        }
        let mut out: Vec<Alert> = Vec::new();
        g.bench_function("incremental", |b| {
            b.iter(|| {
                incremental.restart();
                out.clear();
                incremental.ingest_batch(black_box(&updates), &mut out);
                out.len()
            })
        });
        g.bench_function("full_reeval", |b| {
            b.iter(|| {
                full.restart();
                out.clear();
                full.ingest_batch(black_box(&updates), &mut out);
                out.len()
            })
        });
        g.finish();
    }
}

fn bench_sharded(c: &mut Criterion) {
    let (conds, ids) = conditions(10_000);
    let updates = stream(&ids, 256);
    let mut g = c.benchmark_group("throughput/sharded_10k");
    g.throughput(Throughput::Elements(updates.len() as u64));
    g.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        let mut reg = ShardedRegistry::from_compiled(CeId::new(0), conds.iter().cloned(), shards);
        let mut out: Vec<Alert> = Vec::new();
        g.bench_function(format!("shards_{shards}"), |b| {
            b.iter(|| {
                reg.restart();
                out.clear();
                reg.ingest_batch(black_box(&updates), &mut out);
                out.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_registry, bench_sharded);
criterion_main!(benches);
