//! Criterion benches for the discrete-event simulator and the
//! availability experiment.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rcm_sim::availability::{measure, AvailabilityConfig};
use rcm_sim::montecarlo::{build_scenario, ScenarioKind, Topology};
use rcm_sim::run;

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/run");
    for kind in
        [ScenarioKind::Lossless, ScenarioKind::LossyNonHistorical, ScenarioKind::LossyAggressive]
    {
        g.bench_function(format!("single_var/{kind:?}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run(black_box(build_scenario(kind, Topology::SingleVar, seed))).stats.alerts_emitted
            })
        });
    }
    g.bench_function("multi_var/LossyAggressive", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run(black_box(build_scenario(ScenarioKind::LossyAggressive, Topology::MultiVar, seed)))
                .stats
                .alerts_emitted
        })
    });
    g.finish();

    // A long stream to measure steady-state event throughput.
    let mut g = c.benchmark_group("sim/long_stream");
    let updates = 2_000u64;
    g.throughput(Throughput::Elements(updates));
    g.sample_size(20);
    g.bench_function("2k_updates_2_replicas", |b| {
        b.iter(|| {
            let mut sc = build_scenario(ScenarioKind::LossyAggressive, Topology::SingleVar, 3);
            sc.workloads[0].updates = updates;
            run(black_box(sc)).stats.alerts_emitted
        })
    });
    g.finish();

    let mut g = c.benchmark_group("sim/availability");
    g.sample_size(10);
    g.bench_function("measure_point", |b| {
        b.iter(|| {
            measure(black_box(AvailabilityConfig {
                replicas: 2,
                downtime: 0.3,
                link_loss: 0.1,
                updates: 60,
                runs: 5,
                seed: 9,
            }))
            .missed_fraction()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
