//! Criterion benches for the wire codecs: encode∘decode throughput of
//! update traffic as JSON frames, binary frames, and binary
//! `UpdateBatch` frames (the deployment configuration the transport
//! defaults aim at). Alert frames get the same treatment at a smaller
//! scale — alerts are rarer but much wider on the wire.
//!
//! The update workload is shared verbatim with `bench_snapshot`, whose
//! `codec.speedup_vs_json` ratio lands in `BENCH_rcm.json` and is
//! floor-gated (≥10×) by `bench_gate`.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rcm_core::{Alert, AlertId, CeId, CondId, HistoryFingerprint, SeqNo, Update, VarId};
use rcm_transport::wire::{self, Codec, Message};

const BATCH: u64 = 64;

fn updates() -> Vec<Update> {
    (1..=BATCH).map(|s| Update::new(VarId::new((s % 4) as u32), s, s as f64 * 1.5 - 40.0)).collect()
}

fn alerts() -> Vec<Alert> {
    (2..=9u64)
        .map(|s| {
            Alert::new(
                CondId::new(0),
                HistoryFingerprint::single(VarId::new(0), vec![SeqNo::new(s), SeqNo::new(s - 1)]),
                vec![Update::new(VarId::new(0), s, 61.5)],
                AlertId { ce: CeId::new(0), index: s },
            )
        })
        .collect()
}

fn bench_update_roundtrip(c: &mut Criterion) {
    let updates = updates();
    let mut g = c.benchmark_group("codec/updates");
    g.throughput(Throughput::Elements(BATCH));
    let mut frame = Vec::with_capacity(4096);
    for codec in [Codec::Json, Codec::Binary] {
        g.bench_function(format!("{codec}_per_frame"), |b| {
            b.iter(|| {
                let mut delivered = 0u64;
                for u in &updates {
                    frame.clear();
                    wire::encode_into(codec, &Message::Update(*u), &mut frame).expect("encode");
                    match wire::decode_datagram(black_box(&frame)).expect("decode") {
                        Message::Update(got) => delivered += u64::from(got.seqno == u.seqno),
                        _ => unreachable!("update frame"),
                    }
                }
                delivered
            })
        });
    }
    g.bench_function("binary_batched", |b| {
        b.iter(|| {
            frame.clear();
            wire::encode_updates_into(Codec::Binary, &updates, &mut frame).expect("encode");
            match wire::decode_datagram(black_box(&frame)).expect("decode") {
                Message::UpdateBatch(got) => got.len(),
                _ => unreachable!("batch frame"),
            }
        })
    });
    g.finish();
}

fn bench_alert_roundtrip(c: &mut Criterion) {
    let alerts = alerts();
    let mut g = c.benchmark_group("codec/alerts");
    g.throughput(Throughput::Elements(alerts.len() as u64));
    let mut frame = Vec::with_capacity(8192);
    for codec in [Codec::Json, Codec::Binary] {
        g.bench_function(format!("{codec}_per_frame"), |b| {
            b.iter(|| {
                let mut delivered = 0usize;
                for a in &alerts {
                    frame.clear();
                    wire::encode_into(codec, &Message::Alert(a.clone()), &mut frame)
                        .expect("encode");
                    match wire::decode_datagram(black_box(&frame)).expect("decode") {
                        Message::Alert(got) => delivered += usize::from(got == *a),
                        _ => unreachable!("alert frame"),
                    }
                }
                delivered
            })
        });
    }
    g.bench_function("binary_batched", |b| {
        b.iter(|| {
            frame.clear();
            wire::encode_alerts_into(Codec::Binary, &alerts, &mut frame).expect("encode");
            match wire::decode_datagram(black_box(&frame)).expect("decode") {
                Message::AlertBatch(got) => got.len(),
                _ => unreachable!("batch frame"),
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_update_roundtrip, bench_alert_roundtrip);
criterion_main!(benches);
