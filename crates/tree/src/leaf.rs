//! Leaf Condition Evaluators: the tier that owns raw variables.

use serde::{Deserialize, Serialize};

use rcm_core::{Alert, CeId, DerivedEmitter, DerivedPayload, DerivedUpdate, ShardSlices, Update};
use rcm_transport::SeqGate;

use crate::plan::PlannedCondition;
use crate::window::ReplayWindow;
use crate::{aggregate_stream, verdict_stream};

/// The numeric fold a leaf's optional aggregate stream carries, one
/// element per admitted raw update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregateSpec {
    /// Running count of alerts this leaf has emitted.
    AlertCount,
    /// Running maximum of the raw values this leaf has admitted.
    MaxValue,
}

#[derive(Debug)]
struct AggregateState {
    emitter: DerivedEmitter,
    spec: AggregateSpec,
    value: f64,
}

/// What one admitted raw update produced at a leaf.
#[derive(Debug, Default)]
pub struct LeafOutput {
    /// Alerts for the leaf's *own* Alert Displayer (provenance stamped
    /// with the leaf replica's `CeId`).
    pub alerts: Vec<Alert>,
    /// Derived updates for the uplink, in emission order: one verdict
    /// per alert, then the aggregate element if configured.
    pub derived: Vec<DerivedUpdate>,
}

/// One leaf CE replica: a seqno gate in front of a sharded condition
/// registry, stamping verdict (and optionally aggregate) streams for
/// its parent tier.
///
/// Determinism is the load-bearing property: two replicas built from
/// the same plan and fed the same post-loss input emit identical
/// derived streams under identical stream ids, which is what lets the
/// parent's gate collapse a replica group into one logical child.
#[derive(Debug)]
pub struct LeafCe {
    node: u32,
    gate: SeqGate,
    slices: ShardSlices,
    verdicts: DerivedEmitter,
    aggregates: Option<AggregateState>,
    window: ReplayWindow,
    dead: bool,
    admitted: u64,
    dropped_by_gate: u64,
}

impl LeafCe {
    /// Builds one replica of leaf `leaf` as a plan describes it — the
    /// entry point standalone deployments (the threaded runtime, the
    /// scale harness, tests) share with [`TreeEval`](crate::TreeEval).
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of the plan's range or the options name
    /// zero shards.
    pub fn from_plan(
        plan: &crate::TreePlan,
        leaf: usize,
        ce: CeId,
        opts: &crate::TreeOptions,
    ) -> Self {
        LeafCe::build(
            leaf as u32,
            ce,
            &plan.leaf_conds[leaf],
            opts.shards_per_leaf,
            opts.replay_window,
            opts.aggregates,
        )
    }

    /// Builds leaf `node`'s replica `ce` hosting `conds` over
    /// `shards` registry slices.
    pub(crate) fn build(
        node: u32,
        ce: CeId,
        conds: &[(rcm_core::CondId, PlannedCondition)],
        shards: usize,
        replay_window: usize,
        aggregates: Option<AggregateSpec>,
    ) -> Self {
        let mut slices = ShardSlices::new(ce, shards);
        for (id, cond) in conds {
            cond.insert_into_slices(*id, &mut slices);
        }
        LeafCe {
            node,
            gate: SeqGate::new(),
            slices,
            verdicts: DerivedEmitter::new(verdict_stream(0, node)),
            aggregates: aggregates.map(|spec| AggregateState {
                emitter: DerivedEmitter::new(aggregate_stream(0, node)),
                spec,
                value: 0.0,
            }),
            window: ReplayWindow::new(replay_window),
            dead: false,
            admitted: 0,
            dropped_by_gate: 0,
        }
    }

    /// This leaf's node index on tier 0.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Offers one raw update: gate, evaluate across shards in the
    /// unsharded emission order, stamp derived streams.
    pub fn ingest(&mut self, update: Update, out: &mut LeafOutput) {
        if self.dead {
            return;
        }
        if !self.gate.admit(&update) {
            self.dropped_by_gate += 1;
            return;
        }
        self.admitted += 1;
        let mut tagged = Vec::new();
        for shard in self.slices.shards_mut() {
            shard.ingest_batch_tagged(std::slice::from_ref(&update), &mut tagged);
        }
        // One update: every tag is 0, so ordering by condition id alone
        // reconstructs the unsharded registry's emission order.
        let mut alerts: Vec<Alert> = tagged.into_iter().map(|(_, a)| a).collect();
        ShardSlices::merge_same_update(&mut alerts);

        for alert in alerts {
            out.alerts.push(alert.clone());
            let d = self.verdicts.emit(DerivedPayload::Verdict(alert));
            self.window.push(d.clone());
            out.derived.push(d);
            if let Some(agg) = &mut self.aggregates {
                if agg.spec == AggregateSpec::AlertCount {
                    agg.value += 1.0;
                }
            }
        }
        if let Some(agg) = &mut self.aggregates {
            if agg.spec == AggregateSpec::MaxValue {
                agg.value = agg.value.max(update.value);
            }
            let d = agg.emitter.emit(DerivedPayload::Aggregate(agg.value));
            self.window.push(d.clone());
            out.derived.push(d);
        }
    }

    /// The replay window of this replica's uplink.
    pub fn window(&self) -> &ReplayWindow {
        &self.window
    }

    /// Marks the replica crashed: it ingests nothing further.
    pub fn kill(&mut self) {
        self.dead = true;
    }

    /// Whether the replica has been killed.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Raw updates admitted through the gate.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Raw updates the gate discarded (duplicates / reorders).
    pub fn dropped_by_gate(&self) -> u64 {
        self.dropped_by_gate
    }

    /// Derived updates emitted so far (verdicts plus aggregates).
    pub fn derived_emitted(&self) -> u64 {
        self.verdicts.emitted() + self.aggregates.as_ref().map_or(0, |a| a.emitter.emitted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::condition::{Cmp, Threshold};
    use rcm_core::{CondId, VarId};
    use std::sync::Arc;

    fn leaf(shards: usize, aggregates: Option<AggregateSpec>) -> LeafCe {
        let conds = vec![
            (
                CondId::new(0),
                PlannedCondition::Dyn(Arc::new(Threshold::new(VarId::new(0), Cmp::Gt, 10.0))),
            ),
            (
                CondId::new(1),
                PlannedCondition::Dyn(Arc::new(Threshold::new(VarId::new(0), Cmp::Gt, 20.0))),
            ),
        ];
        LeafCe::build(3, CeId::new(7), &conds, shards, 8, aggregates)
    }

    #[test]
    fn verdicts_follow_cond_order_and_consecutive_seqnos() {
        let mut l = leaf(2, None);
        let mut out = LeafOutput::default();
        l.ingest(Update::new(VarId::new(0), 1, 25.0), &mut out);
        assert_eq!(out.alerts.len(), 2);
        assert_eq!(out.derived.len(), 2);
        assert_eq!(out.alerts[0].cond, CondId::new(0));
        assert_eq!(out.alerts[1].cond, CondId::new(1));
        let seqnos: Vec<u64> = out.derived.iter().map(|d| d.seqno.get()).collect();
        assert_eq!(seqnos, vec![1, 2]);
        assert!(out.derived.iter().all(|d| d.var == verdict_stream(0, 3)));
        assert_eq!(l.derived_emitted(), 2);
        assert_eq!(l.window().len(), 2);
    }

    #[test]
    fn gate_discards_duplicates_before_evaluation() {
        let mut l = leaf(1, None);
        let mut out = LeafOutput::default();
        l.ingest(Update::new(VarId::new(0), 1, 25.0), &mut out);
        l.ingest(Update::new(VarId::new(0), 1, 25.0), &mut out);
        assert_eq!(l.admitted(), 1);
        assert_eq!(l.dropped_by_gate(), 1);
        assert_eq!(out.alerts.len(), 2, "duplicate produced no second batch");
    }

    #[test]
    fn aggregate_stream_rides_alongside_verdicts() {
        let mut l = leaf(1, Some(AggregateSpec::MaxValue));
        let mut out = LeafOutput::default();
        l.ingest(Update::new(VarId::new(0), 1, 5.0), &mut out);
        l.ingest(Update::new(VarId::new(0), 2, 15.0), &mut out);
        let aggs: Vec<&DerivedUpdate> =
            out.derived.iter().filter(|d| d.var == aggregate_stream(0, 3)).collect();
        assert_eq!(aggs.len(), 2, "one aggregate element per admitted update");
        assert_eq!(aggs[1].payload, DerivedPayload::Aggregate(15.0));
        assert_eq!(aggs[1].seqno.get(), 2);
    }

    #[test]
    fn killed_replica_goes_silent() {
        let mut l = leaf(1, None);
        l.kill();
        let mut out = LeafOutput::default();
        l.ingest(Update::new(VarId::new(0), 1, 25.0), &mut out);
        assert!(out.alerts.is_empty() && out.derived.is_empty());
        assert!(l.is_dead());
    }
}
