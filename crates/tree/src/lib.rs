//! # rcm-tree — hierarchical CE fan-in
//!
//! Aggregation trees of Condition Evaluators with derived-update
//! streams, extending the flat DM → CE → AD deployment of *Replicated
//! condition monitoring* (Huang & Garcia-Molina, PODC 2001) to
//! multi-tier fan-in:
//!
//! * **Leaves** ([`LeafCe`]) own disjoint slices of the variable space.
//!   Each hosts the conditions whose variables it owns (a
//!   [`ConditionRegistry`](rcm_core::ConditionRegistry) behind a
//!   [`SeqGate`](rcm_transport::SeqGate)), feeds its own Alert
//!   Displayer, and *additionally* emits
//!   [`DerivedUpdate`](rcm_core::DerivedUpdate)s upward: a per-leaf
//!   verdict stream (its alerts, losslessly) and optionally an
//!   aggregate stream (a numeric fold its parent can monitor like any
//!   other variable).
//! * **Interior tiers** ([`Relay`]) ingest derived streams through the
//!   same `(variable, seqno)` admission contract as raw DM streams and
//!   forward admitted elements verbatim — preserving each stream's
//!   key, which is what lets a subtree be re-parented onto a sibling
//!   or grandparent without renumbering anything.
//! * **The root** ([`RootCe`]) gates once more, renumbers verdict
//!   provenance into its own `AlertId` space, and evaluates root
//!   conditions over aggregate streams.
//!
//! ## The equivalence the keystone test pins
//!
//! Because every raw update is owned by exactly one leaf, and every
//! condition lives on the leaf owning its variables, a two-tier tree
//! displays **byte-identically** the alert sequence of one flat CE fed
//! the combined post-loss stream — same fingerprints, snapshots, and
//! `AlertId` numbering — for *any* leaf count, shard count, replica
//! count and relay depth, at any front-link loss rate
//! (`tests/tree_equivalence.rs`). The argument:
//!
//! 1. a leaf's registry is observationally identical to the flat
//!    registry restricted to its conditions (both mirror independent
//!    `Evaluator`s fed the projection of the stream);
//! 2. per update, alerts form one contiguous ascending-`CondId` run
//!    emitted by the single owning leaf — exactly the flat registry's
//!    emission order, so no cross-leaf merge exists to get wrong;
//! 3. tier links are lossless and FIFO, and relays forward verbatim,
//!    so the root receives each condition's verdicts in emission order
//!    and re-stamps indices `0, 1, 2, …` exactly as the flat CE would;
//! 4. replicated leaves fed the same post-loss input are deterministic,
//!    so every replica emits the *same* derived stream and the parent's
//!    seqno gate makes replication invisible (first copy admitted, the
//!    rest are duplicates — the paper's §2.1 front-link contract).
//!
//! ## Failure handling
//!
//! Each emitting node keeps a bounded [`ReplayWindow`] of its recent
//! derived updates. When an interior relay dies, its orphaned children
//! are re-parented onto a live sibling (or, failing that, the dead
//! node's own parent) and replay their windows through the new path;
//! every gate en route discards what it already admitted, so recovery
//! is idempotent and exactly-once survives. Updates lost in flight
//! beyond the window are genuine loss — which the downstream already
//! tolerates, consistency-wise, by the paper's §3 results.
//!
//! [`TreeEval`] wires all of this into one deterministic in-process
//! harness (used by the keystone tests, the chaos gauntlet and the
//! benches); `rcm-runtime` hosts the same pieces on threads and real
//! sockets.

// LOCK ORDER: no locks anywhere in this crate — every type is
// single-threaded by construction; concurrency is the runtime's job.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod eval;
mod leaf;
mod plan;
mod relay;
mod root;
mod window;

pub use error::TreeError;
pub use eval::{NodeRef, TreeEval, TreeStats};
pub use leaf::{AggregateSpec, LeafCe, LeafOutput};
pub use plan::{TreeOptions, TreePlan};
pub use relay::Relay;
pub use root::RootCe;
pub use window::ReplayWindow;

use rcm_core::{derived_var, VarId};

/// The synthetic variable id of the **verdict** stream of node `node`
/// on tier `tier` (tier 0 = leaves). Even node field.
pub fn verdict_stream(tier: u8, node: u32) -> VarId {
    derived_var(tier, node * 2)
}

/// The synthetic variable id of the **aggregate** stream of node
/// `node` on tier `tier`. Odd node field, so a node's two streams are
/// distinct `(variable, seqno)` spaces.
pub fn aggregate_stream(tier: u8, node: u32) -> VarId {
    derived_var(tier, node * 2 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_ids_are_distinct_per_node() {
        assert_ne!(verdict_stream(0, 0), aggregate_stream(0, 0));
        assert_ne!(verdict_stream(0, 1), aggregate_stream(0, 0));
        assert_ne!(verdict_stream(1, 0), verdict_stream(0, 0));
        assert!(rcm_core::is_derived_var(verdict_stream(0, 5)));
        assert!(rcm_core::is_derived_var(aggregate_stream(2, 5)));
    }
}
