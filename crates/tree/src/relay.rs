//! Interior relays: gated verbatim forwarders.

use rcm_core::DerivedUpdate;
use rcm_transport::SeqGate;

use crate::window::ReplayWindow;

/// One interior-tier CE: admits derived streams through the standard
/// `(variable, seqno)` gate and forwards admitted elements **verbatim**
/// — same variable id, same seqno, same payload.
///
/// Forwarding verbatim (instead of re-stamping a per-relay stream) is
/// a deliberate invariant: every tier sees each origin stream under
/// its original key, so (a) duplicate suppression composes — an
/// element replayed after a re-parent is recognized anywhere on the
/// new path — and (b) a subtree can be moved under a new parent
/// without renumbering a single message.
#[derive(Debug)]
pub struct Relay {
    tier: u8,
    index: u32,
    gate: SeqGate,
    window: ReplayWindow,
    dead: bool,
    forwarded: u64,
    duplicates: u64,
}

impl Relay {
    /// A relay at position `index` on interior tier `tier` (1-based
    /// above the leaves) retaining `replay_window` forwarded elements.
    pub fn new(tier: u8, index: u32, replay_window: usize) -> Self {
        Relay {
            tier,
            index,
            gate: SeqGate::new(),
            window: ReplayWindow::new(replay_window),
            dead: false,
            forwarded: 0,
            duplicates: 0,
        }
    }

    /// This relay's `(tier, index)` coordinates.
    pub fn position(&self) -> (u8, u32) {
        (self.tier, self.index)
    }

    /// Offers one derived update; returns the element to forward
    /// upward, or `None` if the gate discarded it (or the relay is
    /// dead — a frame sent to a crashed node is simply lost, exactly
    /// like a datagram to a dead socket).
    pub fn ingest(&mut self, d: &DerivedUpdate) -> Option<DerivedUpdate> {
        if self.dead {
            return None;
        }
        if !self.gate.admit_derived(d) {
            self.duplicates += 1;
            return None;
        }
        self.forwarded += 1;
        self.window.push(d.clone());
        Some(d.clone())
    }

    /// The replay window of this relay's uplink.
    pub fn window(&self) -> &ReplayWindow {
        &self.window
    }

    /// Marks the relay crashed.
    pub fn kill(&mut self) {
        self.dead = true;
    }

    /// Whether the relay has been killed.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Elements forwarded upward.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Elements the gate discarded (replica copies, replays).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::{derived_var, DerivedEmitter, DerivedPayload};

    #[test]
    fn forwards_verbatim_once_per_element() {
        let mut em = DerivedEmitter::new(derived_var(0, 0));
        let mut relay = Relay::new(1, 0, 4);
        let d = em.emit(DerivedPayload::Aggregate(7.0));
        let fwd = relay.ingest(&d).expect("first copy admitted");
        assert_eq!(fwd, d, "forwarded element is byte-identical");
        assert!(relay.ingest(&d).is_none(), "replica copy dropped");
        assert_eq!((relay.forwarded(), relay.duplicates()), (1, 1));
        assert_eq!(relay.window().len(), 1);
        assert_eq!(relay.position(), (1, 0));
    }

    #[test]
    fn dead_relay_drops_frames_without_counting_duplicates() {
        let mut em = DerivedEmitter::new(derived_var(0, 1));
        let mut relay = Relay::new(1, 2, 4);
        relay.kill();
        assert!(relay.ingest(&em.emit(DerivedPayload::Aggregate(0.0))).is_none());
        assert_eq!((relay.forwarded(), relay.duplicates()), (0, 0));
    }
}
