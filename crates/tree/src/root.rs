//! The root CE: final gate, verdict renumbering, aggregate conditions.

use std::collections::BTreeMap;

use rcm_core::{Alert, AlertId, CeId, CondId, ConditionRegistry, DerivedPayload, DerivedUpdate};
use rcm_transport::SeqGate;

use crate::plan::PlannedCondition;

/// The tree's apex: admits every derived stream through one last
/// `(variable, seqno)` gate, then
///
/// * **verdicts** are re-stamped into the root's own provenance —
///   `AlertId { ce: root, index }` with a per-condition counter in
///   arrival order — and displayed. Since tier links are FIFO and a
///   condition's verdicts originate at a single leaf, arrival order
///   per condition *is* leaf emission order, so the indices match a
///   flat CE's exactly;
/// * **aggregates** are shadowed into raw updates
///   ([`DerivedUpdate::as_update`]) and fed to a [`ConditionRegistry`]
///   of root conditions monitoring derived streams as ordinary
///   variables.
#[derive(Debug)]
pub struct RootCe {
    ce: CeId,
    gate: SeqGate,
    next_index: BTreeMap<CondId, u64>,
    registry: ConditionRegistry,
    duplicates: u64,
    displayed: u64,
}

impl RootCe {
    /// Builds the root a plan describes, stamping `opts.root_ce` —
    /// the standalone counterpart of
    /// [`LeafCe::from_plan`](crate::LeafCe::from_plan).
    pub fn from_plan(plan: &crate::TreePlan, opts: &crate::TreeOptions) -> Self {
        RootCe::build(opts.root_ce, &plan.root_conds)
    }

    /// A root stamping provenance `ce`, hosting `conds` over derived
    /// streams.
    pub(crate) fn build(ce: CeId, conds: &[(CondId, PlannedCondition)]) -> Self {
        let mut registry = ConditionRegistry::new(ce);
        for (id, cond) in conds {
            cond.insert_into_registry(*id, &mut registry);
        }
        RootCe {
            ce,
            gate: SeqGate::new(),
            next_index: BTreeMap::new(),
            registry,
            duplicates: 0,
            displayed: 0,
        }
    }

    /// The root's replica id.
    pub fn ce_id(&self) -> CeId {
        self.ce
    }

    /// Offers one derived update, appending any displayed alerts.
    pub fn ingest(&mut self, d: &DerivedUpdate, out: &mut Vec<Alert>) {
        if !self.gate.admit_derived(d) {
            self.duplicates += 1;
            return;
        }
        match &d.payload {
            DerivedPayload::Verdict(alert) => {
                let index = self.next_index.entry(alert.cond).or_insert(0);
                let restamped = Alert::new(
                    alert.cond,
                    alert.fingerprint.clone(),
                    alert.snapshot.clone(),
                    AlertId { ce: self.ce, index: *index },
                );
                *index += 1;
                self.displayed += 1;
                out.push(restamped);
            }
            DerivedPayload::Aggregate(_) => {
                let before = out.len();
                self.registry.ingest(d.as_update(), out);
                self.displayed += (out.len() - before) as u64;
            }
        }
    }

    /// Duplicate derived elements the gate discarded (replica copies,
    /// re-parent replays).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Alerts displayed (re-stamped verdicts plus root-condition
    /// alerts).
    pub fn displayed(&self) -> u64 {
        self.displayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::condition::{Cmp, Threshold};
    use rcm_core::{DerivedEmitter, HistoryFingerprint, SeqNo, Update, VarId};
    use std::sync::Arc;

    fn verdict_from(leaf_ce: u32, cond: u32, seqno: u64) -> Alert {
        Alert::new(
            CondId::new(cond),
            HistoryFingerprint::single(VarId::new(0), vec![SeqNo::new(seqno)]),
            vec![Update::new(VarId::new(0), seqno, 42.0)],
            AlertId { ce: CeId::new(leaf_ce), index: seqno - 1 },
        )
    }

    #[test]
    fn verdicts_are_renumbered_into_root_provenance() {
        let mut root = RootCe::build(CeId::new(9), &[]);
        let mut em = DerivedEmitter::new(crate::verdict_stream(0, 0));
        let mut out = Vec::new();
        root.ingest(&em.emit(DerivedPayload::Verdict(verdict_from(100, 0, 1))), &mut out);
        root.ingest(&em.emit(DerivedPayload::Verdict(verdict_from(100, 0, 2))), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].id, AlertId { ce: CeId::new(9), index: 0 });
        assert_eq!(out[1].id, AlertId { ce: CeId::new(9), index: 1 });
        // Payload identity is untouched — only provenance changes.
        assert_eq!(out[0].fingerprint, verdict_from(100, 0, 1).fingerprint);
        assert_eq!(root.displayed(), 2);
    }

    #[test]
    fn replica_copies_are_transparent() {
        let mut root = RootCe::build(CeId::new(0), &[]);
        let mut out = Vec::new();
        // Two replicas of leaf 0 emit the same derived element.
        let mut em_a = DerivedEmitter::new(crate::verdict_stream(0, 0));
        let mut em_b = DerivedEmitter::new(crate::verdict_stream(0, 0));
        root.ingest(&em_a.emit(DerivedPayload::Verdict(verdict_from(1, 0, 1))), &mut out);
        root.ingest(&em_b.emit(DerivedPayload::Verdict(verdict_from(2, 0, 1))), &mut out);
        assert_eq!(out.len(), 1, "second replica's copy gated out");
        assert_eq!(root.duplicates(), 1);
    }

    #[test]
    fn aggregates_feed_root_conditions() {
        let agg = crate::aggregate_stream(0, 0);
        let conds = vec![(
            CondId::new(5),
            PlannedCondition::Dyn(
                Arc::new(Threshold::new(agg, Cmp::Gt, 2.5)) as rcm_core::condition::DynCondition
            ),
        )];
        let mut root = RootCe::build(CeId::new(1), &conds);
        let mut em = DerivedEmitter::new(agg);
        let mut out = Vec::new();
        root.ingest(&em.emit(DerivedPayload::Aggregate(1.0)), &mut out);
        assert!(out.is_empty());
        root.ingest(&em.emit(DerivedPayload::Aggregate(3.0)), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cond, CondId::new(5));
        assert_eq!(out[0].id.ce, CeId::new(1));
    }
}
