//! Tree topology and condition-placement planning.

use std::collections::{BTreeMap, BTreeSet};

use rcm_core::condition::expr::CompiledCondition;
use rcm_core::condition::{Condition, DynCondition};
use rcm_core::{is_derived_var, CeId, CondId, ConditionRegistry, ShardSlices, VarId};

use crate::error::TreeError;

/// A condition staged for a registry, preserving whether it gets
/// incremental re-evaluation.
#[derive(Debug, Clone)]
pub(crate) enum PlannedCondition {
    /// Full re-evaluation per arrival.
    Dyn(DynCondition),
    /// Compiled expression with incremental re-evaluation.
    Compiled(CompiledCondition),
}

impl PlannedCondition {
    pub(crate) fn variables(&self) -> Vec<VarId> {
        match self {
            PlannedCondition::Dyn(c) => c.variables(),
            PlannedCondition::Compiled(c) => c.variables(),
        }
    }

    pub(crate) fn insert_into_slices(&self, id: CondId, slices: &mut ShardSlices) {
        match self {
            PlannedCondition::Dyn(c) => slices.insert(id, c.clone()),
            PlannedCondition::Compiled(c) => slices.insert_compiled(id, c.clone()),
        }
    }

    pub(crate) fn insert_into_registry(&self, id: CondId, reg: &mut ConditionRegistry) {
        match self {
            PlannedCondition::Dyn(c) => reg.insert(id, c.clone()),
            PlannedCondition::Compiled(c) => reg.insert_compiled(id, c.clone()),
        }
    }
}

/// Declarative description of an aggregation tree: how many leaves,
/// how many interior relay tiers between them and the root, which leaf
/// owns which variable, and where every condition lives.
///
/// Placement is *derived from ownership*, never chosen freely: a
/// condition is assigned to the leaf owning its variables, and
/// [`TreePlan::add_condition`] rejects a condition whose variable set
/// straddles two leaves. That co-location invariant is what the
/// keystone flat-equivalence proof rests on.
#[derive(Debug)]
pub struct TreePlan {
    leaves: usize,
    relay_tiers: usize,
    fanout: usize,
    owner: BTreeMap<VarId, usize>,
    pub(crate) leaf_conds: Vec<Vec<(CondId, PlannedCondition)>>,
    pub(crate) root_conds: Vec<(CondId, PlannedCondition)>,
    assigned: BTreeSet<CondId>,
}

impl TreePlan {
    /// A plan with `leaves` leaf CEs, no relay tiers (a two-tier tree:
    /// leaves feeding the root directly) and fanout 2.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero or exceeds the 15-bit per-tier node
    /// budget (each node owns two derived streams in a 16-bit field).
    pub fn new(leaves: usize) -> Self {
        assert!(leaves >= 1, "a tree needs at least one leaf");
        assert!(leaves < (1 << 15), "leaf count {leaves} exceeds the per-tier node budget");
        TreePlan {
            leaves,
            relay_tiers: 0,
            fanout: 2,
            owner: BTreeMap::new(),
            leaf_conds: vec![Vec::new(); leaves],
            root_conds: Vec::new(),
            assigned: BTreeSet::new(),
        }
    }

    /// Sets the number of interior relay tiers between the leaves and
    /// the root (0 = two-tier tree).
    pub fn with_relay_tiers(mut self, tiers: usize) -> Self {
        assert!(tiers <= 250, "relay tier count {tiers} exceeds the 8-bit tier field");
        self.relay_tiers = tiers;
        self
    }

    /// Sets the grouping fanout: children `n·fanout ‥ (n+1)·fanout-1`
    /// of one tier share parent `n` on the next.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        assert!(fanout >= 1, "fanout must be at least 1");
        self.fanout = fanout;
        self
    }

    /// Declares that leaf `leaf` owns variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range, `var` is a derived id, or the
    /// variable is already owned by a *different* leaf (ownership is a
    /// partition, not a subscription).
    pub fn own(&mut self, var: VarId, leaf: usize) -> &mut Self {
        assert!(leaf < self.leaves, "leaf {leaf} out of range (have {})", self.leaves);
        assert!(!is_derived_var(var), "derived stream {var} cannot be owned by a leaf");
        if let Some(&prev) = self.owner.get(&var) {
            assert!(prev == leaf, "{var} already owned by leaf {prev}, cannot move to {leaf}");
        }
        self.owner.insert(var, leaf);
        self
    }

    /// The leaf owning `var`, if declared.
    pub fn owner_of(&self, var: VarId) -> Option<usize> {
        self.owner.get(&var).copied()
    }

    /// The declared `(variable, owning leaf)` pairs, ascending by
    /// variable.
    pub fn owned_vars(&self) -> Vec<(VarId, usize)> {
        self.owner.iter().map(|(&v, &l)| (v, l)).collect()
    }

    /// Places a condition on the leaf owning its variables and returns
    /// that leaf, or explains why no single leaf can host it.
    pub fn add_condition(&mut self, id: CondId, cond: DynCondition) -> Result<usize, TreeError> {
        self.place(id, PlannedCondition::Dyn(cond))
    }

    /// Places a compiled condition (incremental re-evaluation) on the
    /// leaf owning its variables and returns that leaf.
    pub fn add_compiled(
        &mut self,
        id: CondId,
        cond: CompiledCondition,
    ) -> Result<usize, TreeError> {
        self.place(id, PlannedCondition::Compiled(cond))
    }

    fn place(&mut self, id: CondId, cond: PlannedCondition) -> Result<usize, TreeError> {
        if self.assigned.contains(&id) {
            return Err(TreeError::DuplicateCondition { cond: id });
        }
        let vars = cond.variables();
        let mut leaf: Option<usize> = None;
        for &var in &vars {
            let here = self.owner_of(var).ok_or(TreeError::UnownedVariable { cond: id, var })?;
            match leaf {
                None => leaf = Some(here),
                Some(l) if l != here => {
                    return Err(TreeError::ConditionStraddlesLeaves { cond: id, a: l, b: here })
                }
                Some(_) => {}
            }
        }
        let leaf = leaf.ok_or(TreeError::ConditionHasNoVariables { cond: id })?;
        self.leaf_conds[leaf].push((id, cond));
        self.assigned.insert(id);
        Ok(leaf)
    }

    /// Registers a condition on the **root**, monitoring derived
    /// streams (aggregate or verdict shadows) as its input variables.
    pub fn add_root_condition(&mut self, id: CondId, cond: DynCondition) -> Result<(), TreeError> {
        self.place_root(id, PlannedCondition::Dyn(cond))
    }

    /// Registers a compiled root condition over derived streams.
    pub fn add_root_compiled(
        &mut self,
        id: CondId,
        cond: CompiledCondition,
    ) -> Result<(), TreeError> {
        self.place_root(id, PlannedCondition::Compiled(cond))
    }

    fn place_root(&mut self, id: CondId, cond: PlannedCondition) -> Result<(), TreeError> {
        if self.assigned.contains(&id) {
            return Err(TreeError::DuplicateCondition { cond: id });
        }
        if let Some(&var) = cond.variables().iter().find(|v| !is_derived_var(**v)) {
            return Err(TreeError::RootConditionOnRawVariable { cond: id, var });
        }
        self.root_conds.push((id, cond));
        self.assigned.insert(id);
        Ok(())
    }

    /// Number of leaf CEs.
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// Number of interior relay tiers.
    pub fn relay_tiers(&self) -> usize {
        self.relay_tiers
    }

    /// The grouping fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Total conditions placed (leaves plus root).
    pub fn conditions(&self) -> usize {
        self.assigned.len()
    }
}

/// Deployment knobs orthogonal to the topology: replication and
/// sharding degrees, replay bounds, codec checking, and identity.
#[derive(Debug, Clone)]
pub struct TreeOptions {
    /// The root's `CeId` — the provenance stamped on every displayed
    /// alert, matching what a flat CE with this id would stamp.
    pub root_ce: CeId,
    /// Replicas per leaf (≥ 1). All replicas of a leaf are fed the
    /// same admitted input and emit identical derived streams; the
    /// parent's gate admits the first copy of each element.
    pub leaf_replicas: usize,
    /// Worker shards inside each leaf's registry (≥ 1). Output is
    /// byte-identical for every shard count.
    pub shards_per_leaf: usize,
    /// Sender-side replay window per node (elements retained for
    /// re-parent recovery; 0 disables replay).
    pub replay_window: usize,
    /// Round-trip every tier-link hop through the binary wire codec,
    /// asserting fidelity and counting frames/bytes. The keystone test
    /// runs with this on; benches turn it off to measure logic alone.
    pub wire_check: bool,
    /// Per-leaf aggregate stream emitted alongside verdicts, if any.
    pub aggregates: Option<crate::leaf::AggregateSpec>,
}

impl Default for TreeOptions {
    fn default() -> Self {
        TreeOptions {
            root_ce: CeId::new(0),
            leaf_replicas: 1,
            shards_per_leaf: 1,
            replay_window: 64,
            wire_check: false,
            aggregates: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::condition::{Cmp, Threshold};
    use std::sync::Arc;

    fn thresh(var: u32) -> DynCondition {
        Arc::new(Threshold::new(VarId::new(var), Cmp::Gt, 0.0))
    }

    #[test]
    fn placement_follows_ownership() {
        let mut plan = TreePlan::new(2);
        plan.own(VarId::new(0), 0).own(VarId::new(1), 1);
        assert_eq!(plan.add_condition(CondId::new(0), thresh(0)), Ok(0));
        assert_eq!(plan.add_condition(CondId::new(1), thresh(1)), Ok(1));
        assert_eq!(plan.conditions(), 2);
    }

    #[test]
    fn straddling_condition_rejected() {
        use rcm_core::VarRegistry;
        let mut vars = VarRegistry::new();
        let c = CompiledCondition::compile("x[0].value + y[0].value > 0", &mut vars).unwrap();
        let (x, y) = (vars.lookup("x").unwrap(), vars.lookup("y").unwrap());
        let mut plan = TreePlan::new(2);
        plan.own(x, 0).own(y, 1);
        let err = plan.add_compiled(CondId::new(0), c).unwrap_err();
        assert_eq!(err, TreeError::ConditionStraddlesLeaves { cond: CondId::new(0), a: 0, b: 1 });
    }

    #[test]
    fn unowned_variable_rejected() {
        let mut plan = TreePlan::new(1);
        let err = plan.add_condition(CondId::new(0), thresh(7)).unwrap_err();
        assert_eq!(err, TreeError::UnownedVariable { cond: CondId::new(0), var: VarId::new(7) });
    }

    #[test]
    fn duplicate_ids_rejected_across_tiers() {
        let mut plan = TreePlan::new(1);
        plan.own(VarId::new(0), 0);
        plan.add_condition(CondId::new(3), thresh(0)).unwrap();
        let err = plan
            .add_root_condition(
                CondId::new(3),
                Arc::new(Threshold::new(crate::aggregate_stream(0, 0), Cmp::Gt, 1.0)),
            )
            .unwrap_err();
        assert_eq!(err, TreeError::DuplicateCondition { cond: CondId::new(3) });
    }

    #[test]
    fn root_conditions_must_watch_derived_streams() {
        let mut plan = TreePlan::new(1);
        let err = plan.add_root_condition(CondId::new(0), thresh(5)).unwrap_err();
        assert_eq!(
            err,
            TreeError::RootConditionOnRawVariable { cond: CondId::new(0), var: VarId::new(5) }
        );
    }
}
