//! Bounded sender-side replay windows for tier links.

use std::collections::VecDeque;

use rcm_core::DerivedUpdate;
use serde::{Deserialize, Serialize};

/// The last `capacity` derived updates a node put on its uplink, kept
/// so an orphaned node can replay them through a new parent after
/// re-parenting.
///
/// This is the sender-side mirror of the runtime's receiver-side
/// `RetainedWindow`: recovery is *bounded* by design. Replay is always
/// safe — every gate on the new path discards elements it already
/// admitted — and it is *complete* as long as the outage lost no more
/// elements than the window holds; older losses degrade to ordinary
/// stream loss, which the downstream tolerates by the paper's
/// consistency results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayWindow {
    capacity: usize,
    items: VecDeque<DerivedUpdate>,
}

impl ReplayWindow {
    /// A window retaining the last `capacity` pushed elements
    /// (`capacity == 0` disables replay entirely).
    pub fn new(capacity: usize) -> Self {
        ReplayWindow { capacity, items: VecDeque::new() }
    }

    /// Records one sent element, evicting the oldest beyond capacity.
    pub fn push(&mut self, d: DerivedUpdate) {
        if self.capacity == 0 {
            return;
        }
        if self.items.len() == self.capacity {
            self.items.pop_front();
        }
        self.items.push_back(d);
    }

    /// The retained elements, oldest first — the exact order to replay
    /// them in so per-stream FIFO survives the re-parent.
    pub fn iter(&self) -> impl Iterator<Item = &DerivedUpdate> {
        self.items.iter()
    }

    /// Number of retained elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::{derived_var, DerivedEmitter, DerivedPayload};

    #[test]
    fn retains_last_capacity_in_order() {
        let mut em = DerivedEmitter::new(derived_var(0, 0));
        let mut w = ReplayWindow::new(3);
        for i in 0..5 {
            w.push(em.emit(DerivedPayload::Aggregate(f64::from(i))));
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.capacity(), 3);
        let seqnos: Vec<u64> = w.iter().map(|d| d.seqno.get()).collect();
        assert_eq!(seqnos, vec![3, 4, 5]);
    }

    #[test]
    fn zero_capacity_disables_replay() {
        let mut em = DerivedEmitter::new(derived_var(0, 0));
        let mut w = ReplayWindow::new(0);
        w.push(em.emit(DerivedPayload::Aggregate(1.0)));
        assert!(w.is_empty());
    }
}
