//! The deterministic in-process tree harness.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rcm_core::{Alert, CeId, DerivedUpdate, Update, VarId};
use rcm_transport::wire::{self, Codec, Message};

use crate::leaf::{LeafCe, LeafOutput};
use crate::plan::{TreeOptions, TreePlan};
use crate::relay::Relay;
use crate::root::RootCe;

/// Uplink destination of a node: an interior relay or the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef {
    /// Relay `idx` on interior tier `tier` (1-based above the leaves).
    Relay {
        /// Interior tier, `1..=relay_tiers`.
        tier: usize,
        /// Node index within the tier.
        idx: usize,
    },
    /// The root CE.
    Root,
}

/// Counters describing one tree run, mirrored into the runtime's
/// `RunReport` and the chaos gauntlet's JSON document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct TreeStats {
    /// Raw updates routed to their owning leaf.
    pub updates_routed: u64,
    /// Raw updates whose variable no leaf owns (dropped).
    pub updates_unowned: u64,
    /// Raw updates discarded by leaf gates (duplicates / reorders).
    pub gate_dropped_raw: u64,
    /// Alerts emitted by leaf replicas for their own displayers.
    pub leaf_alerts: u64,
    /// Derived updates stamped by leaf emitters (all replicas).
    pub derived_emitted: u64,
    /// Derived updates forwarded by interior relays.
    pub derived_forwarded: u64,
    /// Derived duplicates discarded by relay and root gates (replica
    /// copies, re-parent replays).
    pub derived_duplicates: u64,
    /// Children moved to a new parent after a relay death.
    pub reparent_events: u64,
    /// Derived updates replayed from sender windows during re-parents.
    pub replayed_frames: u64,
    /// Derived updates sent to a dead relay and lost in flight.
    pub frames_to_dead: u64,
    /// Alerts the root displayed.
    pub root_alerts: u64,
    /// Tier-link frames round-tripped through the binary codec
    /// (when `wire_check` is on).
    pub wire_frames: u64,
    /// Bytes those frames occupied on the wire.
    pub wire_bytes: u64,
}

/// A whole aggregation tree evaluated synchronously in-process:
/// deterministic, single-threaded, byte-faithful to what the threaded
/// runtime deployment computes.
///
/// Every raw update is routed to the single leaf owning its variable;
/// each leaf replica evaluates it and the resulting derived updates
/// climb the relay chain (optionally round-tripped through the binary
/// wire codec per hop) to the root. [`TreeEval::kill_relay`] and
/// [`TreeEval::reparent_orphans`] model the failure path: frames sent
/// to a dead relay are lost until the orphaned children are adopted by
/// a sibling (or an ancestor) and replay their bounded windows.
#[derive(Debug)]
pub struct TreeEval {
    opts: TreeOptions,
    owner: BTreeMap<VarId, usize>,
    /// `[leaf][replica]`.
    leaves: Vec<Vec<LeafCe>>,
    /// `[tier-1][idx]` for interior tiers `1..=relay_tiers`.
    relays: Vec<Vec<Relay>>,
    /// `parents[t][n]`: uplink of node `n` at tier `t` (`0` = leaves).
    parents: Vec<Vec<NodeRef>>,
    root: RootCe,
    counters: TreeStats,
}

impl TreeEval {
    /// Builds the tree a plan describes under the given options.
    ///
    /// # Panics
    ///
    /// Panics if `opts.leaf_replicas` or `opts.shards_per_leaf` is
    /// zero.
    pub fn build(plan: TreePlan, opts: TreeOptions) -> Self {
        assert!(opts.leaf_replicas >= 1, "need at least one replica per leaf");
        assert!(opts.shards_per_leaf >= 1, "need at least one shard per leaf");
        let (leaves_n, tiers, fanout) = (plan.leaves(), plan.relay_tiers(), plan.fanout());

        // Tier widths: leaves, then each relay tier shrinks by fanout.
        let mut width = vec![leaves_n];
        for t in 1..=tiers {
            width.push(width[t - 1].div_ceil(fanout).max(1));
        }

        let mut parents: Vec<Vec<NodeRef>> = Vec::with_capacity(tiers + 1);
        for (t, &w) in width.iter().enumerate() {
            let tier_parents = (0..w)
                .map(|n| {
                    if t == tiers {
                        NodeRef::Root
                    } else {
                        NodeRef::Relay { tier: t + 1, idx: (n / fanout).min(width[t + 1] - 1) }
                    }
                })
                .collect();
            parents.push(tier_parents);
        }

        let leaves = (0..leaves_n)
            .map(|leaf| {
                (0..opts.leaf_replicas)
                    .map(|r| {
                        LeafCe::build(
                            leaf as u32,
                            CeId::new((leaf * opts.leaf_replicas + r) as u32 + 1),
                            &plan.leaf_conds[leaf],
                            opts.shards_per_leaf,
                            opts.replay_window,
                            opts.aggregates,
                        )
                    })
                    .collect()
            })
            .collect();

        let relays = (1..=tiers)
            .map(|t| {
                (0..width[t]).map(|n| Relay::new(t as u8, n as u32, opts.replay_window)).collect()
            })
            .collect();

        let root = RootCe::build(opts.root_ce, &plan.root_conds);
        let owner: BTreeMap<VarId, usize> = plan.owned_vars().into_iter().collect();
        TreeEval { opts, owner, leaves, relays, parents, root, counters: TreeStats::default() }
    }

    /// Offers one raw update to the tree, appending root-displayed
    /// alerts to `out`.
    pub fn ingest(&mut self, update: Update, out: &mut Vec<Alert>) {
        let Some(&leaf) = self.owner.get(&update.var) else {
            self.counters.updates_unowned += 1;
            return;
        };
        self.counters.updates_routed += 1;
        let uplink = self.parents[0][leaf];
        let mut batches: Vec<Vec<DerivedUpdate>> = Vec::new();
        for replica in &mut self.leaves[leaf] {
            let mut lo = LeafOutput::default();
            replica.ingest(update, &mut lo);
            self.counters.leaf_alerts += lo.alerts.len() as u64;
            batches.push(lo.derived);
        }
        for batch in batches {
            for d in batch {
                self.deliver(uplink, d, out);
            }
        }
    }

    /// Walks one derived update up the tree from `at`.
    fn deliver(&mut self, mut at: NodeRef, mut d: DerivedUpdate, out: &mut Vec<Alert>) {
        loop {
            if self.opts.wire_check {
                d = self.wire_roundtrip(d);
            }
            match at {
                NodeRef::Relay { tier, idx } => {
                    let relay = &mut self.relays[tier - 1][idx];
                    if relay.is_dead() {
                        // A frame to a crashed node is in-flight loss;
                        // the sender's replay window is the recovery.
                        self.counters.frames_to_dead += 1;
                        return;
                    }
                    match relay.ingest(&d) {
                        Some(fwd) => {
                            d = fwd;
                            at = self.parents[tier][idx];
                        }
                        None => return,
                    }
                }
                NodeRef::Root => {
                    self.root.ingest(&d, out);
                    return;
                }
            }
        }
    }

    /// One tier-link hop through the version-gated binary codec:
    /// encode, frame, decode, assert fidelity.
    fn wire_roundtrip(&mut self, d: DerivedUpdate) -> DerivedUpdate {
        let msg = Message::Derived(d);
        self.counters.wire_frames += 1;
        self.counters.wire_bytes +=
            wire::frame_len(Codec::Binary, &msg).expect("derived frame sizes") as u64;
        match (wire::roundtrip_with(Codec::Binary, &msg), msg) {
            (Message::Derived(back), Message::Derived(sent)) => {
                assert_eq!(back, sent, "tier-link codec must be lossless");
                back
            }
            _ => unreachable!("derived frame decoded as a different message kind"),
        }
    }

    /// Crashes relay `idx` on interior tier `tier` (1-based). Frames
    /// keep flowing into the dead node — and are lost — until
    /// [`TreeEval::reparent_orphans`] runs, modeling detection lag.
    pub fn kill_relay(&mut self, tier: usize, idx: usize) {
        self.relays[tier - 1][idx].kill();
    }

    /// Crashes one replica of a leaf; surviving replicas keep the
    /// leaf's derived streams alive with no gap.
    pub fn kill_leaf_replica(&mut self, leaf: usize, replica: usize) {
        self.leaves[leaf][replica].kill();
    }

    /// Adopts every child whose parent is dead onto the nearest live
    /// sibling of the dead relay (or, with none live, the dead relay's
    /// closest live ancestor), then replays each moved child's window
    /// through its new path. Returns the number of children moved.
    ///
    /// Idempotent and always safe: every gate on the new path discards
    /// elements it already admitted, so replay can only *add* what the
    /// outage lost (bounded by the window).
    pub fn reparent_orphans(&mut self, out: &mut Vec<Alert>) -> usize {
        let mut moved = 0;
        for t in 0..self.parents.len() {
            for n in 0..self.parents[t].len() {
                let NodeRef::Relay { tier, idx } = self.parents[t][n] else { continue };
                if !self.relays[tier - 1][idx].is_dead() {
                    continue;
                }
                let adopted = self.adoptive_parent(tier, idx);
                self.parents[t][n] = adopted;
                self.counters.reparent_events += 1;
                moved += 1;
                let window: Vec<DerivedUpdate> = if t == 0 {
                    self.leaves[n]
                        .iter()
                        .find(|r| !r.is_dead())
                        .map(|r| r.window().iter().cloned().collect())
                        .unwrap_or_default()
                } else {
                    self.relays[t - 1][n].window().iter().cloned().collect()
                };
                self.counters.replayed_frames += window.len() as u64;
                for d in window {
                    self.deliver(adopted, d, out);
                }
            }
        }
        moved
    }

    /// New parent for the children of dead relay `(tier, idx)`: the
    /// nearest live sibling, else the dead node's closest live
    /// ancestor (ultimately the root, which cannot die).
    fn adoptive_parent(&self, tier: usize, idx: usize) -> NodeRef {
        let siblings = &self.relays[tier - 1];
        let mut best: Option<usize> = None;
        for (j, r) in siblings.iter().enumerate() {
            if j == idx || r.is_dead() {
                continue;
            }
            let closer = match best {
                None => true,
                Some(b) => j.abs_diff(idx) < b.abs_diff(idx),
            };
            if closer {
                best = Some(j);
            }
        }
        if let Some(j) = best {
            return NodeRef::Relay { tier, idx: j };
        }
        let mut at = self.parents[tier][idx];
        loop {
            match at {
                NodeRef::Relay { tier: t, idx: i } if self.relays[t - 1][i].is_dead() => {
                    at = self.parents[t][i];
                }
                live => return live,
            }
        }
    }

    /// Number of interior relay tiers.
    pub fn relay_tiers(&self) -> usize {
        self.relays.len()
    }

    /// Width of interior tier `tier` (1-based).
    pub fn relay_width(&self, tier: usize) -> usize {
        self.relays[tier - 1].len()
    }

    /// Read access to one leaf replica.
    pub fn leaf(&self, leaf: usize, replica: usize) -> &LeafCe {
        &self.leaves[leaf][replica]
    }

    /// Read access to one relay.
    pub fn relay(&self, tier: usize, idx: usize) -> &Relay {
        &self.relays[tier - 1][idx]
    }

    /// Read access to the root.
    pub fn root(&self) -> &RootCe {
        &self.root
    }

    /// The run's counters so far.
    pub fn stats(&self) -> TreeStats {
        let mut s = self.counters;
        for group in &self.leaves {
            for replica in group {
                s.derived_emitted += replica.derived_emitted();
                s.gate_dropped_raw += replica.dropped_by_gate();
            }
        }
        for tier in &self.relays {
            for relay in tier {
                s.derived_forwarded += relay.forwarded();
                s.derived_duplicates += relay.duplicates();
            }
        }
        s.derived_duplicates += self.root.duplicates();
        s.root_alerts = self.root.displayed();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::condition::{Cmp, Threshold};
    use rcm_core::CondId;
    use std::sync::Arc;

    /// Two leaves, two conditions each, one variable per condition.
    fn plan2() -> TreePlan {
        let mut plan = TreePlan::new(2);
        for v in 0..4u32 {
            plan.own(VarId::new(v), (v % 2) as usize);
        }
        for c in 0..4u32 {
            plan.add_condition(
                CondId::new(c),
                Arc::new(Threshold::new(VarId::new(c), Cmp::Gt, 10.0)),
            )
            .unwrap();
        }
        plan
    }

    #[test]
    fn two_tier_tree_displays_root_provenance() {
        let opts =
            TreeOptions { root_ce: CeId::new(42), wire_check: true, ..TreeOptions::default() };
        let mut tree = TreeEval::build(plan2(), opts);
        let mut out = Vec::new();
        tree.ingest(Update::new(VarId::new(0), 1, 50.0), &mut out);
        tree.ingest(Update::new(VarId::new(1), 1, 50.0), &mut out);
        tree.ingest(Update::new(VarId::new(9), 1, 50.0), &mut out); // unowned
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|a| a.id.ce == CeId::new(42)));
        let s = tree.stats();
        assert_eq!(s.updates_routed, 2);
        assert_eq!(s.updates_unowned, 1);
        assert_eq!(s.root_alerts, 2);
        assert_eq!(s.derived_emitted, 2);
        assert!(s.wire_frames >= 2, "wire_check round-trips every hop");
        assert!(s.wire_bytes > 0);
    }

    #[test]
    fn replicas_are_transparent_to_the_root() {
        let opts = TreeOptions { leaf_replicas: 3, ..TreeOptions::default() };
        let mut tree = TreeEval::build(plan2(), opts);
        let mut out = Vec::new();
        tree.ingest(Update::new(VarId::new(0), 1, 50.0), &mut out);
        assert_eq!(out.len(), 1, "three replicas, one displayed alert");
        let s = tree.stats();
        assert_eq!(s.derived_emitted, 3);
        assert_eq!(s.derived_duplicates, 2);
    }

    #[test]
    fn relay_death_loses_frames_until_reparent_replays_them() {
        let opts = TreeOptions { replay_window: 16, ..TreeOptions::default() };
        let plan = {
            let mut p = plan2().with_relay_tiers(1).with_fanout(1);
            p.own(VarId::new(8), 0); // extra var so widths stay put
            p
        };
        let mut tree = TreeEval::build(plan, opts);
        assert_eq!(tree.relay_tiers(), 1);
        assert_eq!(tree.relay_width(1), 2, "fanout 1 keeps one relay per leaf");

        let mut out = Vec::new();
        tree.ingest(Update::new(VarId::new(0), 1, 50.0), &mut out);
        assert_eq!(out.len(), 1);

        // Leaf 0's relay dies; the next update's frame is lost.
        tree.kill_relay(1, 0);
        tree.ingest(Update::new(VarId::new(0), 2, 60.0), &mut out);
        assert_eq!(out.len(), 1, "frame to dead relay lost");
        assert_eq!(tree.stats().frames_to_dead, 1);

        // Re-parent: leaf 0 adopts relay 1 and replays its window.
        let moved = tree.reparent_orphans(&mut out);
        assert_eq!(moved, 1);
        assert_eq!(out.len(), 2, "window replay recovered the lost verdict");
        let s = tree.stats();
        assert_eq!(s.reparent_events, 1);
        assert!(s.replayed_frames >= 2);
        // The replayed copy of the first verdict was gated as duplicate.
        assert!(s.derived_duplicates >= 1);
        // Exactly-once: indices 0 and 1 for condition 0, no gaps.
        let indices: Vec<u64> =
            out.iter().filter(|a| a.cond == CondId::new(0)).map(|a| a.id.index).collect();
        assert_eq!(indices, vec![0, 1]);

        // Replay is idempotent: nothing new on a second pass.
        let before = out.len();
        tree.reparent_orphans(&mut out);
        assert_eq!(out.len(), before);
    }

    #[test]
    fn deep_tree_collapses_all_relays_to_root_when_all_die() {
        let opts = TreeOptions::default();
        let mut tree = TreeEval::build(plan2().with_relay_tiers(2).with_fanout(2), opts);
        let mut out = Vec::new();
        tree.ingest(Update::new(VarId::new(0), 1, 50.0), &mut out);
        assert_eq!(out.len(), 1);
        // Kill every relay on both tiers: children fall through to root.
        for tier in 1..=tree.relay_tiers() {
            for idx in 0..tree.relay_width(tier) {
                tree.kill_relay(tier, idx);
            }
        }
        tree.reparent_orphans(&mut out);
        tree.ingest(Update::new(VarId::new(0), 2, 60.0), &mut out);
        assert_eq!(out.len(), 2, "orphans route straight to root");
        assert_eq!(out[1].id.index, 1);
    }
}
