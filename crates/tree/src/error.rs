//! Tree-construction errors.

use std::fmt;

use rcm_core::{CondId, VarId};

/// Why a [`TreePlan`](crate::TreePlan) rejected a condition or a
/// build step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// A condition mentions a variable no leaf owns.
    UnownedVariable {
        /// The rejected condition.
        cond: CondId,
        /// The variable missing from the ownership map.
        var: VarId,
    },
    /// A condition's variables span two leaves. Conditions must be
    /// co-located with the single leaf owning all their variables —
    /// that co-location is what makes the tree byte-identical to a
    /// flat CE (no cross-leaf alert merge exists).
    ConditionStraddlesLeaves {
        /// The rejected condition.
        cond: CondId,
        /// One owning leaf.
        a: usize,
        /// The other owning leaf.
        b: usize,
    },
    /// A condition has an empty variable set, so no leaf can own it.
    ConditionHasNoVariables {
        /// The rejected condition.
        cond: CondId,
    },
    /// The condition id is already assigned (leaf or root).
    DuplicateCondition {
        /// The clashing id.
        cond: CondId,
    },
    /// A root condition mentions a raw (non-derived) variable. Root
    /// conditions monitor derived streams only; raw variables belong
    /// to the leaf tier.
    RootConditionOnRawVariable {
        /// The rejected condition.
        cond: CondId,
        /// The offending raw variable.
        var: VarId,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnownedVariable { cond, var } => {
                write!(f, "condition {cond} mentions {var}, which no leaf owns")
            }
            TreeError::ConditionStraddlesLeaves { cond, a, b } => {
                write!(f, "condition {cond} straddles leaves {a} and {b}")
            }
            TreeError::ConditionHasNoVariables { cond } => {
                write!(f, "condition {cond} has no variables to assign a leaf by")
            }
            TreeError::DuplicateCondition { cond } => {
                write!(f, "condition id {cond} is already assigned")
            }
            TreeError::RootConditionOnRawVariable { cond, var } => {
                write!(f, "root condition {cond} mentions raw variable {var}")
            }
        }
    }
}

impl std::error::Error for TreeError {}
