//! The full AD-1…AD-6 property matrix **over a derived-update
//! stream**: a leaf CE's verdicts, shadowed into raw updates
//! ([`DerivedUpdate::as_update`]), become the input variable of a
//! replicated parent tier whose Alert Displayer runs each of the
//! paper's six filtering algorithms. The paper's per-algorithm
//! guarantees must hold unchanged — derived streams keep the exact
//! `(variable, seqno, value)` contract raw DM streams have, so the
//! property checkers apply verbatim:
//!
//! | filter | asserted on the derived stream          |
//! |--------|-----------------------------------------|
//! | AD-1   | complete, consistent                    |
//! | AD-2   | ordered                                 |
//! | AD-3   | consistent                              |
//! | AD-4   | ordered, consistent                     |
//! | AD-5   | ordered (multi-variable machinery)      |
//! | AD-6   | consistent (multi-variable machinery)   |

use std::sync::Arc;

use proptest::prelude::*;

use rcm_core::ad::{apply_filter, Ad1, Ad2, Ad3, Ad4, Ad5, Ad6, AlertFilter};
use rcm_core::condition::{Cmp, DeltaRise, Threshold};
use rcm_core::{Alert, CeId, CondId, DerivedUpdate, Evaluator, Update, VarId};
use rcm_props::{check_complete_single, check_consistent_single, check_ordered};
use rcm_tree::{verdict_stream, LeafCe, TreeOptions, TreePlan};

/// splitmix64.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs a leaf over a seeded raw stream and returns its verdict
/// stream's raw-update shadow — consecutive seqnos stamped by the
/// leaf's emitter, values all `1.0`.
fn derived_inputs(seed: u64) -> Vec<Update> {
    let x = VarId::new(0);
    let mut plan = TreePlan::new(1);
    plan.own(x, 0);
    plan.add_condition(CondId::new(0), Arc::new(Threshold::new(x, Cmp::Gt, 0.0))).unwrap();
    let opts = TreeOptions::default();
    let mut leaf = LeafCe::from_plan(&plan, 0, CeId::new(1), &opts);

    let mut rng = seed.wrapping_mul(2).wrapping_add(1);
    let mut derived: Vec<DerivedUpdate> = Vec::new();
    let mut seqno = 0;
    for _ in 0..120 {
        seqno += 1 + mix(&mut rng) % 2; // gaps model front-link loss
        let value = (mix(&mut rng) % 40) as f64 - 10.0;
        let mut out = rcm_tree::LeafOutput::default();
        leaf.ingest(Update::new(x, seqno, value), &mut out);
        derived.extend(out.derived);
    }
    let updates: Vec<Update> = derived.iter().map(DerivedUpdate::as_update).collect();
    assert!(updates.len() > 20, "seed {seed} produced a trivial stream");
    assert!(updates.iter().all(|u| u.var == verdict_stream(0, 0)));
    updates
}

/// Two parent-tier replicas fed scripted-loss subsequences of the
/// derived stream; their alert streams are interleaved round-robin
/// (worst case for orderedness) into one arrival sequence.
struct Replicated {
    inputs: Vec<Vec<Update>>,
    arrivals: Vec<Alert>,
}

fn replicate<C: rcm_core::Condition + Clone>(
    cond: &C,
    stream: &[Update],
    seed: u64,
    loss_pct: u64,
) -> Replicated {
    let mut rng = seed ^ 0xDEAD_BEEF;
    let mut inputs = Vec::new();
    let mut alert_streams: Vec<Vec<Alert>> = Vec::new();
    for replica in 0..2u32 {
        let mut ev = Evaluator::with_ids(cond.clone(), CondId::SINGLE, CeId::new(replica));
        let mut received = Vec::new();
        let mut alerts = Vec::new();
        for &u in stream {
            if mix(&mut rng) % 100 < loss_pct {
                continue;
            }
            received.push(u);
            if let Ok(Some(a)) = ev.try_ingest(u) {
                alerts.push(a);
            }
        }
        inputs.push(received);
        alert_streams.push(alerts);
    }
    let mut arrivals = Vec::new();
    let (a, b) = (alert_streams.remove(0), alert_streams.remove(0));
    let (mut ia, mut ib) = (a.into_iter(), b.into_iter());
    loop {
        match (ia.next(), ib.next()) {
            (None, None) => break,
            (x, y) => {
                arrivals.extend(x);
                arrivals.extend(y);
            }
        }
    }
    Replicated { inputs, arrivals }
}

fn run_matrix<C: rcm_core::Condition + Clone>(cond: &C, seed: u64, loss_pct: u64) {
    let stream = derived_inputs(seed);
    let var = verdict_stream(0, 0);
    let rep = replicate(cond, &stream, seed, loss_pct);
    let ctx = format!("seed {seed}, loss {loss_pct}%");

    let filters: Vec<(&str, Box<dyn AlertFilter>, bool, bool, bool)> = vec![
        ("AD-1", Box::new(Ad1::new()), false, true, true),
        ("AD-2", Box::new(Ad2::new(var)), true, false, false),
        ("AD-3", Box::new(Ad3::new(var)), false, false, true),
        ("AD-4", Box::new(Ad4::new(var)), true, false, true),
        ("AD-5", Box::new(Ad5::new([var])), true, false, false),
        ("AD-6", Box::new(Ad6::new([var])), false, false, true),
    ];
    for (name, mut filter, ordered, complete, consistent) in filters {
        let displayed = apply_filter(filter.as_mut(), &rep.arrivals);
        if ordered {
            let r = check_ordered(&displayed, &[var]);
            assert!(r.ok, "{ctx}: {name} orderedness violated: {:?}", r.violation);
        }
        if complete {
            let r = check_complete_single(cond, &rep.inputs, &displayed);
            assert!(r.ok, "{ctx}: {name} completeness violated: {r:?}");
        }
        if consistent {
            let r = check_consistent_single(cond, &rep.inputs, &displayed);
            assert!(r.ok, "{ctx}: {name} consistency violated: {r:?}");
        }
    }
}

#[test]
fn matrix_holds_on_lossless_tier_links() {
    let var = verdict_stream(0, 0);
    for seed in 0..8u64 {
        run_matrix(&Threshold::new(var, Cmp::Gt, 0.5), seed, 0);
    }
}

#[test]
fn matrix_holds_under_20pct_tier_link_loss() {
    let var = verdict_stream(0, 0);
    for seed in 0..8u64 {
        run_matrix(&Threshold::new(var, Cmp::Gt, 0.5), seed, 20);
    }
}

/// A two-history condition over the derived stream: consistency (and
/// orderedness for the filters that promise it) must survive replica
/// divergence — the interesting regime the paper's §3 is about.
#[test]
fn history_condition_over_derived_stream() {
    let var = verdict_stream(0, 0);
    for seed in 0..8u64 {
        let cond = DeltaRise::new(var, -0.5); // any consecutive pair fires
        let stream = derived_inputs(seed);
        let rep = replicate(&cond, &stream, seed, 20);
        let ctx = format!("seed {seed}");

        let mut ad3 = Ad3::new(var);
        let displayed = apply_filter(&mut ad3, &rep.arrivals);
        let r = check_consistent_single(&cond, &rep.inputs, &displayed);
        assert!(r.ok, "{ctx}: AD-3 consistency violated: {r:?}");

        let mut ad4 = Ad4::new(var);
        let displayed = apply_filter(&mut ad4, &rep.arrivals);
        assert!(check_ordered(&displayed, &[var]).ok, "{ctx}: AD-4 orderedness");
        let r = check_consistent_single(&cond, &rep.inputs, &displayed);
        assert!(r.ok, "{ctx}: AD-4 consistency violated: {r:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The matrix over drawn seeds and loss rates.
    #[test]
    fn matrix_holds_for_any_seed(
        seed in 0u64..1_000_000,
        loss_pct in prop_oneof![Just(0u64), Just(20u64), Just(50u64)],
    ) {
        let var = verdict_stream(0, 0);
        run_matrix(&Threshold::new(var, Cmp::Gt, 0.5), seed, loss_pct);
    }
}
