//! Keystone property: an aggregation tree displays **byte-identically**
//! the alert sequence of one flat CE fed the combined post-loss stream
//! — same fingerprints, snapshots and `AlertId` numbering — for any
//! leaf count, relay depth, fanout, shard count and replica count, at
//! 0% and 20% scripted front-link loss, with every tier-link hop
//! round-tripped through the binary wire codec.
//!
//! The deterministic seed sweep actually executes everywhere (it is
//! what CI's offline harness runs); the proptest block widens the same
//! property over drawn parameters under `cargo test`.

use std::sync::Arc;

use proptest::prelude::*;

use rcm_core::condition::{Cmp, Threshold};
use rcm_core::{Alert, CeId, CondId, ConditionRegistry, Update, VarId};
use rcm_transport::SeqGate;
use rcm_tree::{TreeEval, TreeOptions, TreePlan};

const ROOT_CE: CeId = CeId::new(77);

/// splitmix64 — the repo's stock deterministic scrambler.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Everything one equivalence case needs, derived from a seed.
struct Case {
    /// `(global cond id, owning leaf, variable, threshold)`.
    conds: Vec<(CondId, usize, VarId, f64)>,
    /// `(variable, owning leaf)`.
    vars: Vec<(VarId, usize)>,
    /// The post-loss stream both systems are fed.
    stream: Vec<Update>,
    leaves: usize,
    relay_tiers: usize,
    fanout: usize,
    replicas: usize,
    shards: usize,
}

fn build_case(seed: u64, loss_pct: u64) -> Case {
    let mut rng = seed.wrapping_mul(2).wrapping_add(1);
    let leaves = 1 + (mix(&mut rng) % 4) as usize;
    let relay_tiers = (mix(&mut rng) % 3) as usize;
    let fanout = 1 + (mix(&mut rng) % 3) as usize;
    let replicas = 1 + (mix(&mut rng) % 3) as usize;
    let shards = 1 + (mix(&mut rng) % 4) as usize;

    // Disjoint variable shards: each leaf owns 1..=3 variables.
    let mut vars = Vec::new();
    let mut next_var = 0u32;
    let mut per_leaf_vars: Vec<Vec<VarId>> = Vec::new();
    for leaf in 0..leaves {
        let n = 1 + (mix(&mut rng) % 3) as usize;
        let mut mine = Vec::new();
        for _ in 0..n {
            let v = VarId::new(next_var);
            next_var += 1;
            vars.push((v, leaf));
            mine.push(v);
        }
        per_leaf_vars.push(mine);
    }

    // 1..=3 conditions per leaf over its own variables, with global
    // condition ids *interleaved* across leaves (round-robin) so the
    // equivalence cannot lean on ids being contiguous per leaf.
    let mut staged: Vec<Vec<(usize, VarId, f64)>> = Vec::new();
    for (leaf, mine) in per_leaf_vars.iter().enumerate() {
        let n = 1 + (mix(&mut rng) % 3) as usize;
        let mut here = Vec::new();
        for _ in 0..n {
            let var = mine[(mix(&mut rng) as usize) % mine.len()];
            let threshold = (mix(&mut rng) % 100) as f64 - 50.0;
            here.push((leaf, var, threshold));
        }
        staged.push(here);
    }
    let mut conds = Vec::new();
    let mut next_id = 0u32;
    let mut round = 0usize;
    loop {
        let mut any = false;
        for here in &staged {
            if let Some(&(leaf, var, threshold)) = here.get(round) {
                conds.push((CondId::new(next_id), leaf, var, threshold));
                next_id += 1;
                any = true;
            }
        }
        if !any {
            break;
        }
        round += 1;
    }

    // A 200-step stream with per-variable seqno gaps, then scripted
    // loss applied *once* — both systems see the identical survivor
    // sequence, as lossless tier links guarantee in deployment.
    let mut next_seq: Vec<u64> = vec![1; vars.len()];
    let mut stream = Vec::new();
    for _ in 0..200 {
        let vi = (mix(&mut rng) as usize) % vars.len();
        let gap = 1 + (mix(&mut rng) % 2);
        let seqno = next_seq[vi] + gap - 1;
        next_seq[vi] = seqno + 1;
        let value = (mix(&mut rng) % 120) as f64 - 60.0;
        if mix(&mut rng) % 100 < loss_pct {
            continue; // lost on the front link
        }
        stream.push(Update::new(vars[vi].0, seqno, value));
    }

    Case { conds, vars, stream, leaves, relay_tiers, fanout, replicas, shards }
}

/// The flat reference: one gate, one registry hosting every condition,
/// registered in ascending global id order (the unsharded emission
/// order the tree must reproduce).
fn run_flat(case: &Case) -> Vec<Alert> {
    let mut gate = SeqGate::new();
    let mut reg = ConditionRegistry::new(ROOT_CE);
    let mut sorted = case.conds.clone();
    sorted.sort_by_key(|(id, ..)| id.index());
    for (id, _, var, threshold) in sorted {
        reg.insert(id, Arc::new(Threshold::new(var, Cmp::Gt, threshold)));
    }
    let mut out = Vec::new();
    for &u in &case.stream {
        if gate.admit(&u) {
            reg.ingest(u, &mut out);
        }
    }
    out
}

fn run_tree(case: &Case, wire_check: bool) -> (Vec<Alert>, rcm_tree::TreeStats) {
    let mut plan =
        TreePlan::new(case.leaves).with_relay_tiers(case.relay_tiers).with_fanout(case.fanout);
    for &(var, leaf) in &case.vars {
        plan.own(var, leaf);
    }
    for &(id, leaf, var, threshold) in &case.conds {
        let placed =
            plan.add_condition(id, Arc::new(Threshold::new(var, Cmp::Gt, threshold))).unwrap();
        assert_eq!(placed, leaf, "placement follows ownership");
    }
    let opts = TreeOptions {
        root_ce: ROOT_CE,
        leaf_replicas: case.replicas,
        shards_per_leaf: case.shards,
        wire_check,
        ..TreeOptions::default()
    };
    let mut tree = TreeEval::build(plan, opts);
    let mut out = Vec::new();
    for &u in &case.stream {
        tree.ingest(u, &mut out);
    }
    let stats = tree.stats();
    (out, stats)
}

fn assert_byte_identical(got: &[Alert], want: &[Alert], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: alert counts differ");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g, w, "{context}: alert {i} differs (cond/fingerprint)");
        assert_eq!(g.id, w.id, "{context}: alert {i} provenance differs");
        assert_eq!(g.snapshot[..], w.snapshot[..], "{context}: alert {i} snapshot differs");
    }
}

#[test]
fn tree_matches_flat_ce_lossless_seed_sweep() {
    for seed in 0..24u64 {
        let case = build_case(seed, 0);
        let want = run_flat(&case);
        let (got, stats) = run_tree(&case, true);
        assert_byte_identical(&got, &want, &format!("seed {seed}, 0% loss"));
        assert_eq!(stats.root_alerts as usize, want.len());
        assert_eq!(
            stats.derived_duplicates,
            stats.derived_emitted - stats.derived_emitted / case.replicas as u64,
            "seed {seed}: replica copies beyond the first are gated out"
        );
        if case.relay_tiers > 0 && !want.is_empty() {
            assert!(stats.derived_forwarded > 0, "seed {seed}: relays carried the streams");
        }
    }
}

#[test]
fn tree_matches_flat_ce_under_20pct_loss_seed_sweep() {
    for seed in 0..24u64 {
        let case = build_case(seed, 20);
        let want = run_flat(&case);
        let (got, _) = run_tree(&case, true);
        assert_byte_identical(&got, &want, &format!("seed {seed}, 20% loss"));
    }
}

/// Re-parenting mid-stream keeps every per-condition alert sequence
/// byte-identical to the flat CE (global interleaving may shift while
/// a subtree is orphaned; per-stream order and exactly-once may not).
#[test]
fn reparented_tree_preserves_per_condition_sequences() {
    for seed in 0..12u64 {
        let mut case = build_case(seed, 10);
        case.relay_tiers = 1;
        case.fanout = 1; // one relay per leaf: killing one orphans one subtree
        let want = run_flat(&case);

        let mut plan = TreePlan::new(case.leaves).with_relay_tiers(1).with_fanout(1);
        for &(var, leaf) in &case.vars {
            plan.own(var, leaf);
        }
        for &(id, _, var, threshold) in &case.conds {
            plan.add_condition(id, Arc::new(Threshold::new(var, Cmp::Gt, threshold))).unwrap();
        }
        let opts = TreeOptions {
            root_ce: ROOT_CE,
            leaf_replicas: case.replicas,
            shards_per_leaf: case.shards,
            replay_window: 512, // outage shorter than the window: lossless recovery
            wire_check: true,
            ..TreeOptions::default()
        };
        let mut tree = TreeEval::build(plan, opts);
        let mut got = Vec::new();
        let third = case.stream.len() / 3;
        for (i, &u) in case.stream.iter().enumerate() {
            if i == third {
                tree.kill_relay(1, 0);
            }
            if i == 2 * third {
                tree.reparent_orphans(&mut got);
            }
            tree.ingest(u, &mut got);
        }
        tree.reparent_orphans(&mut got);

        // Same multiset; per condition, the exact flat sequence.
        assert_eq!(got.len(), want.len(), "seed {seed}: exactly-once count");
        let conds: std::collections::BTreeSet<u32> = want.iter().map(|a| a.cond.index()).collect();
        for cond in conds {
            let g: Vec<&Alert> = got.iter().filter(|a| a.cond.index() == cond).collect();
            let w: Vec<&Alert> = want.iter().filter(|a| a.cond.index() == cond).collect();
            assert_eq!(g.len(), w.len(), "seed {seed}, cond {cond}: count");
            for (x, y) in g.iter().zip(&w) {
                assert_eq!(x, y, "seed {seed}, cond {cond}: alert payload");
                assert_eq!(x.id, y.id, "seed {seed}, cond {cond}: provenance");
            }
        }
        let stats = tree.stats();
        assert!(stats.reparent_events >= 1, "seed {seed}: a subtree was re-parented");
        assert!(stats.replayed_frames > 0, "seed {seed}: windows were replayed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same property over drawn seeds and loss rates.
    #[test]
    fn tree_matches_flat_ce_any_topology(
        seed in 0u64..1_000_000,
        loss_pct in prop_oneof![Just(0u64), Just(20u64)],
    ) {
        let case = build_case(seed, loss_pct);
        let want = run_flat(&case);
        let (got, stats) = run_tree(&case, true);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g, w);
            prop_assert_eq!(g.id, w.id);
            prop_assert_eq!(&g.snapshot[..], &w.snapshot[..]);
        }
        prop_assert_eq!(stats.root_alerts as usize, want.len());
    }
}
