//! A hashed timer wheel: the event loop's single clock for Backoff
//! reconnects, batch `max_delay` flushes, retransmit/finish deadlines
//! and idle backstops.
//!
//! Design: `slots.len()` buckets of `tick` resolution each; a timer
//! with deadline tick `t` lives in bucket `t % slots.len()` and
//! carries its absolute tick, so a bucket visit fires only the
//! entries whose lap has come and *cascades* (keeps) the rest — the
//! classic hashed wheel, O(1) schedule/cancel, no per-timer heap.
//! Entries are slab-allocated with a generation counter: a
//! [`TimerKey`] from a previous occupant of the same slab index can
//! never cancel (or be confused with) the current one, which is what
//! makes cancel-vs-fire races safe by construction.
//!
//! The wheel is deliberately single-threaded (owned by the event
//! loop; fed explicit `now` values), so it needs no locks and runs
//! identically under `--cfg loom` — time comes from the `rcm-sync`
//! shim either way.

// LOCK ORDER: no locks — the wheel is owned by the loop thread.

use rcm_sync::time::{Duration, Instant};

/// A scheduled timer's handle; stale keys (fired, cancelled, or from
/// a recycled slab slot) are harmlessly inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerKey {
    index: usize,
    gen: u64,
}

#[derive(Debug)]
struct Entry {
    gen: u64,
    deadline_tick: u64,
    data: u64,
    armed: bool,
}

/// The wheel itself. All methods take explicit instants so the owner
/// controls the clock — essential for deterministic tests and for the
/// model checker.
#[derive(Debug)]
pub struct TimerWheel {
    start: Instant,
    tick: Duration,
    slots: Vec<Vec<usize>>,
    entries: Vec<Entry>,
    free: Vec<usize>,
    /// The next tick to be processed; every deadline strictly below it
    /// has already fired.
    current_tick: u64,
    armed: usize,
    next_gen: u64,
}

impl TimerWheel {
    /// A wheel anchored at `start` with the given tick resolution and
    /// bucket count (resolution 1 ms × 256 buckets covers a quarter
    /// second per lap; longer deadlines just cascade).
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero or `buckets` is zero — a degenerate
    /// wheel cannot make progress.
    pub fn new(start: Instant, tick: Duration, buckets: usize) -> Self {
        assert!(!tick.is_zero(), "timer wheel tick must be non-zero");
        assert!(buckets > 0, "timer wheel needs at least one bucket");
        TimerWheel {
            start,
            tick,
            slots: (0..buckets).map(|_| Vec::new()).collect(),
            entries: Vec::new(),
            free: Vec::new(),
            current_tick: 0,
            armed: 0,
            next_gen: 1,
        }
    }

    /// How many timers are currently armed.
    pub fn armed(&self) -> usize {
        self.armed
    }

    fn tick_of(&self, at: Instant) -> u64 {
        if at <= self.start {
            return 0;
        }
        let since = at - self.start;
        (since.as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// Schedules `data` to fire once `deadline` has passed; deadlines
    /// already in the past fire on the next [`advance`](Self::advance).
    pub fn schedule_at(&mut self, deadline: Instant, data: u64) -> TimerKey {
        // Round *up* so a timer never fires early, and clamp to the
        // unprocessed region so a past deadline still has a bucket
        // visit ahead of it.
        let raw = self.tick_of(deadline);
        let exact = self.start + self.tick * (raw as u32);
        let tick = (if exact >= deadline { raw } else { raw + 1 }).max(self.current_tick);
        let gen = self.next_gen;
        self.next_gen += 1;
        let entry = Entry { gen, deadline_tick: tick, data, armed: true };
        let index = match self.free.pop() {
            Some(index) => {
                self.entries[index] = entry;
                index
            }
            None => {
                self.entries.push(entry);
                self.entries.len() - 1
            }
        };
        let bucket = (tick % self.slots.len() as u64) as usize;
        self.slots[bucket].push(index);
        self.armed += 1;
        TimerKey { index, gen }
    }

    /// Schedules `data` to fire `delay` after `now`.
    pub fn schedule_after(&mut self, now: Instant, delay: Duration, data: u64) -> TimerKey {
        self.schedule_at(now + delay, data)
    }

    /// Cancels a pending timer; returns whether it was still armed
    /// (false for already-fired, already-cancelled, or stale keys —
    /// the cancel-vs-fire race resolves to "the fire won").
    pub fn cancel(&mut self, key: TimerKey) -> bool {
        match self.entries.get_mut(key.index) {
            Some(entry) if entry.gen == key.gen && entry.armed => {
                entry.armed = false;
                self.armed -= 1;
                true
            }
            _ => false,
        }
    }

    /// The earliest armed deadline, if any (what the event loop turns
    /// into its poll timeout).
    pub fn next_deadline(&self) -> Option<Instant> {
        let mut earliest: Option<u64> = None;
        for entry in &self.entries {
            if entry.armed {
                earliest = Some(match earliest {
                    Some(t) if t <= entry.deadline_tick => t,
                    _ => entry.deadline_tick,
                });
            }
        }
        earliest.map(|t| self.start + self.tick * (t as u32))
    }

    /// Fires everything due at `now`, appending each timer's `data` to
    /// `fired` in tick order; returns how many fired. Buckets holding
    /// later laps are cascaded in place.
    pub fn advance(&mut self, now: Instant, fired: &mut Vec<u64>) -> usize {
        let target = self.tick_of(now);
        if target < self.current_tick {
            return 0;
        }
        let buckets = self.slots.len() as u64;
        let span = target - self.current_tick;
        let visits = if span >= buckets { buckets } else { span + 1 };
        let before = fired.len();
        for i in 0..visits {
            let bucket = ((self.current_tick + i) % buckets) as usize;
            let mut slot = std::mem::take(&mut self.slots[bucket]);
            slot.retain(|&index| {
                let entry = &mut self.entries[index];
                if !entry.armed {
                    // Cancelled while parked: reclaim the slab slot now.
                    self.free.push(index);
                    return false;
                }
                if entry.deadline_tick <= target {
                    fired.push(entry.data);
                    entry.armed = false;
                    self.armed -= 1;
                    self.free.push(index);
                    return false;
                }
                // A later lap: cascade (stay parked in this bucket).
                true
            });
            self.slots[bucket] = slot;
        }
        self.current_tick = target + 1;
        fired.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel(buckets: usize) -> (TimerWheel, Instant) {
        let start = Instant::now();
        (TimerWheel::new(start, Duration::from_millis(1), buckets), start)
    }

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn fires_at_the_deadline_not_before() {
        let (mut w, t0) = wheel(16);
        w.schedule_at(t0 + ms(5), 42);
        let mut fired = Vec::new();
        assert_eq!(w.advance(t0 + ms(4), &mut fired), 0);
        assert!(fired.is_empty());
        assert_eq!(w.advance(t0 + ms(5), &mut fired), 1);
        assert_eq!(fired, vec![42]);
        assert_eq!(w.armed(), 0);
    }

    #[test]
    fn coalesced_deadlines_fire_together_in_schedule_order() {
        let (mut w, t0) = wheel(16);
        w.schedule_at(t0 + ms(3), 1);
        w.schedule_at(t0 + ms(3), 2);
        w.schedule_at(t0 + ms(3), 3);
        let mut fired = Vec::new();
        assert_eq!(w.advance(t0 + ms(3), &mut fired), 3);
        assert_eq!(fired, vec![1, 2, 3]);
    }

    /// Cascade boundary: a deadline exactly one full lap away shares
    /// its bucket with a near deadline; the near visit must not fire
    /// the far entry, and the far entry must survive to its own lap.
    #[test]
    fn full_lap_collision_cascades_instead_of_firing_early() {
        let (mut w, t0) = wheel(8);
        w.schedule_at(t0 + ms(2), 10); // tick 2, bucket 2
        w.schedule_at(t0 + ms(10), 20); // tick 10, bucket 2 as well
        let mut fired = Vec::new();
        assert_eq!(w.advance(t0 + ms(2), &mut fired), 1);
        assert_eq!(fired, vec![10], "the same-bucket far entry cascaded");
        assert_eq!(w.armed(), 1);
        fired.clear();
        assert_eq!(w.advance(t0 + ms(9), &mut fired), 0, "one tick early on the next lap");
        assert_eq!(w.advance(t0 + ms(10), &mut fired), 1);
        assert_eq!(fired, vec![20]);
    }

    /// A jump of many laps in one advance must still fire everything
    /// due exactly once (each bucket is visited at most once).
    #[test]
    fn multi_lap_jump_fires_every_due_timer_exactly_once() {
        let (mut w, t0) = wheel(4);
        for i in 0..12u64 {
            w.schedule_at(t0 + ms(i + 1), i);
        }
        let mut fired = Vec::new();
        assert_eq!(w.advance(t0 + ms(100), &mut fired), 12);
        let mut sorted = fired.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn past_deadlines_fire_on_the_next_advance() {
        let (mut w, t0) = wheel(8);
        let mut fired = Vec::new();
        w.advance(t0 + ms(50), &mut fired);
        w.schedule_at(t0 + ms(3), 7); // long past; clamped, not lost
        assert_eq!(w.advance(t0 + ms(51), &mut fired), 1);
        assert_eq!(fired, vec![7]);
    }

    #[test]
    fn cancel_before_the_deadline_suppresses_the_fire() {
        let (mut w, t0) = wheel(8);
        let key = w.schedule_at(t0 + ms(5), 1);
        assert!(w.cancel(key));
        assert!(!w.cancel(key), "second cancel is a no-op");
        let mut fired = Vec::new();
        assert_eq!(w.advance(t0 + ms(10), &mut fired), 0);
        assert_eq!(w.armed(), 0);
    }

    /// The cancel-vs-fire race: once the deadline has passed and the
    /// wheel advanced, a late cancel must report "too late" and a
    /// stale key must never touch the slab slot's next occupant.
    #[test]
    fn late_cancel_loses_the_race_and_stale_keys_are_inert() {
        let (mut w, t0) = wheel(8);
        let key = w.schedule_at(t0 + ms(2), 1);
        let mut fired = Vec::new();
        assert_eq!(w.advance(t0 + ms(2), &mut fired), 1);
        assert!(!w.cancel(key), "the fire won");
        // The slab slot is recycled with a new generation; the stale
        // key must not cancel the new timer.
        let fresh = w.schedule_at(t0 + ms(5), 2);
        assert!(!w.cancel(key), "stale key is inert against the recycled slot");
        assert!(w.cancel(fresh));
    }

    #[test]
    fn next_deadline_tracks_the_earliest_armed_timer() {
        let (mut w, t0) = wheel(8);
        assert!(w.next_deadline().is_none());
        w.schedule_at(t0 + ms(9), 1);
        let early = w.schedule_at(t0 + ms(4), 2);
        assert_eq!(w.next_deadline(), Some(t0 + ms(4)));
        w.cancel(early);
        assert_eq!(w.next_deadline(), Some(t0 + ms(9)));
    }

    #[test]
    fn cancelled_entries_parked_in_a_bucket_are_reclaimed_on_visit() {
        let (mut w, t0) = wheel(4);
        let keys: Vec<_> = (0..8).map(|i| w.schedule_at(t0 + ms(i + 1), i)).collect();
        for key in &keys {
            assert!(w.cancel(*key));
        }
        let mut fired = Vec::new();
        assert_eq!(w.advance(t0 + ms(20), &mut fired), 0);
        // All slab slots recycled: scheduling 8 more reuses them.
        for i in 0..8u64 {
            w.schedule_at(t0 + ms(30 + i), i);
        }
        assert_eq!(w.armed(), 8);
    }
}
