//! The readiness facade: one type, three backends — epoll on Linux,
//! kqueue on macOS, portable `poll(2)` everywhere (and on demand, for
//! tests that want the fallback exercised on any host).
//!
//! A [`Poller`] owns the platform readiness object plus a self-pipe;
//! [`Waker`] handles (clonable, thread-safe, fd-backed) write one
//! byte to interrupt a wait from any thread, which is how the
//! [`SubmitQueue`](crate::SubmitQueue) handoff turns into a syscall.
//! EINTR is retried here, with the timeout recomputed, so callers
//! never see a spurious early return from a signal.

// LOCK ORDER: no locks — readiness state is single-threaded; wakers use a pipe.

use std::io;
use std::os::fd::RawFd;
use std::time::{Duration, Instant};

use crate::submit::Wake;
use crate::sys;

/// Identifies a registration; returned in every [`Event`]. The
/// all-ones value is reserved for the poller's own waker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// The reserved token reported when a [`Waker`] interrupted the wait.
pub const WAKE_TOKEN: Token = Token(usize::MAX);

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readability.
    pub read: bool,
    /// Wake on writability.
    pub write: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest { read: true, write: false };
    /// Writable only.
    pub const WRITE: Interest = Interest { read: false, write: true };
    /// Both directions.
    pub const BOTH: Interest = Interest { read: true, write: true };
}

/// One readiness delivery out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registration (or [`WAKE_TOKEN`]).
    pub token: Token,
    /// A read will not block.
    pub readable: bool,
    /// A write will not block.
    pub writable: bool,
    /// Error/hangup condition (delivered regardless of interest).
    pub error: bool,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll { epfd: RawFd },
    #[cfg(target_os = "macos")]
    Kqueue { kq: RawFd },
    /// Portable fallback: interest list rebuilt into a pollfd array
    /// per wait. O(n) per call, which is fine as a fallback and ideal
    /// for exercising the backend-independent plumbing in tests.
    Fallback { registered: Vec<(RawFd, u64, Interest)> },
}

/// A clonable, fd-backed handle that interrupts [`Poller::wait`] from
/// any thread.
#[derive(Clone, Debug)]
pub struct Waker {
    inner: std::sync::Arc<WakeFd>,
}

#[derive(Debug)]
struct WakeFd {
    fd: RawFd,
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

impl Wake for Waker {
    fn wake(&self) {
        sys::write_wake_byte(self.inner.fd);
    }
}

/// The readiness multiplexer. Single consumer: exactly one thread
/// calls [`wait`](Self::wait); any thread may use a [`Waker`].
pub struct Poller {
    backend: Backend,
    wake_read: RawFd,
    waker: Waker,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let backend = match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => "epoll",
            #[cfg(target_os = "macos")]
            Backend::Kqueue { .. } => "kqueue",
            Backend::Fallback { .. } => "poll",
        };
        f.debug_struct("Poller").field("backend", &backend).finish()
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => sys::close_fd(*epfd),
            #[cfg(target_os = "macos")]
            Backend::Kqueue { kq } => sys::close_fd(*kq),
            Backend::Fallback { .. } => {}
        }
        sys::close_fd(self.wake_read);
    }
}

impl Poller {
    /// The platform-default backend (epoll on Linux, kqueue on macOS,
    /// `poll(2)` elsewhere).
    ///
    /// # Errors
    ///
    /// Propagates backend/self-pipe creation failures.
    pub fn new() -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            Self::from_backend(Backend::Epoll { epfd: sys::epoll_create()? })
        }
        #[cfg(target_os = "macos")]
        {
            Self::from_backend(Backend::Kqueue { kq: sys::kqueue_create()? })
        }
        #[cfg(not(any(target_os = "linux", target_os = "macos")))]
        {
            Self::with_poll_fallback()
        }
    }

    /// Forces the portable `poll(2)` backend — every platform has it,
    /// so tests can pin it down even where epoll/kqueue exist.
    ///
    /// # Errors
    ///
    /// Propagates self-pipe creation failures.
    pub fn with_poll_fallback() -> io::Result<Self> {
        Self::from_backend(Backend::Fallback { registered: Vec::new() })
    }

    fn from_backend(backend: Backend) -> io::Result<Self> {
        let (wake_read, wake_write) = sys::wake_pipe()?;
        let waker = Waker { inner: std::sync::Arc::new(WakeFd { fd: wake_write }) };
        let mut poller = Poller { backend, wake_read, waker };
        poller.backend_register(wake_read, u64::MAX, Interest::READ)?;
        Ok(poller)
    }

    /// A handle that interrupts this poller's waits; clone freely.
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    /// Starts watching `fd` under `token`.
    ///
    /// # Errors
    ///
    /// Propagates registration failures (closed fds included — a
    /// closed fd is an error, never UB).
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        if token == WAKE_TOKEN {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "token reserved for waker"));
        }
        self.backend_register(fd, token.0 as u64, interest)
    }

    fn backend_register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                sys::epoll_add(*epfd, fd, token, interest.read, interest.write)
            }
            #[cfg(target_os = "macos")]
            Backend::Kqueue { kq } => {
                sys::kqueue_register(*kq, fd, token, interest.read, interest.write)
            }
            Backend::Fallback { registered } => {
                if registered.iter().any(|&(f, _, _)| f == fd) {
                    return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd registered"));
                }
                registered.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Changes an existing registration's token and/or interest.
    ///
    /// # Errors
    ///
    /// Propagates modification failures; a closed (hence deregistered)
    /// fd reports an error rather than silently re-registering.
    pub fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        if token == WAKE_TOKEN {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "token reserved for waker"));
        }
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                sys::epoll_modify(*epfd, fd, token.0 as u64, interest.read, interest.write)
            }
            #[cfg(target_os = "macos")]
            Backend::Kqueue { kq } => {
                sys::kqueue_register(*kq, fd, token.0 as u64, interest.read, interest.write)
            }
            Backend::Fallback { registered } => {
                match registered.iter_mut().find(|&&mut (f, _, _)| f == fd) {
                    Some(entry) => {
                        entry.1 = token.0 as u64;
                        entry.2 = interest;
                        Ok(())
                    }
                    None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
                }
            }
        }
    }

    /// Stops watching `fd`. Harmless on an already-closed fd (the
    /// kernel dropped the registration with the fd).
    pub fn deregister(&mut self, fd: RawFd) {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let _ = sys::epoll_remove(*epfd, fd);
            }
            #[cfg(target_os = "macos")]
            Backend::Kqueue { kq } => sys::kqueue_remove(*kq, fd),
            Backend::Fallback { registered } => registered.retain(|&(f, _, _)| f != fd),
        }
    }

    /// Blocks until readiness, a wake, or the timeout; `None` waits
    /// forever. Replaces the contents of `events`. A [`Waker`] firing
    /// shows up as one event carrying [`WAKE_TOKEN`] (the self-pipe
    /// is drained here). EINTR retries with the timeout recomputed.
    ///
    /// # Errors
    ///
    /// Propagates backend failures other than EINTR.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            let timeout_ms: i32 = match deadline {
                None => -1,
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    // Round up so we never spin on a sub-millisecond
                    // remainder.
                    let ms = (left.as_nanos() + 999_999) / 1_000_000;
                    ms.min(i32::MAX as u128) as i32
                }
            };
            let mut raw: Vec<sys::RawEvent> = Vec::new();
            let result = match &mut self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll { epfd } => {
                    sys::epoll_wait_events(*epfd, &mut raw, 1024, timeout_ms)
                }
                #[cfg(target_os = "macos")]
                Backend::Kqueue { kq } => sys::kqueue_wait_events(*kq, &mut raw, 1024, timeout_ms),
                Backend::Fallback { registered } => {
                    let mut entries: Vec<sys::PollEntry> = registered
                        .iter()
                        .map(|&(fd, _, interest)| {
                            sys::PollEntry::new(fd, interest.read, interest.write)
                        })
                        .collect();
                    match sys::poll_entries(&mut entries, timeout_ms) {
                        Ok(_) => {
                            for (entry, &(_, token, _)) in entries.iter().zip(registered.iter()) {
                                if entry.readable || entry.writable || entry.error {
                                    raw.push(sys::RawEvent {
                                        token,
                                        readable: entry.readable,
                                        writable: entry.writable,
                                        error: entry.error,
                                    });
                                }
                            }
                            Ok(raw.len())
                        }
                        Err(e) => Err(e),
                    }
                }
            };
            match result {
                Ok(_) => {
                    for ev in &raw {
                        if ev.token == u64::MAX {
                            sys::drain_fd(self.wake_read);
                            events.push(Event {
                                token: WAKE_TOKEN,
                                readable: false,
                                writable: false,
                                error: false,
                            });
                        } else {
                            events.push(Event {
                                token: Token(ev.token as usize),
                                readable: ev.readable,
                                writable: ev.writable,
                                error: ev.error,
                            });
                        }
                    }
                    return Ok(events.len());
                }
                Err(e) if sys::is_interrupted(&e) => {
                    // A signal cut the wait short; the deadline math at
                    // the top of the loop absorbs the elapsed time.
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            return Ok(0);
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::UdpSocket;
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Poller> {
        vec![
            Poller::new().expect("platform poller"),
            Poller::with_poll_fallback().expect("fallback"),
        ]
    }

    #[test]
    fn readiness_is_delivered_with_the_registered_token() {
        for mut poller in backends() {
            let rx = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
            let tx = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
            poller.register(rx.as_raw_fd(), Token(5), Interest::READ).expect("register");
            let mut events = Vec::new();
            let n = poller.wait(&mut events, Some(Duration::from_millis(10))).expect("wait");
            assert_eq!(n, 0, "{poller:?}: nothing ready yet");
            tx.send_to(b"x", rx.local_addr().expect("addr")).expect("send");
            let n = poller.wait(&mut events, Some(Duration::from_secs(2))).expect("wait");
            assert_eq!(n, 1, "{poller:?}");
            assert_eq!(events[0].token, Token(5));
            assert!(events[0].readable);
        }
    }

    /// A wake with nothing submitted is the poller-level "spurious
    /// wakeup": the wait returns with only the WAKE_TOKEN event, and
    /// the next wait times out cleanly (the pipe was drained).
    #[test]
    fn spurious_wake_returns_once_then_the_pipe_is_clean() {
        for mut poller in backends() {
            let waker = poller.waker();
            waker.wake();
            waker.wake(); // coalesces: still one wake event
            let mut events = Vec::new();
            let n = poller.wait(&mut events, Some(Duration::from_secs(2))).expect("wait");
            assert_eq!(n, 1, "{poller:?}");
            assert_eq!(events[0].token, WAKE_TOKEN);
            let n = poller.wait(&mut events, Some(Duration::from_millis(10))).expect("wait");
            assert_eq!(n, 0, "{poller:?}: drained, no residual readiness");
        }
    }

    #[test]
    fn waker_crosses_threads() {
        let mut poller = Poller::new().expect("poller");
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut events = Vec::new();
        let started = Instant::now();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
        assert_eq!(n, 1);
        assert!(started.elapsed() < Duration::from_secs(4), "woke well before the timeout");
        handle.join().expect("waker thread");
    }

    /// Closed-fd reregistration: the kernel dropped the registration
    /// with the fd, so a reregister must surface an error (and a
    /// register of the dead fd too) — never a panic or silent success.
    #[cfg(target_os = "linux")]
    #[test]
    fn reregistering_a_closed_fd_is_a_reported_error() {
        let mut poller = Poller::new().expect("poller");
        let fd = {
            let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
            let fd = sock.as_raw_fd();
            poller.register(fd, Token(1), Interest::READ).expect("register live fd");
            fd
            // socket drops: fd closes, kernel auto-deregisters
        };
        assert!(poller.reregister(fd, Token(2), Interest::BOTH).is_err());
        assert!(poller.register(fd, Token(3), Interest::READ).is_err());
    }

    /// EINTR handling: a directed signal interrupts the wait, and the
    /// poller retries instead of returning early or erroring.
    #[cfg(target_os = "linux")]
    #[test]
    fn a_signal_mid_wait_is_retried_not_surfaced() {
        crate::sys::install_interrupt_handler();
        let mut poller = Poller::new().expect("poller");
        let target = crate::sys::current_thread();
        let interrupter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            crate::sys::interrupt_thread(target);
        });
        let mut events = Vec::new();
        let started = Instant::now();
        // The signal lands ~40ms in; the wait must absorb it and run
        // to its 250ms timeout.
        let n = poller.wait(&mut events, Some(Duration::from_millis(250))).expect("wait");
        assert_eq!(n, 0, "no readiness, signal absorbed");
        assert!(
            started.elapsed() >= Duration::from_millis(200),
            "EINTR retried with the timeout recomputed, not returned early: {:?}",
            started.elapsed()
        );
        interrupter.join().expect("interrupter thread");
    }

    /// Same EINTR discipline on the portable fallback backend.
    #[cfg(target_os = "linux")]
    #[test]
    fn fallback_backend_retries_eintr_too() {
        crate::sys::install_interrupt_handler();
        let mut poller = Poller::with_poll_fallback().expect("poller");
        let target = crate::sys::current_thread();
        let interrupter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            crate::sys::interrupt_thread(target);
        });
        let mut events = Vec::new();
        let started = Instant::now();
        let n = poller.wait(&mut events, Some(Duration::from_millis(250))).expect("wait");
        assert_eq!(n, 0);
        assert!(started.elapsed() >= Duration::from_millis(200));
        interrupter.join().expect("interrupter thread");
    }
}
