//! Raw readiness syscalls — the only unsafe file in the crate (and,
//! with `rcm-core/src/inline.rs`, one of two in the workspace; both
//! are pinned by the `cargo xtask lint` unsafe allowlist).
//!
//! Everything here is a thin, totally-safe-to-call wrapper over a
//! libc-less `extern "C"` surface: epoll on Linux, kqueue on macOS, a
//! portable `poll(2)` fallback, non-blocking `connect(2)` (std offers
//! no way to start a TCP connect without blocking), and the self-pipe
//! the event loop uses as its waker. No function in this file blocks
//! except [`poll_entries`]/backend waits, which take an explicit
//! timeout. Callers never see a raw pointer: inputs and outputs are
//! plain values, slices and `Vec`s.
//!
//! The deliberate constraint is *dependency-free*: no `libc` crate, so
//! the numeric constants and struct layouts below are transcribed from
//! the kernel/libc ABI per target. Each is annotated with its source
//! value; the unit tests at the bottom exercise every wrapper on a
//! real kernel.

// LOCK ORDER: no locks — stateless syscall wrappers.

use std::io;
use std::mem;
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::os::fd::{FromRawFd, RawFd};
use std::time::Duration;

use core::ffi::{c_int, c_uint, c_void};

// ---------------------------------------------------------------------------
// extern "C" surface
// ---------------------------------------------------------------------------

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
    fn getsockopt(fd: c_int, level: c_int, name: c_int, value: *mut c_void, len: *mut u32)
        -> c_int;
    fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    fn pthread_self() -> usize;
    fn pthread_kill(thread: usize, sig: c_int) -> c_int;
}

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
}

#[cfg(target_os = "macos")]
extern "C" {
    fn kqueue() -> c_int;
    fn kevent(
        kq: c_int,
        changelist: *const KEvent,
        nchanges: c_int,
        eventlist: *mut KEvent,
        nevents: c_int,
        timeout: *const Timespec,
    ) -> c_int;
}

// ---------------------------------------------------------------------------
// ABI constants (transcribed; see module docs)
// ---------------------------------------------------------------------------

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const SOCK_STREAM: c_int = 1;
const AF_INET: c_int = 2;

#[cfg(target_os = "linux")]
mod abi {
    use core::ffi::c_int;
    pub const O_NONBLOCK: c_int = 0o4000;
    pub const O_CLOEXEC: c_int = 0o2000000;
    pub const EINTR: i32 = 4;
    pub const EAGAIN: i32 = 11;
    pub const EINPROGRESS: i32 = 115;
    pub const SOL_SOCKET: c_int = 1;
    pub const SO_ERROR: c_int = 4;
    pub const AF_INET6: c_int = 10;
    pub const SIGUSR1: c_int = 10;
}

#[cfg(target_os = "macos")]
mod abi {
    use core::ffi::c_int;
    pub const O_NONBLOCK: c_int = 0x0004;
    pub const O_CLOEXEC: c_int = 0x0100_0000;
    pub const EINTR: i32 = 4;
    pub const EAGAIN: i32 = 35;
    pub const EINPROGRESS: i32 = 36;
    pub const SOL_SOCKET: c_int = 0xffff;
    pub const SO_ERROR: c_int = 0x1007;
    pub const AF_INET6: c_int = 30;
    pub const SIGUSR1: c_int = 30;
}

#[cfg(all(unix, not(any(target_os = "linux", target_os = "macos"))))]
mod abi {
    // Conservative defaults shared by the BSDs; the poll(2) fallback
    // backend is the only one compiled on these targets.
    use core::ffi::c_int;
    pub const O_NONBLOCK: c_int = 0x0004;
    pub const O_CLOEXEC: c_int = 0x0010_0000;
    pub const EINTR: i32 = 4;
    pub const EAGAIN: i32 = 35;
    pub const EINPROGRESS: i32 = 36;
    pub const SOL_SOCKET: c_int = 0xffff;
    pub const SO_ERROR: c_int = 0x1007;
    pub const AF_INET6: c_int = 28;
    pub const SIGUSR1: c_int = 30;
}

const POLLIN: i16 = 0x1;
const POLLOUT: i16 = 0x4;
const POLLERR: i16 = 0x8;
const POLLHUP: i16 = 0x10;

#[repr(C)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

#[cfg(target_os = "linux")]
mod epoll_abi {
    use core::ffi::c_int;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
}

/// `struct epoll_event`: packed on x86_64 only, matching the kernel
/// UAPI's `EPOLL_PACKED` attribute.
#[cfg(target_os = "linux")]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(target_os = "macos")]
#[repr(C)]
#[derive(Clone, Copy)]
struct KEvent {
    ident: usize,
    filter: i16,
    flags: u16,
    fflags: u32,
    data: isize,
    udata: *mut c_void,
}

#[cfg(target_os = "macos")]
#[repr(C)]
struct Timespec {
    tv_sec: isize,
    tv_nsec: isize,
}

#[cfg(target_os = "macos")]
mod kqueue_abi {
    pub const EVFILT_READ: i16 = -1;
    pub const EVFILT_WRITE: i16 = -2;
    pub const EV_ADD: u16 = 0x0001;
    pub const EV_DELETE: u16 = 0x0002;
    pub const EV_EOF: u16 = 0x8000;
    pub const EV_ERROR: u16 = 0x4000;
}

// ---------------------------------------------------------------------------
// errno plumbing
// ---------------------------------------------------------------------------

fn last_error() -> io::Error {
    io::Error::last_os_error()
}

/// Whether `err` is the transient "interrupted by a signal" failure
/// that readiness waits must retry.
pub fn is_interrupted(err: &io::Error) -> bool {
    err.raw_os_error() == Some(abi::EINTR)
}

/// Whether `err` is the non-blocking "try again later" result.
pub fn is_would_block(err: &io::Error) -> bool {
    err.raw_os_error() == Some(abi::EAGAIN) || err.kind() == io::ErrorKind::WouldBlock
}

// ---------------------------------------------------------------------------
// fd plumbing: non-blocking flags, close, pipes
// ---------------------------------------------------------------------------

/// Sets `O_NONBLOCK` on an arbitrary fd.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl on a caller-supplied fd reads/writes no memory;
    // an invalid fd yields EBADF, reported as an error.
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(last_error());
    }
    let rc = unsafe { fcntl(fd, F_SETFL, flags | abi::O_NONBLOCK) };
    if rc < 0 {
        return Err(last_error());
    }
    Ok(())
}

/// Closes an fd, ignoring errors (close-on-teardown best effort).
pub fn close_fd(fd: RawFd) {
    // SAFETY: close reads no memory; double-close is prevented by the
    // single-owner discipline in Poller/Waker (each fd has exactly one
    // closing owner).
    unsafe {
        let _ = close(fd);
    }
}

/// Creates the waker self-pipe: `(read_end, write_end)`, both
/// non-blocking and close-on-exec.
pub fn wake_pipe() -> io::Result<(RawFd, RawFd)> {
    let mut fds = [0 as c_int; 2];
    #[cfg(target_os = "linux")]
    {
        // SAFETY: pipe2 writes exactly two c_ints into the array we
        // hand it.
        let rc = unsafe { pipe2(fds.as_mut_ptr(), abi::O_NONBLOCK | abi::O_CLOEXEC) };
        if rc < 0 {
            return Err(last_error());
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        // SAFETY: pipe writes exactly two c_ints into the array.
        let rc = unsafe { pipe(fds.as_mut_ptr()) };
        if rc < 0 {
            return Err(last_error());
        }
        for fd in fds {
            if let Err(e) = set_nonblocking(fd) {
                close_fd(fds[0]);
                close_fd(fds[1]);
                return Err(e);
            }
        }
    }
    Ok((fds[0], fds[1]))
}

/// Writes one byte to the wake pipe. A full pipe means a wake is
/// already pending, which is exactly as good — EAGAIN is success.
pub fn write_wake_byte(fd: RawFd) {
    let byte = [1u8];
    // SAFETY: write reads 1 byte from our stack buffer.
    unsafe {
        let _ = write(fd, byte.as_ptr().cast(), 1);
    }
}

/// Drains every pending byte from the wake pipe's read end; returns
/// how many were pending.
pub fn drain_fd(fd: RawFd) -> usize {
    let mut total = 0usize;
    let mut buf = [0u8; 64];
    loop {
        // SAFETY: read writes at most buf.len() bytes into our stack
        // buffer.
        let n = unsafe { read(fd, buf.as_mut_ptr().cast(), buf.len()) };
        if n <= 0 {
            return total;
        }
        total += n as usize;
    }
}

// ---------------------------------------------------------------------------
// non-blocking TCP connect
// ---------------------------------------------------------------------------

/// `struct sockaddr_in` / `sockaddr_in6`, built by value so `connect`
/// never sees a pointer into anything but our stack.
#[repr(C)]
struct SockAddrV4Raw {
    #[cfg(any(target_os = "linux", target_os = "android"))]
    family: u16,
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    len: u8,
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    family: u8,
    port_be: u16,
    addr_be: u32,
    zero: [u8; 8],
}

#[repr(C)]
struct SockAddrV6Raw {
    #[cfg(any(target_os = "linux", target_os = "android"))]
    family: u16,
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    len: u8,
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    family: u8,
    port_be: u16,
    flowinfo: u32,
    addr: [u8; 16],
    scope_id: u32,
}

/// Starts a TCP connect without blocking: the socket is created
/// non-blocking, `connect(2)` returns immediately (`EINPROGRESS` is
/// the expected success), and the caller learns the outcome from a
/// writability event plus [`take_socket_error`].
///
/// # Errors
///
/// Propagates socket-creation failures and synchronous connect
/// refusals (anything but `EINPROGRESS`).
pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<TcpStream> {
    let family = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => abi::AF_INET6,
    };
    // SAFETY: socket reads no memory.
    let fd = unsafe { socket(family, SOCK_STREAM, 0) };
    if fd < 0 {
        return Err(last_error());
    }
    if let Err(e) = set_nonblocking(fd) {
        close_fd(fd);
        return Err(e);
    }
    let rc = match addr {
        SocketAddr::V4(v4) => {
            let raw = SockAddrV4Raw {
                #[cfg(not(any(target_os = "linux", target_os = "android")))]
                len: mem::size_of::<SockAddrV4Raw>() as u8,
                family: AF_INET as _,
                port_be: v4.port().to_be(),
                addr_be: u32::from_ne_bytes(v4.ip().octets()),
                zero: [0; 8],
            };
            // SAFETY: connect reads size_of::<SockAddrV4Raw>() bytes
            // from the struct we pass, which lives until the call
            // returns.
            unsafe {
                connect(fd, (&raw as *const SockAddrV4Raw).cast(), mem::size_of_val(&raw) as u32)
            }
        }
        SocketAddr::V6(v6) => {
            let raw = SockAddrV6Raw {
                #[cfg(not(any(target_os = "linux", target_os = "android")))]
                len: mem::size_of::<SockAddrV6Raw>() as u8,
                family: abi::AF_INET6 as _,
                port_be: v6.port().to_be(),
                flowinfo: v6.flowinfo(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            // SAFETY: as above, for the v6 layout.
            unsafe {
                connect(fd, (&raw as *const SockAddrV6Raw).cast(), mem::size_of_val(&raw) as u32)
            }
        }
    };
    if rc < 0 {
        let err = last_error();
        if err.raw_os_error() != Some(abi::EINPROGRESS) {
            close_fd(fd);
            return Err(err);
        }
    }
    // SAFETY: fd is a freshly created, connected-or-connecting socket
    // we exclusively own; from_raw_fd transfers that ownership to the
    // TcpStream, which becomes its single closer.
    Ok(unsafe { TcpStream::from_raw_fd(fd) })
}

/// Reads and clears `SO_ERROR` — the deferred outcome of a
/// non-blocking connect, checked once the socket reports writable.
///
/// # Errors
///
/// Returns the stored socket error, or the `getsockopt` failure.
pub fn take_socket_error(fd: RawFd) -> io::Result<()> {
    let mut err: c_int = 0;
    let mut len: u32 = mem::size_of::<c_int>() as u32;
    // SAFETY: getsockopt writes at most `len` bytes into `err`, which
    // is sized exactly for it.
    let rc = unsafe {
        getsockopt(fd, abi::SOL_SOCKET, abi::SO_ERROR, (&mut err as *mut c_int).cast(), &mut len)
    };
    if rc < 0 {
        return Err(last_error());
    }
    if err != 0 {
        return Err(io::Error::from_raw_os_error(err));
    }
    Ok(())
}

/// Waits up to `timeout` for `fd` to become writable (one-fd
/// `poll(2)`, EINTR retried). Used for the bounded *setup-time*
/// connect — the event loop itself never calls this.
///
/// # Errors
///
/// Propagates poll failures other than EINTR.
pub fn await_writable(fd: RawFd, timeout: Duration) -> io::Result<bool> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        let ms = remaining.as_millis().min(c_int::MAX as u128) as c_int;
        let mut pfd = PollFd { fd, events: POLLOUT, revents: 0 };
        // SAFETY: poll reads/writes exactly one PollFd from our stack.
        let rc = unsafe { poll(&mut pfd, 1, ms) };
        if rc < 0 {
            let err = last_error();
            if is_interrupted(&err) && std::time::Instant::now() < deadline {
                continue;
            }
            return Err(err);
        }
        return Ok(rc > 0 && pfd.revents & (POLLOUT | POLLERR | POLLHUP) != 0);
    }
}

// ---------------------------------------------------------------------------
// portable poll(2) backend
// ---------------------------------------------------------------------------

/// One fd's interest and outcome in a [`poll_entries`] call.
#[derive(Debug, Clone, Copy)]
pub struct PollEntry {
    /// The fd to watch.
    pub fd: RawFd,
    /// Watch for readability.
    pub want_read: bool,
    /// Watch for writability.
    pub want_write: bool,
    /// Out: readable (or hung up — a read will not block).
    pub readable: bool,
    /// Out: writable.
    pub writable: bool,
    /// Out: error/hangup condition.
    pub error: bool,
}

impl PollEntry {
    /// A fresh entry with no outcome bits set.
    pub fn new(fd: RawFd, want_read: bool, want_write: bool) -> Self {
        PollEntry { fd, want_read, want_write, readable: false, writable: false, error: false }
    }
}

/// `poll(2)` over `entries`; fills each entry's outcome bits and
/// returns how many fds are ready. `timeout_ms < 0` waits forever.
/// EINTR is *not* retried here — the caller (the Poller, which owns
/// the retry-with-recomputed-timeout policy) sees
/// `io::ErrorKind::Interrupted`.
///
/// # Errors
///
/// Propagates the raw poll failure, including EINTR.
pub fn poll_entries(entries: &mut [PollEntry], timeout_ms: c_int) -> io::Result<usize> {
    let mut fds: Vec<PollFd> = entries
        .iter()
        .map(|e| PollFd {
            fd: e.fd,
            events: if e.want_read { POLLIN } else { 0 } | if e.want_write { POLLOUT } else { 0 },
            revents: 0,
        })
        .collect();
    // SAFETY: poll reads/writes exactly fds.len() PollFd records in
    // the Vec's buffer, which outlives the call.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_uint, timeout_ms) };
    if rc < 0 {
        return Err(last_error());
    }
    for (entry, pfd) in entries.iter_mut().zip(&fds) {
        entry.readable = pfd.revents & (POLLIN | POLLHUP) != 0;
        entry.writable = pfd.revents & POLLOUT != 0;
        entry.error = pfd.revents & (POLLERR | POLLHUP) != 0;
    }
    Ok(rc as usize)
}

// ---------------------------------------------------------------------------
// epoll backend (Linux)
// ---------------------------------------------------------------------------

/// One readiness event out of a backend wait.
#[derive(Debug, Clone, Copy)]
pub struct RawEvent {
    /// The registration's token.
    pub token: u64,
    /// A read will not block.
    pub readable: bool,
    /// A write will not block.
    pub writable: bool,
    /// Error or hangup (delivered regardless of interest).
    pub error: bool,
}

#[cfg(target_os = "linux")]
fn epoll_interest(read: bool, write: bool) -> u32 {
    let mut events = 0u32;
    if read {
        events |= epoll_abi::EPOLLIN;
    }
    if write {
        events |= epoll_abi::EPOLLOUT;
    }
    events
}

/// Creates an epoll instance (close-on-exec).
///
/// # Errors
///
/// Propagates the creation failure.
#[cfg(target_os = "linux")]
pub fn epoll_create() -> io::Result<RawFd> {
    // SAFETY: epoll_create1 reads no memory.
    let fd = unsafe { epoll_create1(epoll_abi::EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(last_error());
    }
    Ok(fd)
}

#[cfg(target_os = "linux")]
fn epoll_ctl_op(epfd: RawFd, op: c_int, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
    let mut ev = EpollEvent { events, data: token };
    // SAFETY: epoll_ctl reads one EpollEvent from our stack (ignored
    // for DEL); invalid fds yield EBADF/ENOENT, reported as errors.
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        return Err(last_error());
    }
    Ok(())
}

/// Registers `fd` with the epoll set.
///
/// # Errors
///
/// Propagates the registration failure (e.g. a closed fd).
#[cfg(target_os = "linux")]
pub fn epoll_add(epfd: RawFd, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
    epoll_ctl_op(epfd, epoll_abi::EPOLL_CTL_ADD, fd, token, epoll_interest(read, write))
}

/// Changes an existing registration's interest set.
///
/// # Errors
///
/// Propagates the modification failure (e.g. a closed fd).
#[cfg(target_os = "linux")]
pub fn epoll_modify(epfd: RawFd, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
    epoll_ctl_op(epfd, epoll_abi::EPOLL_CTL_MOD, fd, token, epoll_interest(read, write))
}

/// Removes `fd` from the epoll set.
///
/// # Errors
///
/// Propagates the removal failure (already-closed fds are fine to
/// ignore at the call site).
#[cfg(target_os = "linux")]
pub fn epoll_remove(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    epoll_ctl_op(epfd, epoll_abi::EPOLL_CTL_DEL, fd, 0, 0)
}

/// Waits for events on the epoll set; appends to `out` and returns
/// the count. `timeout_ms < 0` waits forever. EINTR is surfaced as
/// `io::ErrorKind::Interrupted` for the caller's retry policy.
///
/// # Errors
///
/// Propagates the raw wait failure, including EINTR.
#[cfg(target_os = "linux")]
pub fn epoll_wait_events(
    epfd: RawFd,
    out: &mut Vec<RawEvent>,
    capacity: usize,
    timeout_ms: c_int,
) -> io::Result<usize> {
    let capacity = capacity.max(1);
    let mut raw: Vec<EpollEvent> = vec![EpollEvent { events: 0, data: 0 }; capacity];
    // SAFETY: epoll_wait writes at most `capacity` EpollEvent records
    // into the Vec's buffer, which outlives the call; the return value
    // bounds how many we read back.
    let rc = unsafe { epoll_wait(epfd, raw.as_mut_ptr(), capacity as c_int, timeout_ms) };
    if rc < 0 {
        return Err(last_error());
    }
    for ev in raw.iter().take(rc as usize) {
        let events = ev.events;
        let data = ev.data;
        out.push(RawEvent {
            token: data,
            readable: events & (epoll_abi::EPOLLIN | epoll_abi::EPOLLHUP) != 0,
            writable: events & epoll_abi::EPOLLOUT != 0,
            error: events & (epoll_abi::EPOLLERR | epoll_abi::EPOLLHUP) != 0,
        });
    }
    Ok(rc as usize)
}

// ---------------------------------------------------------------------------
// kqueue backend (macOS)
// ---------------------------------------------------------------------------

/// Creates a kqueue instance.
///
/// # Errors
///
/// Propagates the creation failure.
#[cfg(target_os = "macos")]
pub fn kqueue_create() -> io::Result<RawFd> {
    // SAFETY: kqueue reads no memory.
    let fd = unsafe { kqueue() };
    if fd < 0 {
        return Err(last_error());
    }
    Ok(fd)
}

#[cfg(target_os = "macos")]
fn kevent_change(kq: RawFd, fd: RawFd, filter: i16, flags: u16, token: u64) -> io::Result<()> {
    let change = KEvent {
        ident: fd as usize,
        filter,
        flags,
        fflags: 0,
        data: 0,
        udata: token as *mut c_void,
    };
    // SAFETY: kevent reads one KEvent from our stack; no eventlist.
    let rc = unsafe { kevent(kq, &change, 1, std::ptr::null_mut(), 0, std::ptr::null()) };
    if rc < 0 {
        return Err(last_error());
    }
    Ok(())
}

/// (Re)registers `fd`'s read/write filters; kqueue treats ADD of an
/// existing filter as modify, so add and modify share this call.
///
/// # Errors
///
/// Propagates the registration failure (e.g. a closed fd).
#[cfg(target_os = "macos")]
pub fn kqueue_register(
    kq: RawFd,
    fd: RawFd,
    token: u64,
    read: bool,
    write: bool,
) -> io::Result<()> {
    use kqueue_abi::*;
    if read {
        kevent_change(kq, fd, EVFILT_READ, EV_ADD, token)?;
    } else {
        let _ = kevent_change(kq, fd, EVFILT_READ, EV_DELETE, token);
    }
    if write {
        kevent_change(kq, fd, EVFILT_WRITE, EV_ADD, token)?;
    } else {
        let _ = kevent_change(kq, fd, EVFILT_WRITE, EV_DELETE, token);
    }
    Ok(())
}

/// Removes both filters for `fd` (best effort — closing an fd already
/// removed its filters).
#[cfg(target_os = "macos")]
pub fn kqueue_remove(kq: RawFd, fd: RawFd) {
    use kqueue_abi::*;
    let _ = kevent_change(kq, fd, EVFILT_READ, EV_DELETE, 0);
    let _ = kevent_change(kq, fd, EVFILT_WRITE, EV_DELETE, 0);
}

/// Waits for events on the kqueue; appends to `out` and returns the
/// count. `timeout_ms < 0` waits forever. EINTR surfaces as
/// `io::ErrorKind::Interrupted`.
///
/// # Errors
///
/// Propagates the raw wait failure, including EINTR.
#[cfg(target_os = "macos")]
pub fn kqueue_wait_events(
    kq: RawFd,
    out: &mut Vec<RawEvent>,
    capacity: usize,
    timeout_ms: c_int,
) -> io::Result<usize> {
    use kqueue_abi::*;
    let capacity = capacity.max(1);
    let mut raw: Vec<KEvent> = vec![
        KEvent {
            ident: 0,
            filter: 0,
            flags: 0,
            fflags: 0,
            data: 0,
            udata: std::ptr::null_mut()
        };
        capacity
    ];
    let ts;
    let ts_ptr = if timeout_ms < 0 {
        std::ptr::null()
    } else {
        ts = Timespec {
            tv_sec: (timeout_ms / 1000) as isize,
            tv_nsec: (timeout_ms % 1000) as isize * 1_000_000,
        };
        &ts as *const Timespec
    };
    // SAFETY: kevent writes at most `capacity` KEvent records into the
    // Vec's buffer; the return value bounds how many we read back.
    let rc =
        unsafe { kevent(kq, std::ptr::null(), 0, raw.as_mut_ptr(), capacity as c_int, ts_ptr) };
    if rc < 0 {
        return Err(last_error());
    }
    for ev in raw.iter().take(rc as usize) {
        out.push(RawEvent {
            token: ev.udata as u64,
            readable: ev.filter == EVFILT_READ,
            writable: ev.filter == EVFILT_WRITE,
            error: ev.flags & (EV_EOF | EV_ERROR) != 0,
        });
    }
    Ok(rc as usize)
}

// ---------------------------------------------------------------------------
// EINTR test support
// ---------------------------------------------------------------------------

extern "C" fn noop_signal_handler(_sig: c_int) {}

/// An opaque handle to the calling thread, targetable by
/// [`interrupt_thread`].
#[derive(Debug, Clone, Copy)]
pub struct ThreadHandle(usize);

/// Installs a no-op handler for SIGUSR1 so a directed signal
/// interrupts a blocking wait with EINTR instead of killing the
/// process. (epoll_wait/poll are never auto-restarted after a signal
/// handler runs, per signal(7) — which is exactly what the EINTR
/// negative test needs.)
pub fn install_interrupt_handler() {
    // SAFETY: signal installs a pointer to our no-op extern "C"
    // handler; the handler itself touches no state.
    unsafe {
        let _ = signal(abi::SIGUSR1, noop_signal_handler);
    }
}

/// The calling thread's handle.
pub fn current_thread() -> ThreadHandle {
    // SAFETY: pthread_self reads no memory.
    ThreadHandle(unsafe { pthread_self() })
}

/// Sends SIGUSR1 to exactly `thread` (EINTR lands on the waiter, not
/// on whichever thread the kernel fancies).
pub fn interrupt_thread(thread: ThreadHandle) {
    // SAFETY: pthread_kill reads no memory; an already-exited thread
    // yields ESRCH, ignored.
    unsafe {
        let _ = pthread_kill(thread.0, abi::SIGUSR1);
    }
}

// ---------------------------------------------------------------------------
// misc helpers used by the engine
// ---------------------------------------------------------------------------

/// Sets a UDP socket non-blocking (convenience over the raw fd call,
/// so engine code never needs `AsRawFd` gymnastics for setup).
///
/// # Errors
///
/// Propagates the fcntl failure.
pub fn udp_set_nonblocking(sock: &UdpSocket) -> io::Result<()> {
    sock.set_nonblocking(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, UdpSocket};

    #[test]
    fn wake_pipe_round_trips_and_drains() {
        let (r, w) = wake_pipe().expect("pipe");
        assert_eq!(drain_fd(r), 0, "fresh pipe is empty");
        write_wake_byte(w);
        write_wake_byte(w);
        assert_eq!(drain_fd(r), 2);
        assert_eq!(drain_fd(r), 0, "drained pipe is empty again");
        close_fd(r);
        close_fd(w);
    }

    #[test]
    fn nonblocking_connect_completes_against_a_live_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let stream = connect_nonblocking(addr).expect("starts connecting");
        use std::os::fd::AsRawFd;
        assert!(await_writable(stream.as_raw_fd(), Duration::from_secs(2)).expect("poll"));
        take_socket_error(stream.as_raw_fd()).expect("connect succeeded");
        let (mut accepted, _) = listener.accept().expect("accept");
        let mut s = stream;
        s.write_all(b"hi").expect("write");
        let mut buf = [0u8; 2];
        accepted.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"hi");
    }

    #[test]
    fn nonblocking_connect_to_a_dead_port_reports_the_error() {
        // Bind-then-drop reserves a port that refuses connections.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        match connect_nonblocking(dead) {
            // Synchronous refusal (loopback fast path) is fine.
            Err(_) => {}
            Ok(stream) => {
                use std::os::fd::AsRawFd;
                let fd = stream.as_raw_fd();
                assert!(await_writable(fd, Duration::from_secs(2)).expect("poll"));
                assert!(take_socket_error(fd).is_err(), "SO_ERROR holds the refusal");
            }
        }
    }

    #[test]
    fn poll_entries_sees_udp_readability() {
        use std::os::fd::AsRawFd;
        let rx = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
        let tx = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
        let mut entries = [PollEntry::new(rx.as_raw_fd(), true, false)];
        let ready = poll_entries(&mut entries, 0).expect("poll");
        assert_eq!(ready, 0, "nothing sent yet");
        assert!(!entries[0].readable);
        tx.send_to(b"x", rx.local_addr().expect("addr")).expect("send");
        let ready = poll_entries(&mut entries, 2_000).expect("poll");
        assert_eq!(ready, 1);
        assert!(entries[0].readable);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_lifecycle_add_modify_wait_remove() {
        use std::os::fd::AsRawFd;
        let ep = epoll_create().expect("epoll_create");
        let rx = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
        let tx = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
        epoll_add(ep, rx.as_raw_fd(), 7, true, false).expect("add");
        let mut out = Vec::new();
        assert_eq!(epoll_wait_events(ep, &mut out, 8, 0).expect("wait"), 0);
        tx.send_to(b"x", rx.local_addr().expect("addr")).expect("send");
        out.clear();
        assert_eq!(epoll_wait_events(ep, &mut out, 8, 2_000).expect("wait"), 1);
        assert_eq!(out[0].token, 7);
        assert!(out[0].readable);
        epoll_modify(ep, rx.as_raw_fd(), 9, true, true).expect("modify");
        out.clear();
        assert_eq!(epoll_wait_events(ep, &mut out, 8, 0).expect("wait"), 1);
        assert_eq!(out[0].token, 9, "modify rebinds the token");
        epoll_remove(ep, rx.as_raw_fd()).expect("remove");
        close_fd(ep);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_registration_of_a_closed_fd_is_an_error_not_a_crash() {
        let ep = epoll_create().expect("epoll_create");
        let dead_fd = {
            let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
            use std::os::fd::AsRawFd;
            sock.as_raw_fd()
            // socket drops here, closing the fd
        };
        assert!(epoll_add(ep, dead_fd, 1, true, false).is_err());
        close_fd(ep);
    }
}
