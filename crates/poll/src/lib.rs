//! # rcm-poll — dependency-free readiness for the evented transport
//!
//! The evented socket engine in `rcm-transport` needs three things the
//! standard library does not provide: a readiness multiplexer, a timer
//! wheel, and a wake/submit handoff that a model checker can exhaust.
//! This crate is all three, with zero external dependencies — the same
//! discipline as `rcm-sync`, and for the same reason: every line the
//! engine's correctness depends on is either model-checked or a thin
//! audited syscall wrapper.
//!
//! * [`Poller`] / [`Waker`] — epoll on Linux, kqueue on macOS, a
//!   portable `poll(2)` fallback selectable everywhere
//!   ([`Poller::with_poll_fallback`]) so the backend-independent
//!   plumbing is testable on any host. EINTR is retried internally
//!   with the timeout recomputed; a [`Waker`] firing surfaces as one
//!   [`WAKE_TOKEN`] event.
//! * [`TimerWheel`] — a hashed wheel fed explicit `now` instants
//!   (through the `rcm-sync` clock shim), driving Backoff reconnects,
//!   batch `max_delay` flushes and finish deadlines without a thread
//!   per timer.
//! * [`SubmitQueue`] / [`Wake`] — the Dekker-style sleep/submit
//!   protocol between caller threads and the event loop, written
//!   against the `rcm-sync` shim so `crates/runtime/tests/loom.rs`
//!   can run the handoff under every interleaving.
//!
//! All unsafe code lives in [`sys`], pinned by the workspace unsafe
//! allowlist; the rest of the crate (and everything built on it)
//! stays `deny(unsafe_code)`.

// LOCK ORDER: no locks — the crate's only mutex lives in submit.rs (leaf).

#![cfg(unix)]
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod poller;
mod submit;
mod timer;

#[allow(unsafe_code)]
pub mod sys;

pub use poller::{Event, Interest, Poller, Token, Waker, WAKE_TOKEN};
pub use submit::{SubmitQueue, Wake};
pub use timer::{TimerKey, TimerWheel};
