//! The submit/wake handoff: how caller threads (CE bodies, node
//! mains) hand work to the event loop without ever blocking, and how
//! the loop sleeps without ever losing a wakeup.
//!
//! The protocol is the classic Dekker-style flag dance:
//!
//! * **producer**: push the item under the queue mutex, *then* read
//!   the consumer's `sleeping` flag; if set, fire the waker.
//! * **consumer**: set `sleeping`, *then* re-check the queue; if
//!   non-empty, clear the flag and skip the sleep entirely.
//!
//! Both sides use `SeqCst`, so at least one of them observes the
//! other: either the producer sees `sleeping` and wakes, or the
//! consumer's re-check sees the item and never sleeps. The
//! `crates/runtime/tests/loom.rs` suite runs this exact handoff
//! through every interleaving the bundled model checker can produce —
//! which is why everything here goes through the `rcm-sync` shim and
//! the [`Wake`] trait instead of a concrete fd waker.
//!
//! LOCK ORDER: the queue mutex is a leaf — never held across a wake,
//! a poll, or any other lock.

use std::collections::VecDeque;

use rcm_sync::atomic::{AtomicBool, Ordering};
use rcm_sync::{Arc, Mutex};

/// Something that can interrupt the consumer's readiness wait. The
/// event loop passes its self-pipe waker; the loom suite passes a
/// channel.
pub trait Wake {
    /// Interrupts the consumer's current (or next) wait. Must be
    /// non-blocking and idempotent.
    fn wake(&self);
}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    sleeping: AtomicBool,
}

/// The multi-producer, single-consumer command queue between caller
/// threads and the event loop. Cloning shares the queue.
pub struct SubmitQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for SubmitQueue<T> {
    fn clone(&self) -> Self {
        SubmitQueue { inner: Arc::clone(&self.inner) }
    }
}

impl<T> std::fmt::Debug for SubmitQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitQueue")
            .field("len", &self.inner.queue.lock().len())
            .field("sleeping", &self.inner.sleeping.load(Ordering::SeqCst))
            .finish()
    }
}

impl<T> Default for SubmitQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SubmitQueue<T> {
    /// An empty queue with the consumer presumed awake.
    pub fn new() -> Self {
        SubmitQueue {
            inner: Arc::new(Inner {
                queue: Mutex::new(VecDeque::new()),
                sleeping: AtomicBool::new(false),
            }),
        }
    }

    /// Producer side: enqueues `item` and wakes the consumer if it is
    /// (or is about to go) sleeping. Never blocks beyond the queue
    /// mutex, which is only ever held for a push or a drain.
    pub fn submit(&self, item: T, waker: &impl Wake) {
        self.inner.queue.lock().push_back(item);
        // Read *after* the push: pairs with prepare_sleep's
        // store-then-recheck so one side always sees the other.
        if self.inner.sleeping.load(Ordering::SeqCst) {
            waker.wake();
        }
    }

    /// Consumer side: moves everything queued into `out`; returns how
    /// many items were taken.
    pub fn drain(&self, out: &mut Vec<T>) -> usize {
        let mut queue = self.inner.queue.lock();
        let taken = queue.len();
        out.extend(queue.drain(..));
        taken
    }

    /// Consumer side: announces the intent to sleep, then re-checks
    /// the queue. Returns `true` when it is safe to block in the
    /// readiness wait; `false` means an item raced in and the caller
    /// must drain instead of sleeping (the flag is already cleared).
    pub fn prepare_sleep(&self) -> bool {
        self.inner.sleeping.store(true, Ordering::SeqCst);
        let empty = self.inner.queue.lock().is_empty();
        if !empty {
            self.inner.sleeping.store(false, Ordering::SeqCst);
        }
        empty
    }

    /// Consumer side: clears the sleeping flag after the wait returns
    /// (for any reason — wake, readiness, or timeout).
    pub fn wake_done(&self) {
        self.inner.sleeping.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingWaker(rcm_sync::atomic::AtomicU64);

    impl Wake for CountingWaker {
        fn wake(&self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn submit_to_an_awake_consumer_skips_the_waker() {
        let q: SubmitQueue<u32> = SubmitQueue::new();
        let waker = CountingWaker(rcm_sync::atomic::AtomicU64::new(0));
        q.submit(1, &waker);
        assert_eq!(waker.0.load(Ordering::SeqCst), 0, "consumer never announced a sleep");
        let mut out = Vec::new();
        assert_eq!(q.drain(&mut out), 1);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn submit_to_a_sleeping_consumer_fires_the_waker() {
        let q: SubmitQueue<u32> = SubmitQueue::new();
        let waker = CountingWaker(rcm_sync::atomic::AtomicU64::new(0));
        assert!(q.prepare_sleep(), "empty queue: safe to sleep");
        q.submit(2, &waker);
        assert_eq!(waker.0.load(Ordering::SeqCst), 1);
        q.wake_done();
        let mut out = Vec::new();
        assert_eq!(q.drain(&mut out), 1);
    }

    #[test]
    fn prepare_sleep_refuses_when_an_item_already_raced_in() {
        let q: SubmitQueue<u32> = SubmitQueue::new();
        let waker = CountingWaker(rcm_sync::atomic::AtomicU64::new(0));
        q.submit(3, &waker);
        assert!(!q.prepare_sleep(), "an item is queued: do not sleep");
        // The refusal already cleared the flag: a subsequent submit
        // does not fire the waker again.
        q.submit(4, &waker);
        assert_eq!(waker.0.load(Ordering::SeqCst), 0);
        let mut out = Vec::new();
        assert_eq!(q.drain(&mut out), 2);
        assert_eq!(out, vec![3, 4]);
    }

    #[test]
    fn cloned_handles_share_one_queue() {
        let q: SubmitQueue<u32> = SubmitQueue::new();
        let waker = CountingWaker(rcm_sync::atomic::AtomicU64::new(0));
        let producer = q.clone();
        producer.submit(7, &waker);
        let mut out = Vec::new();
        assert_eq!(q.drain(&mut out), 1);
        assert_eq!(out, vec![7]);
    }
}
