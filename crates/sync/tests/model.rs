//! Self-tests for the bundled model checker: exhaustiveness, race
//! detection, deadlock detection, channel semantics and virtual time.
//!
//! These run under the normal cfg (the `model` module is always
//! compiled); `--cfg loom` only changes which types the shim re-exports.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::sync::Mutex as StdMutex;
use std::time::Duration;

use rcm_sync::model::atomic::{AtomicU64, Ordering};
use rcm_sync::model::chan::{unbounded, TryRecvError};
use rcm_sync::model::sync::Mutex;
use rcm_sync::model::thread;
use rcm_sync::model::time::Instant;
use rcm_sync::model::{model, Model};

#[test]
fn locked_increments_always_sum() {
    let executions = model(|| {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || *m2.lock() += 1);
        *m.lock() += 1;
        t.join().expect("model joins never fail");
        assert_eq!(*m.lock(), 2);
    });
    assert!(executions > 1, "two contending threads must branch, got {executions}");
}

#[test]
fn explores_every_merge_order_of_two_writers() {
    // Two threads each push their tag twice under a lock. An exhaustive
    // explorer must observe all C(4,2) = 6 merge orders.
    let seen: Arc<StdMutex<HashSet<Vec<u8>>>> = Arc::new(StdMutex::new(HashSet::new()));
    let seen2 = Arc::clone(&seen);
    Model::new().preemption_bound(None).check(move || {
        let log = Arc::new(Mutex::new(Vec::<u8>::new()));
        let log2 = Arc::clone(&log);
        let t = thread::spawn(move || {
            for _ in 0..2 {
                log2.lock().push(b'B');
            }
        });
        for _ in 0..2 {
            log.lock().push(b'A');
        }
        t.join().expect("join");
        let order = log.lock().clone();
        seen2.lock().expect("collector lock").insert(order);
    });
    let orders = seen.lock().expect("collector lock").clone();
    let expected: HashSet<Vec<u8>> =
        [b"AABB", b"ABAB", b"ABBA", b"BAAB", b"BABA", b"BBAA"].iter().map(|s| s.to_vec()).collect();
    assert_eq!(orders, expected);
}

#[test]
fn preemption_bound_zero_runs_threads_to_completion() {
    let executions = Model::new().preemption_bound(Some(0)).check(|| {
        let log = Arc::new(Mutex::new(Vec::<u8>::new()));
        let log2 = Arc::clone(&log);
        let t = thread::spawn(move || log2.lock().push(b'B'));
        log.lock().push(b'A');
        t.join().expect("join");
        let order = log.lock().clone();
        assert_eq!(order, b"AB", "bound 0: the parent never gets preempted");
    });
    assert_eq!(executions, 1);
}

#[test]
fn finds_the_lost_update_race() {
    // Unsynchronized read-modify-write: some schedule must lose an
    // update, and the model must find it.
    let finals: Arc<StdMutex<HashSet<u64>>> = Arc::new(StdMutex::new(HashSet::new()));
    let finals2 = Arc::clone(&finals);
    model(move || {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join().expect("join");
        finals2.lock().expect("collector lock").insert(c.load(Ordering::SeqCst));
    });
    let finals = finals.lock().expect("collector lock").clone();
    assert!(finals.contains(&2), "the benign interleaving exists");
    assert!(finals.contains(&1), "the lost-update interleaving must be found");
}

#[test]
fn detects_lock_order_inversion_deadlock() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _gb = b2.lock();
                let _ga = a2.lock();
            });
            let _ga = a.lock();
            let _gb = b.lock();
            drop((_ga, _gb));
            t.join().expect("join");
        });
    }));
    let err = result.expect_err("opposite lock orders must deadlock under some schedule");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(msg.contains("deadlock"), "unexpected panic: {msg}");
}

#[test]
fn assertion_failures_surface_with_a_schedule() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            t.join().expect("join");
            assert_eq!(c.load(Ordering::SeqCst), 2, "racy count");
        });
    }));
    assert!(result.is_err(), "the racy schedule must fail the assertion");
}

#[test]
fn channel_delivers_in_order_and_disconnects() {
    model(|| {
        let (tx, rx) = unbounded::<u32>();
        let t = thread::spawn(move || {
            tx.send(1).expect("receiver alive");
            tx.send(2).expect("receiver alive");
            // tx drops here: end of stream
        });
        assert_eq!(rx.recv(), Ok(1), "FIFO");
        assert_eq!(rx.recv(), Ok(2), "FIFO");
        assert!(rx.recv().is_err(), "disconnect after the last sender drops");
        t.join().expect("join");
    });
}

#[test]
fn try_recv_reports_empty_vs_disconnected() {
    model(|| {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).expect("receiver alive");
        assert_eq!(rx.try_recv(), Ok(7));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    });
}

#[test]
fn send_to_dropped_receiver_errors() {
    model(|| {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    });
}

#[test]
fn blocking_iter_drains_across_threads() {
    model(|| {
        let (tx, rx) = unbounded::<u32>();
        let t = thread::spawn(move || {
            for i in 0..3 {
                tx.send(i).expect("receiver alive");
            }
        });
        let got: Vec<u32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2]);
        t.join().expect("join");
    });
}

#[test]
fn virtual_clock_advances_only_on_sleep() {
    model(|| {
        let start = Instant::now();
        assert_eq!(start.elapsed(), Duration::ZERO);
        thread::sleep(Duration::from_millis(5));
        assert_eq!(start.elapsed(), Duration::from_millis(5));
        let deadline = Instant::now() + Duration::from_millis(10);
        assert!(Instant::now() < deadline);
        thread::sleep(Duration::from_millis(10));
        assert!(Instant::now() >= deadline, "sleeping past a deadline expires it");
    });
}

#[test]
fn join_returns_the_thread_value() {
    model(|| {
        let t = thread::spawn(|| 41u64 + 1);
        assert_eq!(t.join().expect("join"), 42);
    });
}
