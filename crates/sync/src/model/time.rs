//! Virtual time for model executions.
//!
//! [`Instant::now`] reads a per-execution nanosecond counter that only
//! [`thread::sleep`](super::thread::sleep) advances, so timed logic
//! (backoff schedules, severance windows) is fully deterministic under
//! the model: a given schedule always observes the same clock.

use std::time::Duration;

use super::sched::current;

/// A point on the execution's virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant {
    nanos: u64,
}

impl Instant {
    /// The current virtual time. Must be called inside
    /// [`model`](crate::model::model).
    pub fn now() -> Instant {
        let (exec, _) = current();
        Instant { nanos: exec.now() }
    }

    /// Virtual time elapsed since `self`.
    pub fn elapsed(&self) -> Duration {
        Instant::now() - *self
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: Instant) -> Instant {
        if other.nanos > self.nanos {
            other
        } else {
            self
        }
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, d: Duration) -> Instant {
        Instant {
            nanos: self.nanos.saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
        }
    }
}

impl std::ops::Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, earlier: Instant) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }
}
