//! Model-checked `Mutex` (parking_lot-shaped: infallible `lock`).

use std::sync::Arc;

use super::sched::{current, BlockKind, Exec, Object};

/// A mutex whose lock/unlock operations are schedule points explored
/// by the model. The data itself lives in an uncontended
/// `std::sync::Mutex` (the scheduler serializes access), so no
/// `unsafe` is needed.
pub struct Mutex<T> {
    id: usize,
    exec: Arc<Exec>,
    data: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a model mutex. Must be called inside
    /// [`model`](crate::model::model).
    pub fn new(value: T) -> Self {
        let (exec, _) = current();
        let id = exec.register(Object::Mutex { locked: false });
        Mutex { id, exec, data: std::sync::Mutex::new(value) }
    }

    /// Acquires the lock, blocking (in model time) until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (exec, me) = current();
        exec.switch_point(me, None);
        loop {
            let acquired = exec.with_inner(|inner| match &mut inner.objects[self.id] {
                Object::Mutex { locked } => {
                    if *locked {
                        false
                    } else {
                        *locked = true;
                        true
                    }
                }
                Object::Channel { .. } => unreachable!("object id points at a channel"),
            });
            if acquired {
                let guard = self.data.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                return MutexGuard { mutex: self, guard: Some(guard) };
            }
            exec.switch_point(me, Some(BlockKind::Mutex(self.id)));
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("id", &self.id).finish_non_exhaustive()
    }
}

/// RAII guard; dropping releases the model lock and wakes waiters.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data lock before the model lock so the next
        // acquirer never contends on the std mutex.
        self.guard = None;
        let exec = &self.mutex.exec;
        let id = self.mutex.id;
        exec.with_inner(|inner| {
            match &mut inner.objects[id] {
                Object::Mutex { locked } => *locked = false,
                Object::Channel { .. } => unreachable!("object id points at a channel"),
            }
            Exec::wake(inner, BlockKind::Mutex(id));
        });
        if !std::thread::panicking() {
            let (exec, me) = current();
            exec.switch_point(me, None); // release is a schedule point
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}
