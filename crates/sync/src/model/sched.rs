//! The execution engine behind [`model`](crate::model::model): a
//! depth-first explorer over thread schedules.
//!
//! Every modeled synchronization operation funnels through
//! [`Exec::switch_point`]. Exactly one model thread runs between two
//! switch points, so an execution is fully determined by the sequence
//! of scheduling choices — which this module records as a trail and
//! replays with the last choice bumped to its next untried alternative
//! until the (preemption-bounded) space is exhausted.
//!
//! Model threads are real OS threads parked on a condvar; the scheduler
//! grants the token to one at a time, so modeled state needs no finer
//! locking than the single `Inner` mutex.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A model thread id (dense, per execution).
pub(crate) type Tid = usize;
/// A registered sync object id (dense, per execution).
pub(crate) type ObjId = usize;

/// Payload used to unwind model threads when an execution aborts
/// (another thread panicked or a deadlock was detected).
pub(crate) struct AbortUnwind;

/// Why a thread cannot run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockKind {
    /// Waiting to acquire a model mutex.
    Mutex(ObjId),
    /// Waiting for a message (or disconnect) on a model channel.
    Recv(ObjId),
    /// Waiting for a model thread to finish.
    Join(Tid),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    Running,
    Blocked(BlockKind),
    Finished,
}

/// Shared state of one modeled sync object.
pub(crate) enum Object {
    Mutex { locked: bool },
    Channel { queue: VecDeque<Box<dyn Any + Send>>, senders: usize, receiver_alive: bool },
}

/// One recorded scheduling decision (only decisions with more than one
/// alternative are recorded; forced moves replay themselves).
struct Choice {
    /// Runnable threads at this point, scheduling-preference order.
    alternatives: Vec<Tid>,
    /// Index into `alternatives` taken on this execution.
    chosen: usize,
    /// Preemptions spent strictly before this choice.
    preemptions_before: u32,
    /// The previously running thread, if it was still runnable here
    /// (choosing anything else costs one preemption).
    prev_runnable: Option<Tid>,
}

pub(crate) struct Inner {
    threads: Vec<ThreadState>,
    pub(crate) objects: Vec<Object>,
    active: Option<Tid>,
    last_running: Option<Tid>,
    trail: Vec<Choice>,
    prefix: Vec<usize>,
    cursor: usize,
    preemptions: u32,
    preemption_bound: Option<u32>,
    /// Virtual nanosecond clock; `thread::sleep` advances it.
    pub(crate) clock: u64,
    abort: bool,
    panic_payload: Option<Box<dyn Any + Send>>,
    join_values: Vec<Option<Box<dyn Any + Send>>>,
}

impl Inner {
    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| *t == ThreadState::Finished)
    }

    fn describe(&self) -> String {
        self.threads
            .iter()
            .enumerate()
            .map(|(i, t)| format!("t{i}:{t:?}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// One execution's shared scheduler state.
pub(crate) struct Exec {
    inner: Mutex<Inner>,
    cv: Condvar,
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Exec>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// The `(execution, thread id)` of the calling model thread.
///
/// # Panics
///
/// Panics when called outside [`model`](crate::model::model): model
/// sync primitives only work inside a checked closure.
pub(crate) fn current() -> (Arc<Exec>, Tid) {
    CURRENT.with(|c| {
        c.borrow().clone().expect(
            "rcm-sync model primitive used outside model(): under --cfg loom every \
             Mutex/channel/thread must be created and used inside rcm_sync::model::model",
        )
    })
}

fn set_current(exec: Arc<Exec>, tid: Tid) {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

impl Exec {
    fn new(prefix: Vec<usize>, preemption_bound: Option<u32>) -> Arc<Self> {
        Arc::new(Exec {
            inner: Mutex::new(Inner {
                threads: Vec::new(),
                objects: Vec::new(),
                active: None,
                last_running: None,
                trail: Vec::new(),
                prefix,
                cursor: 0,
                preemptions: 0,
                preemption_bound,
                clock: 0,
                abort: false,
                panic_payload: None,
                join_values: Vec::new(),
            }),
            cv: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs `f` against the scheduler state without yielding. Used for
    /// mutations that must stay safe during unwinds (drops).
    pub(crate) fn with_inner<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> R {
        let mut g = self.lock();
        let r = f(&mut g);
        drop(g);
        self.cv.notify_all();
        r
    }

    /// Registers a new sync object and returns its id.
    pub(crate) fn register(&self, obj: Object) -> ObjId {
        let mut g = self.lock();
        g.objects.push(obj);
        g.objects.len() - 1
    }

    /// Wakes every thread blocked for `kind`-equal reasons.
    pub(crate) fn wake(inner: &mut Inner, kind: BlockKind) {
        for t in inner.threads.iter_mut() {
            if *t == ThreadState::Blocked(kind) {
                *t = ThreadState::Runnable;
            }
        }
    }

    /// The heart of the model: the calling thread gives up the token
    /// (entering `state` — `Runnable` for a voluntary yield, `Blocked`
    /// when it cannot progress), the scheduler picks the next thread,
    /// and the call returns once the caller is granted the token again.
    pub(crate) fn switch_point(self: &Arc<Self>, me: Tid, state: Option<BlockKind>) {
        if std::thread::panicking() {
            // Unwinding threads must not schedule (or double-panic);
            // the execution is aborting anyway.
            return;
        }
        let mut g = self.lock();
        if g.abort {
            drop(g);
            resume_unwind(Box::new(AbortUnwind));
        }
        g.threads[me] = match state {
            None => ThreadState::Runnable,
            Some(kind) => ThreadState::Blocked(kind),
        };
        g.active = None;
        Self::pick_next(&mut g);
        self.cv.notify_all();
        while g.active != Some(me) {
            if g.abort {
                drop(g);
                resume_unwind(Box::new(AbortUnwind));
            }
            g = self.cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        g.threads[me] = ThreadState::Running;
    }

    /// Picks the next thread to run (or detects completion/deadlock).
    /// Decisions with more than one alternative are recorded for
    /// backtracking; within the preemption budget the previously
    /// running thread is preferred, then ascending thread id.
    fn pick_next(g: &mut Inner) {
        let mut alts: Vec<Tid> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == ThreadState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if alts.is_empty() {
            if !g.all_finished() && g.threads.iter().any(|t| matches!(t, ThreadState::Blocked(_))) {
                g.abort = true;
                g.panic_payload = Some(Box::new(format!(
                    "model deadlock: no runnable thread [{}] after schedule {:?}",
                    g.describe(),
                    g.trail.iter().map(|c| c.alternatives[c.chosen]).collect::<Vec<_>>(),
                )));
            }
            return;
        }
        let prev_runnable = g.last_running.filter(|p| alts.contains(p));
        if let Some(p) = prev_runnable {
            // Preference order: continue the current thread first.
            alts.retain(|&t| t != p);
            alts.insert(0, p);
            if g.preemption_bound.is_some_and(|b| g.preemptions >= b) {
                // Budget exhausted: a voluntary yield keeps running.
                alts.truncate(1);
            }
        }
        let idx = if g.cursor < g.prefix.len() && alts.len() > 1 { g.prefix[g.cursor] } else { 0 };
        assert!(
            idx < alts.len(),
            "non-deterministic model closure: replayed schedule diverged \
             (choice {} of {} alternatives)",
            idx,
            alts.len()
        );
        let chosen = alts[idx];
        if alts.len() > 1 {
            g.trail.push(Choice {
                alternatives: alts,
                chosen: idx,
                preemptions_before: g.preemptions,
                prev_runnable,
            });
            g.cursor += 1;
        }
        if prev_runnable.is_some_and(|p| chosen != p) {
            g.preemptions += 1;
        }
        g.active = Some(chosen);
        g.last_running = Some(chosen);
    }

    /// Registers a model thread (state `Runnable`) and returns its id.
    fn register_thread(&self) -> Tid {
        let mut g = self.lock();
        g.threads.push(ThreadState::Runnable);
        g.join_values.push(None);
        g.threads.len() - 1
    }

    /// Blocks the calling OS thread until the scheduler grants `tid`
    /// the token for the first time.
    fn wait_first_grant(self: &Arc<Self>, tid: Tid) -> bool {
        let mut g = self.lock();
        while g.active != Some(tid) {
            if g.abort {
                return false;
            }
            g = self.cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        g.threads[tid] = ThreadState::Running;
        true
    }

    /// Marks `tid` finished, stores its result (or the abort payload),
    /// wakes joiners and hands the token on.
    fn finish(
        self: &Arc<Self>,
        tid: Tid,
        result: Result<Box<dyn Any + Send>, Box<dyn Any + Send>>,
    ) {
        let mut g = self.lock();
        match result {
            Ok(v) => g.join_values[tid] = Some(v),
            Err(payload) => {
                if !payload.is::<AbortUnwind>() && !g.abort {
                    g.abort = true;
                    g.panic_payload = Some(payload);
                }
            }
        }
        g.threads[tid] = ThreadState::Finished;
        Self::wake(&mut g, BlockKind::Join(tid));
        if g.active == Some(tid) {
            g.active = None;
        }
        if !g.abort {
            Self::pick_next(&mut g);
        }
        drop(g);
        self.cv.notify_all();
    }

    /// Spawns a model thread running `f`; used by the shim's
    /// `thread::spawn` and for the root closure.
    pub(crate) fn spawn_model<T: Send + 'static>(
        self: &Arc<Self>,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> Tid {
        let tid = self.register_thread();
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("model-{tid}"))
            .spawn(move || {
                set_current(Arc::clone(&exec), tid);
                if exec.wait_first_grant(tid) {
                    let result = catch_unwind(AssertUnwindSafe(f))
                        .map(|v| Box::new(v) as Box<dyn Any + Send>);
                    exec.finish(tid, result);
                } else {
                    // Aborted before first grant; record as finished so
                    // the explorer's completion wait terminates.
                    exec.finish(tid, Err(Box::new(AbortUnwind)));
                }
                clear_current();
            })
            .expect("spawning model OS thread");
        self.os_handles.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(handle);
        tid
    }

    /// Takes the value a finished model thread returned.
    pub(crate) fn take_join_value(&self, tid: Tid) -> Option<Box<dyn Any + Send>> {
        self.lock().join_values[tid].take()
    }

    /// Whether `tid` has finished.
    pub(crate) fn is_finished(&self, tid: Tid) -> bool {
        self.lock().threads[tid] == ThreadState::Finished
    }

    /// Advances the virtual clock (a `sleep`). The caller must hold the
    /// token; severance windows and backoff deadlines expire instantly.
    pub(crate) fn advance_clock(&self, d: Duration) {
        let mut g = self.lock();
        g.clock = g.clock.saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Reads the virtual clock.
    pub(crate) fn now(&self) -> u64 {
        self.lock().clock
    }
}

/// Computes the next schedule prefix from a finished trail: the
/// deepest choice with an untried alternative, bumped. `None` when the
/// space is exhausted.
fn next_prefix(mut trail: Vec<Choice>, bound: Option<u32>) -> Option<Vec<usize>> {
    while let Some(c) = trail.pop() {
        for idx in c.chosen + 1..c.alternatives.len() {
            let preemptive = c.prev_runnable.is_some_and(|p| c.alternatives[idx] != p);
            let feasible = !preemptive || bound.is_none_or(|b| c.preemptions_before < b);
            if feasible {
                let mut prefix: Vec<usize> = trail.iter().map(|c| c.chosen).collect();
                prefix.push(idx);
                return Some(prefix);
            }
        }
    }
    None
}

/// Configures and runs a bounded-exhaustive model check. See
/// [`model`](crate::model::model) for the default-configured entry.
pub struct Model {
    preemption_bound: Option<u32>,
    max_executions: usize,
}

impl Default for Model {
    /// Defaults: preemption bound 2 (overridable with the
    /// `LOOM_MAX_PREEMPTIONS` environment variable, `0` meaning
    /// unbounded), at most 500 000 executions.
    fn default() -> Self {
        let bound = std::env::var("LOOM_MAX_PREEMPTIONS")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .map_or(Some(2), |n| if n == 0 { None } else { Some(n) });
        Model { preemption_bound: bound, max_executions: 500_000 }
    }
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("preemption_bound", &self.preemption_bound)
            .field("max_executions", &self.max_executions)
            .finish()
    }
}

impl Model {
    /// A model with the default bounds.
    pub fn new() -> Self {
        Model::default()
    }

    /// Sets the preemption bound (`None` = full exhaustive search).
    #[must_use]
    pub fn preemption_bound(mut self, bound: Option<u32>) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Caps the number of explored executions; exceeding it panics
    /// (the test models too much).
    #[must_use]
    pub fn max_executions(mut self, max: usize) -> Self {
        self.max_executions = max;
        self
    }

    /// Runs `f` under every schedule within the bounds and returns how
    /// many executions were explored.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic any schedule produced (with the
    /// schedule's choice sequence on stderr), panics on deadlock, on a
    /// non-deterministic closure, and when `max_executions` is
    /// exceeded.
    pub fn check(self, f: impl Fn() + Send + Sync + 'static) -> usize {
        let f = Arc::new(f);
        let mut prefix: Vec<usize> = Vec::new();
        let mut executions = 0usize;
        loop {
            let exec = Exec::new(prefix.clone(), self.preemption_bound);
            let root = Arc::clone(&f);
            exec.spawn_model(move || root());
            {
                // Initial grant.
                let mut g = exec.lock();
                Exec::pick_next(&mut g);
                drop(g);
                exec.cv.notify_all();
            }
            {
                let mut g = exec.lock();
                while !g.all_finished() {
                    g = exec.cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
            for h in
                exec.os_handles.lock().unwrap_or_else(std::sync::PoisonError::into_inner).drain(..)
            {
                let _ = h.join();
            }
            executions += 1;
            let mut g = exec.lock();
            if let Some(payload) = g.panic_payload.take() {
                eprintln!(
                    "model check failed on execution {executions} (schedule prefix {prefix:?})"
                );
                drop(g);
                resume_unwind(payload);
            }
            let trail = std::mem::take(&mut g.trail);
            drop(g);
            assert!(
                executions <= self.max_executions,
                "model check exceeded {} executions; tighten the test or the preemption bound",
                self.max_executions
            );
            match next_prefix(trail, self.preemption_bound) {
                Some(p) => prefix = p,
                None => return executions,
            }
        }
    }
}
