//! Model-checked unbounded channel with the crossbeam-channel API
//! subset the runtime uses.

use std::any::Any;
use std::marker::PhantomData;
use std::sync::Arc;

use super::sched::{current, BlockKind, Exec, Object};

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Like crossbeam-channel: Debug without a `T: Debug` bound, so generic
// senders can `.expect()` a send without constraining their payload.
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`] when every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Every sender is gone and the queue is drained.
    Disconnected,
}

/// Creates an unbounded model channel.
pub fn unbounded<T: Send + 'static>() -> (Sender<T>, Receiver<T>) {
    let (exec, _) = current();
    let id = exec.register(Object::Channel {
        queue: std::collections::VecDeque::new(),
        senders: 1,
        receiver_alive: true,
    });
    (
        Sender { id, exec: Arc::clone(&exec), _marker: PhantomData },
        Receiver { id, exec, _marker: PhantomData },
    )
}

fn channel_mut(
    inner: &mut super::sched::Inner,
    id: usize,
) -> (&mut std::collections::VecDeque<Box<dyn Any + Send>>, &mut usize, &mut bool) {
    match &mut inner.objects[id] {
        Object::Channel { queue, senders, receiver_alive } => (queue, senders, receiver_alive),
        Object::Mutex { .. } => unreachable!("object id points at a mutex"),
    }
}

/// The sending half; cloneable.
pub struct Sender<T> {
    id: usize,
    exec: Arc<Exec>,
    _marker: PhantomData<fn(T)>,
}

impl<T: Send + 'static> Sender<T> {
    /// Sends a message (never blocks: the channel is unbounded).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let (exec, me) = current();
        exec.switch_point(me, None);
        let mut slot = Some(value);
        let rejected = exec.with_inner(|inner| {
            let (queue, _, receiver_alive) = channel_mut(inner, self.id);
            if !*receiver_alive {
                return true;
            }
            queue.push_back(Box::new(slot.take().expect("value not yet consumed")));
            Exec::wake(inner, BlockKind::Recv(self.id));
            false
        });
        if rejected {
            Err(SendError(slot.take().expect("value retained on rejection")))
        } else {
            Ok(())
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.exec.with_inner(|inner| {
            let (_, senders, _) = channel_mut(inner, self.id);
            *senders += 1;
        });
        Sender { id: self.id, exec: Arc::clone(&self.exec), _marker: PhantomData }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.exec.with_inner(|inner| {
            let (_, senders, _) = channel_mut(inner, self.id);
            *senders -= 1;
            if *senders == 0 {
                // Blocked receivers must observe the disconnect.
                Exec::wake(inner, BlockKind::Recv(self.id));
            }
        });
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").field("id", &self.id).finish()
    }
}

/// The receiving half.
pub struct Receiver<T> {
    id: usize,
    exec: Arc<Exec>,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Send + 'static> Receiver<T> {
    /// Receives the next message, blocking (in model time) until one
    /// arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let (exec, me) = current();
        exec.switch_point(me, None);
        loop {
            enum Step<T> {
                Got(T),
                Disconnected,
                Wait,
            }
            let step = exec.with_inner(|inner| {
                let (queue, senders, _) = channel_mut(inner, self.id);
                if let Some(boxed) = queue.pop_front() {
                    Step::Got(*boxed.downcast::<T>().expect("channel stores only T"))
                } else if *senders == 0 {
                    Step::Disconnected
                } else {
                    Step::Wait
                }
            });
            match step {
                Step::Got(v) => return Ok(v),
                Step::Disconnected => return Err(RecvError),
                Step::Wait => exec.switch_point(me, Some(BlockKind::Recv(self.id))),
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let (exec, me) = current();
        exec.switch_point(me, None);
        exec.with_inner(|inner| {
            let (queue, senders, _) = channel_mut(inner, self.id);
            if let Some(boxed) = queue.pop_front() {
                Ok(*boxed.downcast::<T>().expect("channel stores only T"))
            } else if *senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        })
    }

    /// A blocking iterator ending at disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// A non-blocking iterator draining currently queued messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.exec.with_inner(|inner| {
            let (queue, _, receiver_alive) = channel_mut(inner, self.id);
            *receiver_alive = false;
            queue.clear();
        });
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver").field("id", &self.id).finish()
    }
}

/// Blocking iterator over received messages.
#[derive(Debug)]
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T: Send + 'static> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

/// Non-blocking iterator over queued messages.
#[derive(Debug)]
pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T: Send + 'static> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

/// Owning blocking iterator (drops the receiver at the end).
#[derive(Debug)]
pub struct IntoIter<T> {
    rx: Receiver<T>,
}

impl<T: Send + 'static> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<T: Send + 'static> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { rx: self }
    }
}

impl<'a, T: Send + 'static> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}
