//! A small deterministic model checker in the spirit of
//! [loom](https://docs.rs/loom): run a closure under **every** thread
//! interleaving (up to a preemption bound) and let ordinary assertions
//! fail on the schedule that breaks them.
//!
//! The checker is bundled so the repository needs no extra
//! dependency: under `--cfg loom` the crate's shim types
//! ([`Mutex`](crate::Mutex), [`chan`](crate::chan),
//! [`thread`](crate::thread), [`time`](crate::time)) resolve to the
//! instrumented types in this module, and every synchronization
//! operation becomes a schedule point the explorer branches on.
//! Swapping in the real `loom` crate later only changes this module's
//! re-exports — the shim surface is the same.
//!
//! What the model explores and guarantees:
//!
//! * **Exhaustive within bounds** — depth-first over every scheduling
//!   decision with more than one runnable thread, limited by a
//!   preemption bound (default 2, loom's CI default; override with
//!   `LOOM_MAX_PREEMPTIONS`, `0` = unbounded).
//! * **Deterministic virtual time** — `time::Instant` reads a virtual
//!   clock only `thread::sleep` advances, so backoff deadlines and
//!   severance windows are schedule-stable.
//! * **Deadlock detection** — a state with live but only-blocked
//!   threads aborts the execution with the offending schedule.
//! * **Panic replay** — the first failing schedule's choice sequence
//!   is printed so the interleaving can be reconstructed.
//!
//! ```
//! use rcm_sync::model::{model, sync::Mutex};
//! use std::sync::Arc;
//!
//! model(|| {
//!     let m = Arc::new(Mutex::new(0u32));
//!     let m2 = Arc::clone(&m);
//!     let t = rcm_sync::model::thread::spawn(move || *m2.lock() += 1);
//!     *m.lock() += 1;
//!     t.join().expect("model threads do not fail joins");
//!     assert_eq!(*m.lock(), 2);
//! });
//! ```

pub mod atomic;
pub mod chan;
mod sched;
pub mod sync;
pub mod thread;
pub mod time;

pub use sched::Model;

/// Checks `f` under every schedule within the default bounds
/// (preemption bound 2, overridable via `LOOM_MAX_PREEMPTIONS`).
/// Returns the number of executions explored.
pub fn model(f: impl Fn() + Send + Sync + 'static) -> usize {
    Model::new().check(f)
}
