//! Model-instrumented atomics: every operation is a schedule point, so
//! the explorer interleaves around them. Orderings are accepted but
//! the model is sequentially consistent (one thread runs at a time).

pub use std::sync::atomic::Ordering;

use super::sched::current;

macro_rules! model_atomic {
    ($name:ident, $inner:ty, $prim:ty) => {
        /// Model-checked atomic; see the module docs.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $inner,
        }

        impl $name {
            /// Creates the atomic with an initial value.
            pub fn new(v: $prim) -> Self {
                Self { inner: <$inner>::new(v) }
            }

            /// Loads the value (schedule point).
            pub fn load(&self, order: Ordering) -> $prim {
                let (exec, me) = current();
                exec.switch_point(me, None);
                self.inner.load(order)
            }

            /// Stores a value (schedule point).
            pub fn store(&self, v: $prim, order: Ordering) {
                let (exec, me) = current();
                exec.switch_point(me, None);
                self.inner.store(v, order);
            }

            /// Consumes the atomic, returning the value.
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }
    };
}

model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

impl AtomicU64 {
    /// Atomic add returning the previous value (schedule point).
    pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        let (exec, me) = current();
        exec.switch_point(me, None);
        self.inner.fetch_add(v, order)
    }
}

impl AtomicUsize {
    /// Atomic add returning the previous value (schedule point).
    pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        let (exec, me) = current();
        exec.switch_point(me, None);
        self.inner.fetch_add(v, order)
    }
}

impl AtomicBool {
    /// Atomic swap returning the previous value (schedule point).
    pub fn swap(&self, v: bool, order: Ordering) -> bool {
        let (exec, me) = current();
        exec.switch_point(me, None);
        self.inner.swap(v, order)
    }
}
