//! Model-checked `thread::{spawn, sleep, yield_now}`.

use std::sync::Arc;
use std::time::Duration;

use super::sched::{current, BlockKind, Exec};

/// Handle to a model thread; `join` blocks (in model time) until it
/// finishes. A panic in any model thread aborts the whole execution,
/// so unlike `std`, `join` only ever returns `Ok`.
pub struct JoinHandle<T> {
    tid: usize,
    exec: Arc<Exec>,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").field("tid", &self.tid).finish()
    }
}

/// Spawns a model thread. Must be called inside
/// [`model`](crate::model::model).
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, me) = current();
    let tid = exec.spawn_model(f);
    // Spawn is a schedule point: the child may run before the parent's
    // next instruction.
    exec.switch_point(me, None);
    JoinHandle { tid, exec, _marker: std::marker::PhantomData }
}

impl<T: Send + 'static> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    pub fn join(self) -> std::thread::Result<T> {
        let (exec, me) = current();
        exec.switch_point(me, None);
        while !self.exec.is_finished(self.tid) {
            exec.switch_point(me, Some(BlockKind::Join(self.tid)));
        }
        let boxed =
            self.exec.take_join_value(self.tid).expect("finished model thread left a join value");
        Ok(*boxed.downcast::<T>().expect("join value has the spawned type"))
    }
}

/// Advances the virtual clock by `d` and yields. Nothing actually
/// sleeps: modeled deadlines (backoff, severance windows) simply
/// expire.
pub fn sleep(d: Duration) {
    let (exec, me) = current();
    exec.advance_clock(d);
    exec.switch_point(me, None);
}

/// A pure schedule point.
pub fn yield_now() {
    let (exec, me) = current();
    exec.switch_point(me, None);
}
