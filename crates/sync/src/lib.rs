//! # rcm-sync — the runtime's one door to concurrency primitives
//!
//! Every lock, channel, thread and clock the threaded runtime
//! (`rcm-runtime`) uses is imported from this crate, never from
//! `std::sync`/`std::thread`/`parking_lot`/`crossbeam_channel`
//! directly (`cargo xtask lint` enforces this). That indirection buys
//! model checking for free:
//!
//! * **Default build**: the types below are the production primitives —
//!   [`parking_lot::Mutex`], [`crossbeam_channel`] channels,
//!   [`std::thread`], [`std::time::Instant`]. Zero overhead, zero
//!   behavior change.
//! * **`RUSTFLAGS="--cfg loom"`**: the same paths resolve to the
//!   bundled deterministic [`model`] checker's instrumented types, and
//!   a test wrapped in [`model::model`] runs under every thread
//!   interleaving (bounded-exhaustive, loom-style) instead of the one
//!   the OS happened to pick.
//!
//! The shim surface is deliberately small — exactly what the runtime
//! needs: `Arc` (always `std::sync::Arc`; reference counting is not
//! schedule-relevant), an infallible-`lock` `Mutex`, unbounded MPSC
//! channels ([`chan`]), [`thread`] spawn/join/sleep/yield, [`time`]
//! instants, sequentially consistent [`atomic`]s, and bounded [`spsc`]
//! rings (built *from* the other primitives, so they model-check too).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod model;
pub mod spsc;

pub use std::sync::Arc;

#[cfg(not(loom))]
pub use parking_lot::{Mutex, MutexGuard};

#[cfg(loom)]
pub use model::sync::{Mutex, MutexGuard};

/// Unbounded MPSC channels (crossbeam-channel API subset).
#[cfg(not(loom))]
pub mod chan {
    pub use crossbeam_channel::{
        unbounded, IntoIter, Iter, Receiver, RecvError, SendError, Sender, TryIter, TryRecvError,
    };
}

/// Unbounded MPSC channels (model-checked).
#[cfg(loom)]
pub mod chan {
    pub use crate::model::chan::{
        unbounded, IntoIter, Iter, Receiver, RecvError, SendError, Sender, TryIter, TryRecvError,
    };
}

/// Thread spawn/join, sleep and yield.
#[cfg(not(loom))]
pub mod thread {
    pub use std::thread::{sleep, spawn, yield_now, JoinHandle};
}

/// Thread spawn/join, sleep and yield (model-checked).
#[cfg(loom)]
pub mod thread {
    pub use crate::model::thread::{sleep, spawn, yield_now, JoinHandle};
}

/// Monotonic clock reads.
#[cfg(not(loom))]
pub mod time {
    pub use std::time::{Duration, Instant};
}

/// Monotonic clock reads (virtual under the model).
#[cfg(loom)]
pub mod time {
    pub use crate::model::time::Instant;
    pub use std::time::Duration;
}

/// Sequentially consistent atomics.
#[cfg(not(loom))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Sequentially consistent atomics (model-checked).
#[cfg(loom)]
pub mod atomic {
    pub use crate::model::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}
