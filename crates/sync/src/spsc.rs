//! Bounded single-producer/single-consumer rings for the evaluation
//! pipeline's dispatcher → shard-worker handoff.
//!
//! The ring is deliberately built from the shim's own primitives — a
//! [`Mutex`](crate::Mutex) around the queue state plus unbounded
//! [`chan`](crate::chan) channels carrying wake tokens — so the exact
//! same source compiles under `--cfg loom` and the handoff protocol is
//! model-checkable without a parallel "test double" implementation.
//! The cost versus a lock-free ring is one uncontended mutex
//! acquisition per operation, which is noise next to a condition
//! re-evaluation; the payoff is that the lost-wakeup argument below is
//! *checked*, not argued.
//!
//! ## Wakeup protocol
//!
//! A side that must block (the consumer on empty in [`Consumer::pop`],
//! the producer on full in [`Producer::push_wait`]) sets its
//! `*_sleeping` flag **while holding the state lock**, releases the
//! lock, and then blocks on its private wake channel. The peer only
//! sends a wake token on a flag transition `true → false` made under
//! the same lock. Consequently at most one token is ever in flight per
//! side, and every `recv` has a matching prior `send` caused by exactly
//! the state change the sleeper was waiting for — a sleeper can never
//! strand. `spsc_handoff_never_strands_or_reorders` in
//! `crates/runtime/tests/loom.rs` checks this exhaustively.
//!
//! ## Shedding
//!
//! [`Producer::push`] is the non-blocking entry: a full ring returns
//! the rejected value to the caller, which the pipeline counts as a
//! *shed* update — semantically indistinguishable from a front-link
//! drop, so the paper's per-AD guarantees already cover it.
//! [`Producer::push_wait`] is the blocking entry reserved for control
//! messages (restart/abandon markers) that must never be lost.

use std::collections::VecDeque;

use crate::chan::{Receiver, Sender};
use crate::{Arc, Mutex};

/// Shared ring state. LOCK ORDER: `state` is a leaf mutex — both sides
/// take it alone and release it before any channel operation (wake
/// tokens are sent *after* the guard drops), so no lock cycle exists.
struct Shared<T> {
    state: Mutex<State<T>>,
    /// Wake tokens for a consumer sleeping on "empty".
    consumer_wake: Sender<()>,
    /// Wake tokens for a producer sleeping on "full" in `push_wait`.
    producer_wake: Sender<()>,
}

struct State<T> {
    buf: VecDeque<T>,
    capacity: usize,
    /// Producer dropped: the consumer drains, then sees end-of-stream.
    closed: bool,
    /// Consumer dropped: pushes report disconnect.
    consumer_gone: bool,
    consumer_sleeping: bool,
    producer_sleeping: bool,
}

impl<T> State<T> {
    /// Clears the consumer's sleep flag if set; the caller must send
    /// one wake token after dropping the lock iff this returns true.
    fn take_consumer_sleep(&mut self) -> bool {
        std::mem::take(&mut self.consumer_sleeping)
    }

    /// Producer-side counterpart of [`State::take_consumer_sleep`].
    fn take_producer_sleep(&mut self) -> bool {
        std::mem::take(&mut self.producer_sleeping)
    }
}

/// Sending half of a bounded SPSC ring (not `Clone`: *single*
/// producer).
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    wake: Receiver<()>,
}

/// Receiving half of a bounded SPSC ring (not `Clone`: *single*
/// consumer).
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    wake: Receiver<()>,
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("spsc::Producer").finish()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("spsc::Consumer").finish()
    }
}

/// Why a non-blocking push did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is at capacity; the value comes back to the caller
    /// (the pipeline counts this as a shed update).
    Full(T),
    /// The consumer is gone; no value will ever be read again.
    Disconnected(T),
}

/// Why a non-blocking pop returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryPopError {
    /// Ring is empty but the producer is still alive.
    Empty,
    /// Ring is empty and the producer hung up: end of stream.
    Disconnected,
}

/// Creates a bounded ring holding at most `capacity` in-flight values.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity >= 1, "spsc ring needs capacity >= 1");
    let (consumer_wake, consumer_wake_rx) = crate::chan::unbounded();
    let (producer_wake, producer_wake_rx) = crate::chan::unbounded();
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            closed: false,
            consumer_gone: false,
            consumer_sleeping: false,
            producer_sleeping: false,
        }),
        consumer_wake,
        producer_wake,
    });
    (
        Producer { shared: Arc::clone(&shared), wake: producer_wake_rx },
        Consumer { shared, wake: consumer_wake_rx },
    )
}

impl<T> Producer<T> {
    /// Non-blocking enqueue: `Err(Full)` hands the value back when the
    /// ring is at capacity (the caller sheds it), `Err(Disconnected)`
    /// when the consumer is gone.
    pub fn push(&self, value: T) -> Result<(), PushError<T>> {
        let wake = {
            let mut st = self.shared.state.lock();
            if st.consumer_gone {
                return Err(PushError::Disconnected(value));
            }
            if st.buf.len() >= st.capacity {
                return Err(PushError::Full(value));
            }
            st.buf.push_back(value);
            st.take_consumer_sleep()
        };
        if wake {
            let _ = self.shared.consumer_wake.send(());
        }
        Ok(())
    }

    /// Blocking enqueue for control messages: waits for ring space
    /// rather than shedding. `Err` only when the consumer is gone.
    pub fn push_wait(&self, value: T) -> Result<(), PushError<T>> {
        let mut slot = Some(value);
        loop {
            let wake = {
                let mut st = self.shared.state.lock();
                if st.consumer_gone {
                    match slot.take() {
                        Some(v) => return Err(PushError::Disconnected(v)),
                        None => unreachable!("value consumed only on successful push"),
                    }
                }
                if st.buf.len() >= st.capacity {
                    st.producer_sleeping = true;
                    None
                } else {
                    match slot.take() {
                        Some(v) => st.buf.push_back(v),
                        None => unreachable!("value consumed only on successful push"),
                    }
                    Some(st.take_consumer_sleep())
                }
            };
            match wake {
                Some(wake_consumer) => {
                    if wake_consumer {
                        let _ = self.shared.consumer_wake.send(());
                    }
                    return Ok(());
                }
                None => {
                    // Sleep until the consumer pops (it wakes us on the
                    // flag it saw under the lock). A recv error means
                    // the consumer dropped; the next lap notices
                    // `consumer_gone` and returns the value.
                    if self.wake.recv().is_err() {
                        self.shared.state.lock().producer_sleeping = false;
                    }
                }
            }
        }
    }

    /// Whether a `push` right now would shed (advisory; exact for the
    /// single producer as long as it checks before pushing).
    pub fn is_full(&self) -> bool {
        let st = self.shared.state.lock();
        !st.consumer_gone && st.buf.len() >= st.capacity
    }

    /// In-flight values currently buffered.
    pub fn len(&self) -> usize {
        self.shared.state.lock().buf.len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        let wake = {
            let mut st = self.shared.state.lock();
            st.closed = true;
            st.take_consumer_sleep()
        };
        if wake {
            let _ = self.shared.consumer_wake.send(());
        }
    }
}

impl<T> Consumer<T> {
    /// Non-blocking dequeue.
    pub fn try_pop(&self) -> Result<T, TryPopError> {
        let (value, wake) = {
            let mut st = self.shared.state.lock();
            match st.buf.pop_front() {
                Some(v) => (v, st.take_producer_sleep()),
                None if st.closed => return Err(TryPopError::Disconnected),
                None => return Err(TryPopError::Empty),
            }
        };
        if wake {
            let _ = self.shared.producer_wake.send(());
        }
        Ok(value)
    }

    /// Drains up to `max` buffered values into `out` under a single
    /// lock acquisition — the pipeline's batch amortization. Returns
    /// how many values were moved (0 when the ring is empty, whether
    /// or not the producer is still alive).
    pub fn drain_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        let (n, wake) = {
            let mut st = self.shared.state.lock();
            let n = st.buf.len().min(max);
            out.extend(st.buf.drain(..n));
            (n, if n > 0 { st.take_producer_sleep() } else { false })
        };
        if wake {
            let _ = self.shared.producer_wake.send(());
        }
        n
    }

    /// Blocking dequeue: `None` means the producer hung up and the ring
    /// is drained (end of stream).
    pub fn pop(&self) -> Option<T> {
        loop {
            let popped = {
                let mut st = self.shared.state.lock();
                match st.buf.pop_front() {
                    Some(v) => Some((v, st.take_producer_sleep())),
                    None if st.closed => return None,
                    None => {
                        st.consumer_sleeping = true;
                        None
                    }
                }
            };
            if let Some((value, wake)) = popped {
                if wake {
                    let _ = self.shared.producer_wake.send(());
                }
                return Some(value);
            }
            // Sleep until the producer pushes or closes; it saw our
            // flag under the lock and owes us exactly one token. A recv
            // error (producer dropped mid-protocol) just re-checks.
            match self.wake.recv() {
                Ok(()) => {}
                Err(_) => {
                    self.shared.state.lock().consumer_sleeping = false;
                }
            }
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        let wake = {
            let mut st = self.shared.state.lock();
            st.consumer_gone = true;
            st.buf.clear();
            st.take_producer_sleep()
        };
        if wake {
            let _ = self.shared.producer_wake.send(());
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_capacity() {
        let (tx, rx) = ring::<u32>(8);
        for i in 0..5 {
            tx.push(i).expect("within capacity");
        }
        drop(tx);
        let mut got = Vec::new();
        while let Some(v) = rx.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_ring_sheds_and_returns_the_value() {
        let (tx, rx) = ring::<u32>(2);
        tx.push(1).expect("fits");
        tx.push(2).expect("fits");
        assert!(tx.is_full());
        assert_eq!(tx.push(3), Err(PushError::Full(3)));
        assert_eq!(rx.try_pop(), Ok(1));
        assert!(!tx.is_full());
        tx.push(3).expect("space freed");
        assert_eq!(rx.try_pop(), Ok(2));
        assert_eq!(rx.try_pop(), Ok(3));
        assert_eq!(rx.try_pop(), Err(TryPopError::Empty));
    }

    #[test]
    fn close_drains_then_disconnects() {
        let (tx, rx) = ring::<u32>(4);
        tx.push(7).expect("fits");
        drop(tx);
        assert_eq!(rx.try_pop(), Ok(7));
        assert_eq!(rx.try_pop(), Err(TryPopError::Disconnected));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn consumer_gone_fails_pushes() {
        let (tx, rx) = ring::<u32>(4);
        drop(rx);
        assert_eq!(tx.push(1), Err(PushError::Disconnected(1)));
        assert_eq!(tx.push_wait(2), Err(PushError::Disconnected(2)));
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let (tx, rx) = ring::<u32>(4);
        let h = crate::thread::spawn(move || rx.pop());
        crate::thread::sleep(std::time::Duration::from_millis(10));
        tx.push(42).expect("fits");
        assert_eq!(h.join().expect("consumer thread"), Some(42));
    }

    #[test]
    fn push_wait_blocks_until_space_then_delivers() {
        let (tx, rx) = ring::<u32>(1);
        tx.push(1).expect("fits");
        let h = crate::thread::spawn(move || {
            tx.push_wait(2).expect("consumer alive");
        });
        crate::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        h.join().expect("producer thread");
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn heavy_handoff_preserves_every_value_in_order() {
        let (tx, rx) = ring::<u64>(16);
        const N: u64 = 10_000;
        let h = crate::thread::spawn(move || {
            let mut got = Vec::with_capacity(N as usize);
            while let Some(v) = rx.pop() {
                got.push(v);
            }
            got
        });
        for i in 0..N {
            tx.push_wait(i).expect("consumer alive");
        }
        drop(tx);
        let got = h.join().expect("consumer thread");
        assert_eq!(got.len() as u64, N);
        assert!(got.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn drain_into_moves_a_batch_under_one_lock() {
        let (tx, rx) = ring::<u32>(8);
        for i in 0..6 {
            tx.push(i).expect("fits");
        }
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.drain_into(&mut out, 10), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(rx.drain_into(&mut out, 10), 0);
        drop(tx);
        assert_eq!(rx.drain_into(&mut out, 10), 0);
        assert_eq!(rx.try_pop(), Err(TryPopError::Disconnected));
    }

    #[test]
    fn drain_into_frees_a_waiting_producer() {
        let (tx, rx) = ring::<u32>(2);
        tx.push(1).expect("fits");
        tx.push(2).expect("fits");
        let h = crate::thread::spawn(move || {
            tx.push_wait(3).expect("consumer alive");
        });
        crate::thread::sleep(std::time::Duration::from_millis(10));
        let mut out = Vec::new();
        assert!(rx.drain_into(&mut out, 2) == 2);
        h.join().expect("producer thread");
        assert_eq!(rx.pop(), Some(3));
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_rejected() {
        let _ = ring::<u32>(0);
    }
}
