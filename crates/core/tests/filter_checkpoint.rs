//! Durable Alert Displayers: every AD algorithm's state serializes, so
//! an AD can checkpoint, restart, and keep filtering exactly where it
//! left off — the paper's AD never forgets what it displayed, which
//! the consistency guarantees depend on.

use rcm_core::ad::{Ad1, Ad1Digest, Ad2, Ad3, Ad4, Ad5, Ad6, AlertFilter, Decision};
use rcm_core::{Alert, AlertId, CeId, CondId, HistoryFingerprint, SeqNo, VarId};
use serde::de::DeserializeOwned;
use serde::Serialize;

fn x() -> VarId {
    VarId::new(0)
}
fn y() -> VarId {
    VarId::new(1)
}

fn alert(seqnos: &[u64]) -> Alert {
    Alert::new(
        CondId::SINGLE,
        HistoryFingerprint::single(x(), seqnos.iter().map(|&s| SeqNo::new(s)).collect()),
        vec![],
        AlertId { ce: CeId::new(0), index: 0 },
    )
}

fn alert2(xs: u64, ys: u64) -> Alert {
    Alert::new(
        CondId::SINGLE,
        HistoryFingerprint::new(vec![(x(), vec![SeqNo::new(xs)]), (y(), vec![SeqNo::new(ys)])]),
        vec![],
        AlertId { ce: CeId::new(0), index: 0 },
    )
}

/// Runs `first` through the filter, snapshots it through JSON, and
/// checks the restored filter makes the same decisions on `second` as
/// the uninterrupted original.
fn checkpoint_roundtrip<F>(mut filter: F, first: &[Alert], second: &[Alert])
where
    F: AlertFilter + Serialize + DeserializeOwned,
{
    for a in first {
        filter.offer(a);
    }
    let snapshot = serde_json::to_string(&filter).expect("filter state serializes");
    let mut restored: F = serde_json::from_str(&snapshot).expect("state restores");
    let live: Vec<Decision> = second.iter().map(|a| filter.offer(a)).collect();
    let resumed: Vec<Decision> = second.iter().map(|a| restored.offer(a)).collect();
    assert_eq!(live, resumed, "{} diverged after restore", filter.name());
}

#[test]
fn all_single_var_filters_checkpoint() {
    let first = vec![alert(&[3, 1]), alert(&[5, 4])];
    let second = vec![
        alert(&[3, 1]),    // duplicate of a displayed alert
        alert(&[4, 3, 2]), // conflicts (2 is in Missed)
        alert(&[2, 1]),    // out of order
        alert(&[7, 6]),    // fresh
    ];
    checkpoint_roundtrip(Ad1::new(), &first, &second);
    checkpoint_roundtrip(Ad1Digest::new(), &first, &second);
    checkpoint_roundtrip(Ad2::new(x()), &first, &second);
    checkpoint_roundtrip(Ad3::new(x()), &first, &second);
    checkpoint_roundtrip(Ad4::new(x()), &first, &second);
}

#[test]
fn multi_var_filters_checkpoint() {
    let first = vec![alert2(1, 2), alert2(3, 2)];
    let second = vec![alert2(2, 1), alert2(3, 2), alert2(4, 4)];
    checkpoint_roundtrip(Ad5::new([x(), y()]), &first, &second);
    checkpoint_roundtrip(Ad6::new([x(), y()]), &first, &second);
}

#[test]
fn restored_ad3_remembers_missed_set() {
    // The crucial case: consistency depends on remembering what was
    // declared missed *before* the restart.
    let mut ad = Ad3::new(x());
    assert!(ad.offer(&alert(&[3, 1])).is_deliver()); // Missed = {2}
    let snapshot = serde_json::to_string(&ad).unwrap();
    let mut restored: Ad3 = serde_json::from_str(&snapshot).unwrap();
    assert!(
        !restored.offer(&alert(&[3, 2])).is_deliver(),
        "restart must not forget that update 2 was missed"
    );
    let witness: Vec<u64> = restored.received().map(|s| s.get()).collect();
    assert_eq!(witness, vec![1, 3]);
}

#[test]
fn snapshot_is_plain_json() {
    let mut ad = Ad2::new(x());
    ad.offer(&alert(&[5]));
    let snapshot = serde_json::to_string(&ad).unwrap();
    assert!(snapshot.contains('5'), "watermark visible in {snapshot}");
}
