//! Property-based tests of the condition expression language: the
//! parser never panics on arbitrary input, and `parse ∘ display` is the
//! identity on well-formed syntax trees.

use proptest::prelude::*;

use rcm_core::condition::expr::{parse, AggOp, BinOp, Expr, Field, UnOp};

/// Strategy for random well-formed expression trees over variable
/// names `a`/`b`.
fn expr_strategy() -> impl Strategy<Value = Expr<String>> {
    let leaf = prop_oneof![
        (0..1000u32).prop_map(|n| Expr::Num(f64::from(n))),
        any::<bool>().prop_map(Expr::Bool),
        (
            prop_oneof![Just("a"), Just("b")],
            0i64..4,
            prop_oneof![Just(Field::Value), Just(Field::Seqno)]
        )
            .prop_map(|(v, i, field)| Expr::Term { var: v.to_owned(), index: -i, field }),
        prop_oneof![Just("a"), Just("b")].prop_map(|v| Expr::Consecutive(v.to_owned())),
        (
            prop_oneof![Just(AggOp::Min), Just(AggOp::Max), Just(AggOp::Avg), Just(AggOp::Sum)],
            prop_oneof![Just("a"), Just("b")],
            1u64..5,
        )
            .prop_map(|(op, v, w)| Expr::Agg { op, var: v.to_owned(), window: w }),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ]
            )
                .prop_map(|(l, r, op)| Expr::Binary {
                    op,
                    lhs: Box::new(l),
                    rhs: Box::new(r)
                }),
            inner.clone().prop_map(|e| Expr::Unary { op: UnOp::Not, expr: Box::new(e) }),
            inner.clone().prop_map(|e| Expr::Unary { op: UnOp::Neg, expr: Box::new(e) }),
            inner.clone().prop_map(|e| Expr::Abs(Box::new(e))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Min(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "\\PC{0,80}") {
        let _ = parse(&input); // must return Ok or Err, never panic
    }

    #[test]
    fn parser_never_panics_on_almost_valid_input(
        input in "[a-z0-9\\[\\]\\.\\(\\)<>=!&| +*/-]{0,60}"
    ) {
        let _ = parse(&input);
    }

    #[test]
    fn display_parse_roundtrip(ast in expr_strategy()) {
        // Display prints fully parenthesized canonical syntax; parsing
        // it back must reproduce the tree exactly. (Type errors don't
        // matter here — this exercises the grammar, not the checker.)
        let printed = ast.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("canonical form failed to parse: {printed} ({e})"));
        prop_assert_eq!(reparsed, ast, "roundtrip diverged for {}", printed);
    }
}
