//! Property-based tests of the Condition Evaluator (`T`) — including
//! mechanized versions of the paper's Lemma 3 and Corollary 2.

use proptest::prelude::*;

use rcm_core::condition::{Cmp, Conservative, DeltaRise, Threshold};
use rcm_core::seq::{is_ordered, ordered_union, project_alerts};
use rcm_core::{transduce, transduce_merged, CeId, Condition, ConditionExt, Update, VarId};

fn x() -> VarId {
    VarId::new(0)
}

/// Builds an in-order lossy update stream: `values[i]` is the value of
/// seqno `i + 1`, `mask[i]` whether the replica received it.
fn stream(values: &[f64], mask: &[bool]) -> Vec<Update> {
    values
        .iter()
        .enumerate()
        .zip(mask.iter().cycle())
        .filter(|(_, &keep)| keep)
        .map(|((i, &v), _)| Update::new(x(), i as u64 + 1, v))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn t_is_deterministic(
        values in proptest::collection::vec(0.0f64..100.0, 0..30),
        mask in proptest::collection::vec(any::<bool>(), 1..30),
    ) {
        let u = stream(&values, &mask);
        let c2 = DeltaRise::new(x(), 10.0);
        prop_assert_eq!(transduce(&c2, CeId::new(0), &u), transduce(&c2, CeId::new(1), &u));
    }

    #[test]
    fn t_of_an_ordered_input_is_ordered(
        values in proptest::collection::vec(0.0f64..100.0, 0..30),
        mask in proptest::collection::vec(any::<bool>(), 1..30),
    ) {
        // Used implicitly throughout the paper's proofs: alerts are
        // given out in seqno order by a single CE.
        let u = stream(&values, &mask);
        for cond in conditions() {
            let alerts = transduce(&cond, CeId::new(0), &u);
            let proj = project_alerts(&alerts, x());
            prop_assert!(is_ordered(&proj), "{}", cond.name());
        }
    }

    #[test]
    fn fingerprints_are_full_degree_and_head_matches(
        values in proptest::collection::vec(0.0f64..100.0, 0..30),
        mask in proptest::collection::vec(any::<bool>(), 1..30),
    ) {
        let u = stream(&values, &mask);
        for cond in conditions() {
            let degree = cond.degree(x());
            for alert in transduce(&cond, CeId::new(0), &u) {
                let seqnos = alert.fingerprint.seqnos(x()).expect("single var");
                prop_assert_eq!(seqnos.len(), degree, "{}", cond.name());
                // a.seqno.x is the newest history entry.
                prop_assert_eq!(alert.seqno(x()), seqnos.first().copied());
            }
        }
    }

    #[test]
    fn conservative_alerts_always_have_consecutive_histories(
        values in proptest::collection::vec(0.0f64..1000.0, 0..30),
        mask in proptest::collection::vec(any::<bool>(), 1..30),
    ) {
        let u = stream(&values, &mask);
        let c3 = Conservative::new(DeltaRise::new(x(), 10.0));
        for alert in transduce(&c3, CeId::new(0), &u) {
            prop_assert!(alert.fingerprint.is_consecutive());
        }
    }

    #[test]
    fn lemma_3_non_historical_t_commutes_with_union(
        values in proptest::collection::vec(0.0f64..100.0, 0..25),
        mask1 in proptest::collection::vec(any::<bool>(), 1..25),
        mask2 in proptest::collection::vec(any::<bool>(), 1..25),
    ) {
        // Lemma 3 / Corollary 2: for non-historical T,
        // ΦT(U1 ⊔ U2) = ΦT(U1) ∪ ΦT(U2).
        let c1 = Threshold::new(x(), Cmp::Gt, 50.0);
        let u1 = stream(&values, &mask1);
        let u2 = stream(&values, &mask2);
        let merged = transduce_merged(&c1, CeId::new(0), &u1, &u2);
        let a1 = transduce(&c1, CeId::new(1), &u1);
        let a2 = transduce(&c1, CeId::new(2), &u2);
        let lhs: std::collections::HashSet<_> = merged.iter().collect();
        let rhs: std::collections::HashSet<_> = a1.iter().chain(a2.iter()).collect();
        prop_assert_eq!(lhs, rhs);
        // And the sequence-level form: Π of the merged run is the
        // ordered union of the two projections.
        let pm: Vec<u64> = project_alerts(&merged, x()).iter().map(|s| s.get()).collect();
        let p1: Vec<u64> = project_alerts(&a1, x()).iter().map(|s| s.get()).collect();
        let p2: Vec<u64> = project_alerts(&a2, x()).iter().map(|s| s.get()).collect();
        prop_assert_eq!(pm, ordered_union(&p1, &p2));
    }

    #[test]
    fn lemma_3_fails_for_historical_conditions_sometimes(
        _dummy in 0..1u8,
    ) {
        // Sanity anchor: the commuting property is specifically
        // non-historical. The paper's Theorem-3 inputs break it for c3.
        let c3 = Conservative::new(DeltaRise::new(x(), 200.0));
        let u1 = vec![Update::new(x(), 1, 1000.0), Update::new(x(), 2, 1500.0)];
        let u2 = vec![Update::new(x(), 3, 2000.0), Update::new(x(), 4, 2500.0)];
        let merged = transduce_merged(&c3, CeId::new(0), &u1, &u2);
        let separate = transduce(&c3, CeId::new(1), &u1).len()
            + transduce(&c3, CeId::new(2), &u2).len();
        prop_assert!(merged.len() > separate); // alert@3 exists only merged
    }
}

fn conditions() -> Vec<Box<dyn Condition>> {
    vec![
        Box::new(Threshold::new(x(), Cmp::Gt, 50.0)),
        Box::new(DeltaRise::new(x(), 10.0)),
        Box::new(Conservative::new(DeltaRise::new(x(), 10.0))),
    ]
}

#[test]
fn condition_classifications_are_stable() {
    for cond in conditions() {
        let spec = cond.history_spec();
        assert_eq!(spec.len(), 1);
        assert!(spec[0].1 >= 1);
    }
}
