//! Durable Condition Evaluators: an evaluator's full state (histories,
//! counters) serializes, enabling warm restarts that — unlike the
//! paper's crash model, where in-memory histories are lost — resume
//! with no update gap at all.

use rcm_core::condition::{Conservative, DeltaRise};
use rcm_core::{Evaluator, SeqNo, Update, VarId};

fn x() -> VarId {
    VarId::new(0)
}

#[test]
fn evaluator_checkpoint_resumes_mid_history() {
    let c3 = Conservative::new(DeltaRise::new(x(), 200.0));
    let mut live = Evaluator::new(c3);
    assert!(live.ingest(Update::new(x(), 1, 1000.0)).is_none());

    // Checkpoint between the two updates of a degree-2 window.
    let snapshot = serde_json::to_string(&live).expect("evaluator serializes");
    let mut restored: Evaluator<Conservative<DeltaRise>> =
        serde_json::from_str(&snapshot).expect("evaluator restores");

    // Both continue identically: the restored one still remembers
    // update 1, so the very next reading can trigger.
    let a_live = live.ingest(Update::new(x(), 2, 1300.0));
    let a_restored = restored.ingest(Update::new(x(), 2, 1300.0));
    assert_eq!(a_live, a_restored);
    let alert = a_restored.expect("rise of 300 over consecutive readings");
    assert_eq!(alert.fingerprint.seqnos(x()).unwrap(), &[SeqNo::new(2), SeqNo::new(1)]);
}

#[test]
fn warm_restart_beats_cold_restart() {
    // A cold-restarted CE (the paper's crash model: restart()) loses
    // its window and misses the alert a warm-restarted one still emits.
    let c3 = Conservative::new(DeltaRise::new(x(), 200.0));
    let mut ce = Evaluator::new(c3);
    ce.ingest(Update::new(x(), 1, 1000.0));

    let snapshot = serde_json::to_string(&ce).unwrap();
    let mut warm: Evaluator<Conservative<DeltaRise>> = serde_json::from_str(&snapshot).unwrap();
    ce.restart(); // cold: history gone

    assert!(warm.ingest(Update::new(x(), 2, 1300.0)).is_some());
    assert!(ce.ingest(Update::new(x(), 2, 1300.0)).is_none()); // window refilling
}

#[test]
fn counters_survive_the_checkpoint() {
    let c = DeltaRise::new(x(), -1e18); // fires once defined
    let mut ce = Evaluator::new(c);
    ce.ingest(Update::new(x(), 1, 0.0));
    ce.ingest(Update::new(x(), 2, 0.0)); // alert #0
    let snapshot = serde_json::to_string(&ce).unwrap();
    let mut restored: Evaluator<DeltaRise> = serde_json::from_str(&snapshot).unwrap();
    assert_eq!(restored.alerts_emitted(), 2 - 1);
    assert_eq!(restored.updates_ingested(), 2);
    let a = restored.ingest(Update::new(x(), 3, 0.0)).unwrap();
    // Alert numbering continues without reuse.
    assert_eq!(a.id.index, 1);
}
