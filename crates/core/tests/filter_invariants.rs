//! Property-based invariants of the AD filtering algorithms over
//! arbitrary alert streams.

use proptest::prelude::*;

use rcm_core::ad::{
    apply_filter, Ad1, Ad1Digest, Ad2, Ad3, Ad4, Ad5, Ad6, AlertFilter, DelayedOrdered, LatePolicy,
};
use rcm_core::seq::{is_subsequence, project_alerts};
use rcm_core::{Alert, AlertId, CeId, CondId, HistoryFingerprint, SeqNo, VarId};

fn x() -> VarId {
    VarId::new(0)
}
fn y() -> VarId {
    VarId::new(1)
}

/// Strategy: a strictly decreasing seqno history of degree 1–3 headed
/// in `head_range`.
fn history(head_range: std::ops::Range<u64>) -> impl Strategy<Value = Vec<SeqNo>> {
    (head_range, 1usize..=3, 1u64..3, 1u64..3).prop_map(|(head, degree, g1, g2)| {
        let head = head.max(7); // room for two gaps below
        let mut seqnos = vec![head];
        if degree >= 2 {
            seqnos.push(head - g1);
        }
        if degree >= 3 {
            seqnos.push(head - g1 - g2);
        }
        seqnos.into_iter().map(SeqNo::new).collect()
    })
}

/// Strategy: a single-variable alert.
fn alert1() -> impl Strategy<Value = Alert> {
    history(7..40).prop_map(|seqnos| {
        Alert::new(
            CondId::SINGLE,
            HistoryFingerprint::single(x(), seqnos),
            vec![],
            AlertId { ce: CeId::new(0), index: 0 },
        )
    })
}

/// Strategy: a two-variable alert.
fn alert2() -> impl Strategy<Value = Alert> {
    (history(7..25), history(7..25)).prop_map(|(xs, ys)| {
        Alert::new(
            CondId::SINGLE,
            HistoryFingerprint::new(vec![(x(), xs), (y(), ys)]),
            vec![],
            AlertId { ce: CeId::new(0), index: 0 },
        )
    })
}

fn ordered(alerts: &[Alert], var: VarId) -> bool {
    let proj = project_alerts(alerts, var);
    proj.windows(2).all(|w| w[0] <= w[1])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ad2_output_always_ordered(stream in proptest::collection::vec(alert1(), 0..40)) {
        let out = apply_filter(&mut Ad2::new(x()), &stream);
        prop_assert!(ordered(&out, x()));
    }

    #[test]
    fn ad5_ad6_output_always_ordered_per_var(
        stream in proptest::collection::vec(alert2(), 0..40)
    ) {
        let out5 = apply_filter(&mut Ad5::new([x(), y()]), &stream);
        prop_assert!(ordered(&out5, x()) && ordered(&out5, y()));
        let out6 = apply_filter(&mut Ad6::new([x(), y()]), &stream);
        prop_assert!(ordered(&out6, x()) && ordered(&out6, y()));
    }

    #[test]
    fn digest_filter_is_equivalent_to_ad1(
        stream in proptest::collection::vec(alert1(), 0..40)
    ) {
        let full = apply_filter(&mut Ad1::new(), &stream);
        let digest = apply_filter(&mut Ad1Digest::new(), &stream);
        prop_assert_eq!(full, digest);
    }

    #[test]
    fn all_filters_are_idempotent(stream in proptest::collection::vec(alert1(), 0..30)) {
        // Filtering a filter's own output must pass everything through:
        // the output already satisfies the filter's invariant.
        let filters: Vec<Box<dyn AlertFilter>> = vec![
            Box::new(Ad1::new()),
            Box::new(Ad1Digest::new()),
            Box::new(Ad2::new(x())),
            Box::new(Ad3::new(x())),
            Box::new(Ad4::new(x())),
            Box::new(Ad5::new([x()])),
            Box::new(Ad6::new([x()])),
        ];
        for mut f in filters {
            let once = apply_filter(&mut *f, &stream);
            f.reset();
            let twice = apply_filter(&mut *f, &once);
            prop_assert_eq!(&once, &twice, "{} not idempotent", f.name());
        }
    }

    #[test]
    fn every_output_is_a_subsequence_of_arrivals(
        stream in proptest::collection::vec(alert1(), 0..30)
    ) {
        let filters: Vec<Box<dyn AlertFilter>> = vec![
            Box::new(Ad1::new()),
            Box::new(Ad2::new(x())),
            Box::new(Ad3::new(x())),
            Box::new(Ad4::new(x())),
        ];
        for mut f in filters {
            let out = apply_filter(&mut *f, &stream);
            prop_assert!(is_subsequence(&out, &stream), "{}", f.name());
        }
    }

    #[test]
    fn ad1_dominates_everything_on_random_streams(
        stream in proptest::collection::vec(alert1(), 0..30)
    ) {
        // Theorems 6 and 8 (and the AD-4 corollary) on arbitrary inputs.
        let base = apply_filter(&mut Ad1::new(), &stream);
        for mut f in [
            Box::new(Ad2::new(x())) as Box<dyn AlertFilter>,
            Box::new(Ad3::new(x())),
            Box::new(Ad4::new(x())),
        ] {
            let out = apply_filter(&mut *f, &stream);
            prop_assert!(is_subsequence(&out, &base), "AD-1 ≥ {} failed", f.name());
        }
    }

    #[test]
    fn ad4_output_within_both_parents_invariants(
        stream in proptest::collection::vec(alert1(), 0..30)
    ) {
        // AD-4's output must itself satisfy orderedness AND be accepted
        // in full by a fresh AD-3 (consistency closure).
        let out = apply_filter(&mut Ad4::new(x()), &stream);
        prop_assert!(ordered(&out, x()));
        let replay = apply_filter(&mut Ad3::new(x()), &out);
        prop_assert_eq!(replay.len(), out.len());
    }

    #[test]
    fn delayed_drop_policy_ordered_and_dominates_ad2_counts(
        stream in proptest::collection::vec(alert1(), 0..30),
        hold in 0usize..6,
    ) {
        let mut delayed = DelayedOrdered::new(x(), hold, LatePolicy::Drop);
        let out = delayed.display_all(&stream);
        prop_assert!(ordered(&out, x()));
        // The buffer never displays fewer alerts than AD-2 (hold 0 is
        // AD-2's drop behaviour plus duplicate suppression).
        let ad2 = apply_filter(&mut Ad2::new(x()), &stream);
        prop_assert!(out.len() + 1 >= ad2.len(), "{} + 1 < {}", out.len(), ad2.len());
    }

    #[test]
    fn filters_reset_to_initial_state(stream in proptest::collection::vec(alert1(), 1..20)) {
        let filters: Vec<Box<dyn AlertFilter>> = vec![
            Box::new(Ad1::new()),
            Box::new(Ad1Digest::new()),
            Box::new(Ad2::new(x())),
            Box::new(Ad3::new(x())),
            Box::new(Ad4::new(x())),
            Box::new(Ad5::new([x()])),
            Box::new(Ad6::new([x()])),
        ];
        for mut f in filters {
            let first = apply_filter(&mut *f, &stream);
            f.reset();
            let second = apply_filter(&mut *f, &stream);
            prop_assert_eq!(&first, &second, "{} reset incomplete", f.name());
        }
    }
}
