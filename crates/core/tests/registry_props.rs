//! Property-based equivalence pins for the multi-condition engine:
//!
//! 1. Incremental expression re-evaluation ([`IncrementalExpr`] via
//!    `CompiledCondition::incremental`) equals fresh full evaluation for
//!    random well-typed expressions × random update streams, including
//!    seqno gaps, stale duplicates, and `consecutive(...)` guards.
//! 2. [`ConditionRegistry`] — batched and one-at-a-time — produces
//!    byte-identical alert sequences (fingerprints, snapshots, and
//!    per-condition `AlertId` numbering) to a loop of independent
//!    [`Evaluator`]s over the same stream.

use proptest::prelude::*;

use rcm_core::condition::expr::{AggOp, BinOp, CompiledCondition, Expr, Field, UnOp};
use rcm_core::condition::{Condition, ConditionExt};
use rcm_core::{
    CeId, CondId, ConditionRegistry, Evaluator, HistorySet, Update, VarId, VarRegistry,
};

const VARS: [&str; 2] = ["a", "b"];

fn var_name() -> impl Strategy<Value = String> {
    prop_oneof![Just(VARS[0].to_owned()), Just(VARS[1].to_owned())]
}

/// Numeric-typed expression trees (leaves mention variables often
/// enough that whole conditions rarely end up variable-free).
fn num_expr() -> impl Strategy<Value = Expr<String>> {
    let leaf = prop_oneof![
        1 => (0..100u32).prop_map(|n| Expr::Num(f64::from(n))),
        3 => (var_name(), 0i64..3, prop_oneof![Just(Field::Value), Just(Field::Seqno)])
            .prop_map(|(var, i, field)| Expr::Term { var, index: -i, field }),
        1 => (
            prop_oneof![Just(AggOp::Min), Just(AggOp::Max), Just(AggOp::Avg), Just(AggOp::Sum)],
            var_name(),
            1u64..4,
        )
            .prop_map(|(op, var, window)| Expr::Agg { op, var, window }),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul), Just(BinOp::Div)]
            )
                .prop_map(|(l, r, op)| Expr::Binary {
                    op,
                    lhs: Box::new(l),
                    rhs: Box::new(r)
                }),
            inner.clone().prop_map(|e| Expr::Unary { op: UnOp::Neg, expr: Box::new(e) }),
            inner.clone().prop_map(|e| Expr::Abs(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Max(Box::new(a), Box::new(b))),
        ]
    })
}

/// Boolean-typed expression trees: comparisons over numeric subtrees,
/// `consecutive(...)` guards, and logical combinators — the shape the
/// type checker accepts, generated directly.
fn bool_expr() -> impl Strategy<Value = Expr<String>> {
    let leaf = prop_oneof![
        4 => (
            num_expr(),
            num_expr(),
            prop_oneof![
                Just(BinOp::Lt),
                Just(BinOp::Le),
                Just(BinOp::Gt),
                Just(BinOp::Ge),
                Just(BinOp::Eq),
                Just(BinOp::Ne),
            ]
        )
            .prop_map(|(l, r, op)| Expr::Binary { op, lhs: Box::new(l), rhs: Box::new(r) }),
        2 => var_name().prop_map(Expr::Consecutive),
        1 => any::<bool>().prop_map(Expr::Bool),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![Just(BinOp::And), Just(BinOp::Or)])
                .prop_map(|(l, r, op)| Expr::Binary { op, lhs: Box::new(l), rhs: Box::new(r) }),
            inner.prop_map(|e| Expr::Unary { op: UnOp::Not, expr: Box::new(e) }),
        ]
    })
}

/// A random well-typed condition, compiled against `vars`. `None` when
/// the generated tree mentions no variable (rejected by `compile`).
fn compile(ast: &Expr<String>, vars: &mut VarRegistry) -> Option<CompiledCondition> {
    CompiledCondition::compile(&ast.to_string(), vars).ok()
}

/// Update stream steps: which variable, how far its seqno advances
/// (0 ⇒ stale duplicate, ≥2 ⇒ gap), and the value.
fn stream() -> impl Strategy<Value = Vec<(usize, u64, f64)>> {
    prop::collection::vec((0..VARS.len(), 0u64..4, -50.0f64..50.0), 0..40)
}

/// Materializes stream steps into updates with per-variable running
/// seqnos (starting at 1).
fn updates(steps: &[(usize, u64, f64)], ids: &[VarId]) -> Vec<Update> {
    let mut next: Vec<u64> = vec![1; ids.len()];
    let mut out = Vec::with_capacity(steps.len());
    for &(v, gap, value) in steps {
        // gap 0 re-sends the previous seqno (stale); otherwise the
        // seqno jumps by `gap` (1 = consecutive, ≥2 = loss gap).
        let seqno = if gap == 0 { next[v].saturating_sub(1).max(1) } else { next[v] + gap - 1 };
        next[v] = next[v].max(seqno + 1);
        out.push(Update::new(ids[v], seqno, value));
    }
    out
}

/// Registers the canonical variable names in generation order so every
/// compiled condition shares ids.
fn canonical_vars(vars: &mut VarRegistry) -> Vec<VarId> {
    VARS.iter().map(|n| vars.register(n)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Incremental eval with per-variable invalidation equals fresh
    /// full eval after every accepted push.
    #[test]
    fn incremental_matches_full_eval(ast in bool_expr(), steps in stream()) {
        let mut vars = VarRegistry::new();
        let ids = canonical_vars(&mut vars);
        let Some(cond) = compile(&ast, &mut vars) else { return Ok(()) };
        let mut h = HistorySet::new(cond.history_spec());
        let mut inc = cond.incremental();
        for u in updates(&steps, &ids) {
            if !cond.variables().contains(&u.var) {
                continue;
            }
            if h.push(u).is_ok() {
                inc.invalidate(u.var);
            }
            prop_assert_eq!(inc.eval(&h), cond.eval(&h), "diverged on {} after {:?}", cond.source(), u);
            // Warm-cache re-evaluation must agree too.
            prop_assert_eq!(inc.eval(&h), cond.eval(&h));
        }
    }

    /// The registry (batched and one-at-a-time) is byte-identical to a
    /// loop of independent evaluators fed the per-condition projection
    /// of the stream.
    #[test]
    fn registry_matches_independent_evaluators(
        asts in prop::collection::vec(bool_expr(), 1..6),
        steps in stream(),
    ) {
        let mut vars = VarRegistry::new();
        let ids = canonical_vars(&mut vars);
        let conds: Vec<CompiledCondition> =
            asts.iter().filter_map(|a| compile(a, &mut vars)).collect();
        if conds.is_empty() {
            return Ok(());
        }
        let ce = CeId::new(7);

        let mut batched = ConditionRegistry::new(ce);
        let mut stepped = ConditionRegistry::new(ce);
        let mut evaluators: Vec<Evaluator<CompiledCondition>> = Vec::new();
        for (i, c) in conds.iter().enumerate() {
            batched.add_compiled(c.clone());
            stepped.add_compiled(c.clone());
            evaluators.push(Evaluator::with_ids(c.clone(), CondId::new(i as u32), ce));
        }

        let stream = updates(&steps, &ids);

        let mut from_batch = Vec::new();
        batched.ingest_batch(&stream, &mut from_batch);

        let mut from_steps = Vec::new();
        for &u in &stream {
            stepped.ingest(u, &mut from_steps);
        }

        let mut want = Vec::new();
        for &u in &stream {
            for (ci, ev) in evaluators.iter_mut().enumerate() {
                if conds[ci].variables().contains(&u.var) {
                    if let Ok(Some(a)) = ev.try_ingest(u) {
                        want.push(a);
                    }
                }
            }
        }

        prop_assert_eq!(from_batch.len(), want.len());
        for (g, w) in from_batch.iter().zip(&want) {
            prop_assert_eq!(g, w); // paper identity: cond + fingerprint
            prop_assert_eq!(g.id, w.id); // provenance numbering
            prop_assert_eq!(&g.snapshot[..], &w.snapshot[..]); // payload bytes
        }
        prop_assert_eq!(&from_batch, &from_steps);
        for (g, w) in from_batch.iter().zip(&from_steps) {
            prop_assert_eq!(g.id, w.id);
            prop_assert_eq!(&g.snapshot[..], &w.snapshot[..]);
        }
        prop_assert_eq!(batched.stats(), stepped.stats());
    }

    /// Restarting the registry mid-stream matches restarting every
    /// independent evaluator at the same point (histories lost, alert
    /// numbering preserved per condition).
    #[test]
    fn registry_restart_matches_evaluator_restarts(
        asts in prop::collection::vec(bool_expr(), 1..4),
        before in stream(),
        after in stream(),
    ) {
        let mut vars = VarRegistry::new();
        let ids = canonical_vars(&mut vars);
        let conds: Vec<CompiledCondition> =
            asts.iter().filter_map(|a| compile(a, &mut vars)).collect();
        if conds.is_empty() {
            return Ok(());
        }
        let ce = CeId::new(0);
        let mut reg = ConditionRegistry::new(ce);
        let mut evaluators: Vec<Evaluator<CompiledCondition>> = Vec::new();
        for (i, c) in conds.iter().enumerate() {
            reg.add_compiled(c.clone());
            evaluators.push(Evaluator::with_ids(c.clone(), CondId::new(i as u32), ce));
        }

        // `after` continues each variable's seqnos past `before`'s
        // (restart must tolerate the in-flight cursor, like a real CE).
        let mut all = before.clone();
        all.extend(after.iter().copied());
        let all = updates(&all, &ids);
        let (first, second) = all.split_at(updates(&before, &ids).len());

        let mut got = Vec::new();
        reg.ingest_batch(first, &mut got);
        reg.restart();
        reg.ingest_batch(second, &mut got);

        let mut want = Vec::new();
        let run = |stream: &[Update], evaluators: &mut Vec<Evaluator<CompiledCondition>>,
                       want: &mut Vec<rcm_core::Alert>| {
            for &u in stream {
                for (ci, ev) in evaluators.iter_mut().enumerate() {
                    if conds[ci].variables().contains(&u.var) {
                        if let Ok(Some(a)) = ev.try_ingest(u) {
                            want.push(a);
                        }
                    }
                }
            }
        };
        run(first, &mut evaluators, &mut want);
        for ev in &mut evaluators {
            ev.restart();
        }
        run(second, &mut evaluators, &mut want);

        prop_assert_eq!(&got, &want);
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.id, w.id);
        }
    }
}
