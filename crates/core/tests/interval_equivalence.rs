//! Property tests pinning the interval-backed consistency bookkeeping
//! ([`VarConsistency`]) to the retained BTreeSet reference
//! ([`BTreeConsistency`]): across randomized alert streams, every
//! consistency-bearing AD algorithm must make identical
//! deliver/discard decisions with either representation, and the
//! stateless-wrt-consistency algorithms must stay deterministic.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rcm_core::ad::{
    Ad1, Ad2, Ad3, Ad3Multi, Ad4, Ad5, Ad6, AlertFilter, BTreeConsistency, ConsistencyState,
    Decision, VarConsistency,
};
use rcm_core::{Alert, AlertId, CeId, CondId, HistoryFingerprint, SeqNo, VarId};

/// Newest-first strictly decreasing seqnos, degree 1–3, with gaps of
/// 1–3 between adjacent entries (a gap of 1 means consecutive).
fn history_strategy() -> impl Strategy<Value = Vec<u64>> {
    (1u64..40, proptest::collection::vec(1u64..=3, 0..=2)).prop_map(|(newest_off, gaps)| {
        let newest = 10 + newest_off + gaps.iter().sum::<u64>();
        let mut seqnos = vec![newest];
        let mut cur = newest;
        for g in gaps {
            cur -= g;
            seqnos.push(cur);
        }
        seqnos
    })
}

/// A stream of alerts over variables `v0..v{nv}`, every alert carrying
/// a history for every variable.
fn alerts_strategy(nv: usize) -> impl Strategy<Value = Vec<Alert>> {
    proptest::collection::vec(proptest::collection::vec(history_strategy(), nv..=nv), 1..20)
        .prop_map(|alerts| {
            alerts
                .into_iter()
                .enumerate()
                .map(|(i, histories)| {
                    let entries = histories
                        .into_iter()
                        .enumerate()
                        .map(|(v, seqnos)| {
                            (
                                VarId::new(v as u32),
                                seqnos.into_iter().map(SeqNo::new).collect::<Vec<_>>(),
                            )
                        })
                        .collect();
                    Alert::new(
                        CondId::SINGLE,
                        HistoryFingerprint::new(entries),
                        vec![],
                        AlertId { ce: CeId::new(0), index: i as u64 },
                    )
                })
                .collect()
        })
}

fn run_filter<F: AlertFilter>(f: &mut F, alerts: &[Alert]) -> Vec<Decision> {
    alerts.iter().map(|a| f.offer(a)).collect()
}

fn check_pair<A: AlertFilter, B: AlertFilter>(
    mut fast: A,
    mut reference: B,
    alerts: &[Alert],
) -> Result<(), TestCaseError> {
    for (i, a) in alerts.iter().enumerate() {
        prop_assert_eq!(fast.offer(a), reference.offer(a), "alert #{} {}", i, a);
    }
    Ok(())
}

proptest! {
    /// The tentpole equivalence: AD-3, AD-4, AD-6 and AD-3/multi decide
    /// identically with interval and BTreeSet bookkeeping, on streams
    /// over 1–3 variables.
    #[test]
    fn consistency_filters_agree_with_reference(
        (nv, alerts) in (1usize..=3).prop_flat_map(|nv| (Just(nv), alerts_strategy(nv)))
    ) {
        let vars: Vec<VarId> = (0..nv as u32).map(VarId::new).collect();
        check_pair(
            Ad3::new(vars[0]),
            Ad3::<BTreeConsistency>::with_state(vars[0]),
            &alerts,
        )?;
        check_pair(
            Ad4::new(vars[0]),
            Ad4::<BTreeConsistency>::with_state(vars[0]),
            &alerts,
        )?;
        check_pair(
            Ad6::new(vars.clone()),
            Ad6::<BTreeConsistency>::with_state(vars.clone()),
            &alerts,
        )?;
        check_pair(
            Ad3Multi::new(vars.clone()),
            Ad3Multi::<BTreeConsistency>::with_state(vars.clone()),
            &alerts,
        )?;
    }

    /// The consistency-free algorithms (AD-1, AD-2, AD-5) have a single
    /// implementation; pin their determinism on the same streams so all
    /// six algorithms are exercised by this suite.
    #[test]
    fn stateless_filters_are_deterministic(
        (nv, alerts) in (1usize..=3).prop_flat_map(|nv| (Just(nv), alerts_strategy(nv)))
    ) {
        let vars: Vec<VarId> = (0..nv as u32).map(VarId::new).collect();
        prop_assert_eq!(
            run_filter(&mut Ad1::new(), &alerts),
            run_filter(&mut Ad1::new(), &alerts)
        );
        prop_assert_eq!(
            run_filter(&mut Ad2::new(vars[0]), &alerts),
            run_filter(&mut Ad2::new(vars[0]), &alerts)
        );
        prop_assert_eq!(
            run_filter(&mut Ad5::new(vars.clone()), &alerts),
            run_filter(&mut Ad5::new(vars.clone()), &alerts)
        );
    }

    /// State-machine-level equivalence: after every committed history,
    /// the two representations expose the same `Received` witness and
    /// agree on `Conflicts` for the next history — mirroring exactly how
    /// the filters drive the state (record only on no-conflict).
    #[test]
    fn consistency_state_machines_agree(
        histories in proptest::collection::vec(history_strategy(), 1..30)
    ) {
        let mut fast = VarConsistency::default();
        let mut reference = BTreeConsistency::default();
        for h in &histories {
            let seqnos: Vec<SeqNo> = h.iter().copied().map(SeqNo::new).collect();
            let c_fast = fast.conflicts(&seqnos);
            let c_ref = reference.conflicts(&seqnos);
            prop_assert_eq!(c_fast, c_ref, "conflicts diverged on {:?}", h);
            if !c_fast {
                fast.record(&seqnos);
                reference.record(&seqnos);
            }
            prop_assert_eq!(
                fast.received().collect::<Vec<_>>(),
                reference.received().collect::<Vec<_>>()
            );
        }
        fast.clear();
        reference.clear();
        prop_assert_eq!(fast.received().count(), 0);
        prop_assert_eq!(reference.received().count(), 0);
    }
}
