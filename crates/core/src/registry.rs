//! The multi-condition engine: one [`ConditionRegistry`] hosts many
//! conditions over a single update stream.
//!
//! The paper's Condition Evaluator pairs one condition with one
//! [`Evaluator`](crate::Evaluator). At scale a CE hosts thousands of
//! conditions, and two costs dominate a naive loop of evaluators:
//! offering every update to every condition, and re-computing whole
//! expressions whose inputs did not change. The registry removes both:
//!
//! * a **variable → condition inverted index**, built from each
//!   condition's variable set, so an arriving `u(x, s, v)` touches only
//!   the conditions that mention `x`;
//! * **incremental re-evaluation** for compiled conditions
//!   ([`IncrementalExpr`]): per-node result caches with dirty bits
//!   keyed by the updated variable, so unaffected subtrees are never
//!   re-visited.
//!
//! Per condition the registry is *observationally identical* to an
//! independent [`Evaluator`](crate::Evaluator) fed the projection of
//! the stream onto that condition's variables — same alerts, same
//! fingerprints, same per-condition `AlertId` numbering, same stale
//! handling (a property test pins this byte-for-byte). Per update,
//! alerts are emitted in ascending registration order; registering
//! conditions in ascending [`CondId`] order (as [`ConditionRegistry::add`]
//! does) therefore yields ascending-`CondId` emission, which is what the
//! sharded wrapper in `rcm-sim` relies on to merge shard outputs
//! bit-identically to an unsharded registry.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::alert::{Alert, AlertId, CeId, CondId};
use crate::condition::expr::{CompiledCondition, IncrementalExpr};
use crate::condition::{Condition, ConditionExt, DynCondition};
use crate::error::Error;
use crate::history::HistorySet;
use crate::update::Update;
use crate::var::VarId;

/// One hosted condition: its evaluator state plus per-condition
/// counters mirroring [`Evaluator`](crate::Evaluator)'s.
#[derive(Debug)]
struct Entry {
    cond_id: CondId,
    cond: DynCondition,
    /// Memoizing evaluator for compiled conditions; `None` falls back
    /// to full `Condition::eval` per arrival.
    incremental: Option<IncrementalExpr>,
    histories: HistorySet,
    emitted: u64,
    ingested: u64,
    dropped_stale: u64,
}

impl Entry {
    /// Offers one update to this condition; mirrors
    /// `Evaluator::try_ingest` exactly (the equivalence proptest pins
    /// this): push → stale drop → count → defined && eval → alert with
    /// the per-condition emission index.
    fn offer(&mut self, update: Update, ce: CeId) -> Option<Alert> {
        match self.histories.push(update) {
            Ok(()) => {}
            Err(Error::OutOfOrderUpdate { .. }) => {
                self.dropped_stale += 1;
                return None;
            }
            // The inverted index routes only subscribed variables, so
            // `UnknownVariable` cannot happen here.
            Err(e) => unreachable!("registry routed an unsubscribed update: {e}"),
        }
        self.ingested += 1;
        if let Some(inc) = &mut self.incremental {
            inc.invalidate(update.var);
        }
        if !self.histories.is_defined() {
            return None;
        }
        let satisfied = match &mut self.incremental {
            Some(inc) => inc.eval(&self.histories),
            None => self.cond.eval(&self.histories),
        };
        if !satisfied {
            return None;
        }
        let alert = Alert::new(
            self.cond_id,
            self.histories.fingerprint(),
            self.histories.snapshot(),
            AlertId { ce, index: self.emitted },
        );
        self.emitted += 1;
        Some(alert)
    }
}

/// Aggregate ingestion counters for a registry (sums over all hosted
/// conditions, plus stream-level routing stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Updates incorporated into at least zero histories — i.e. offers
    /// accepted (one update fanned out to `k` conditions counts `k`).
    pub ingested: u64,
    /// Stale offers discarded (per condition, summed).
    pub dropped_stale: u64,
    /// Alerts emitted (all conditions).
    pub emitted: u64,
    /// Stream updates whose variable no hosted condition mentions.
    pub unrouted: u64,
}

/// A set of conditions evaluated together over one update stream.
///
/// ```rust
/// use rcm_core::condition::expr::CompiledCondition;
/// use rcm_core::{CeId, ConditionRegistry, Update, VarRegistry};
///
/// let mut vars = VarRegistry::new();
/// let mut reg = ConditionRegistry::new(CeId::new(0));
/// reg.add_compiled(CompiledCondition::compile("x[0].value > 10", &mut vars)?);
/// reg.add_compiled(CompiledCondition::compile("x[0].value > 20 && y[0].value > 0", &mut vars)?);
///
/// let x = vars.lookup("x").unwrap();
/// let mut alerts = Vec::new();
/// reg.ingest(Update::new(x, 1, 15.0), &mut alerts);
/// assert_eq!(alerts.len(), 1); // first condition fires, second undefined
/// # Ok::<(), rcm_core::Error>(())
/// ```
#[derive(Debug)]
pub struct ConditionRegistry {
    ce: CeId,
    entries: Vec<Entry>,
    /// Variable → indices into `entries`, ascending (registration
    /// order), for conditions mentioning that variable.
    index: BTreeMap<VarId, Vec<u32>>,
    unrouted: u64,
}

impl ConditionRegistry {
    /// Creates an empty registry for replica `ce`.
    pub fn new(ce: CeId) -> Self {
        ConditionRegistry { ce, entries: Vec::new(), index: BTreeMap::new(), unrouted: 0 }
    }

    /// Registers a condition under the next sequential [`CondId`]
    /// (`0, 1, 2, …` — matching registration order) and returns it.
    /// Evaluation uses full `Condition::eval` per arrival.
    pub fn add(&mut self, cond: DynCondition) -> CondId {
        let id = CondId::new(self.entries.len() as u32);
        self.insert(id, cond);
        id
    }

    /// Registers a compiled condition under the next sequential
    /// [`CondId`] with incremental re-evaluation enabled.
    pub fn add_compiled(&mut self, cond: CompiledCondition) -> CondId {
        let id = CondId::new(self.entries.len() as u32);
        self.insert_compiled(id, cond);
        id
    }

    /// Registers a condition under an explicit id (used by sharded
    /// deployments, where each shard hosts a subset of a global id
    /// space).
    ///
    /// # Panics
    ///
    /// Panics if `cond_id` is already registered here.
    pub fn insert(&mut self, cond_id: CondId, cond: DynCondition) {
        let incremental = None;
        self.insert_entry(cond_id, cond, incremental);
    }

    /// Registers a compiled condition under an explicit id with
    /// incremental re-evaluation enabled.
    ///
    /// # Panics
    ///
    /// Panics if `cond_id` is already registered here.
    pub fn insert_compiled(&mut self, cond_id: CondId, cond: CompiledCondition) {
        let incremental = Some(cond.incremental());
        self.insert_entry(cond_id, Arc::new(cond), incremental);
    }

    fn insert_entry(
        &mut self,
        cond_id: CondId,
        cond: DynCondition,
        incremental: Option<IncrementalExpr>,
    ) {
        assert!(
            self.entries.iter().all(|e| e.cond_id != cond_id),
            "condition id {cond_id} already registered"
        );
        assert!(
            u32::try_from(self.entries.len()).is_ok(),
            "condition table full: {} entries",
            self.entries.len()
        );
        let slot = self.entries.len() as u32;
        for var in cond.variables() {
            self.index.entry(var).or_default().push(slot);
        }
        let histories = HistorySet::new(cond.history_spec());
        self.entries.push(Entry {
            cond_id,
            cond,
            incremental,
            histories,
            emitted: 0,
            ingested: 0,
            dropped_stale: 0,
        });
    }

    /// Number of hosted conditions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no conditions are hosted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// This registry's replica id (stamped into emitted alerts).
    pub fn ce_id(&self) -> CeId {
        self.ce
    }

    /// The hosted condition ids in registration order.
    pub fn condition_ids(&self) -> impl Iterator<Item = CondId> + '_ {
        self.entries.iter().map(|e| e.cond_id)
    }

    /// The union of all hosted conditions' variable sets, ascending.
    pub fn variables(&self) -> impl Iterator<Item = VarId> + '_ {
        self.index.keys().copied()
    }

    /// Alerts emitted so far for `cond_id` (its next `AlertId::index`).
    pub fn alerts_emitted(&self, cond_id: CondId) -> Option<u64> {
        self.entries.iter().find(|e| e.cond_id == cond_id).map(|e| e.emitted)
    }

    /// Aggregate counters over all hosted conditions.
    pub fn stats(&self) -> RegistryStats {
        let mut s = RegistryStats { unrouted: self.unrouted, ..RegistryStats::default() };
        for e in &self.entries {
            s.ingested += e.ingested;
            s.dropped_stale += e.dropped_stale;
            s.emitted += e.emitted;
        }
        s
    }

    /// Offers one update to every condition mentioning its variable
    /// (ascending registration order), appending any alerts to `out`.
    ///
    /// Updates for variables no condition mentions are counted in
    /// [`RegistryStats::unrouted`] and otherwise ignored — a registry
    /// subscribes to the union of its conditions' variable sets, so an
    /// unrouted update is stream-level noise, not a per-condition
    /// wiring bug.
    pub fn ingest(&mut self, update: Update, out: &mut Vec<Alert>) {
        self.ingest_all(std::slice::from_ref(&update), |_, a| out.push(a));
    }

    /// Ingests a burst of updates in order, appending alerts to `out`.
    ///
    /// Exactly equivalent to calling [`ConditionRegistry::ingest`] per
    /// update (the proptest pins this); the batch entry point amortizes
    /// the per-call bookkeeping — in particular, consecutive updates
    /// for the same variable reuse one inverted-index lookup.
    pub fn ingest_batch(&mut self, updates: &[Update], out: &mut Vec<Alert>) {
        self.ingest_all(updates, |_, a| out.push(a));
    }

    /// Like [`ConditionRegistry::ingest_batch`] but tags each alert
    /// with the index of the update (within `updates`) that produced
    /// it. Shards merge on this tag to reconstruct the exact unsharded
    /// emission order.
    pub fn ingest_batch_tagged(&mut self, updates: &[Update], out: &mut Vec<(u64, Alert)>) {
        self.ingest_all(updates, |i, a| out.push((i, a)));
    }

    /// The single ingestion loop behind every public entry point, so
    /// batched, one-at-a-time, and tagged ingestion cannot diverge.
    fn ingest_all(&mut self, updates: &[Update], mut emit: impl FnMut(u64, Alert)) {
        let ce = self.ce;
        // Split borrows: the index is read-only while entries mutate.
        let index = &self.index;
        let entries = &mut self.entries;
        let mut cached: Option<(VarId, &[u32])> = None;
        for (i, &update) in updates.iter().enumerate() {
            let routed = match cached {
                Some((var, slots)) if var == update.var => slots,
                _ => match index.get(&update.var) {
                    Some(slots) => {
                        cached = Some((update.var, slots));
                        slots
                    }
                    None => {
                        self.unrouted += 1;
                        continue;
                    }
                },
            };
            for &slot in routed {
                // analyze: allow(hot-path): slots come from the routing table, which is
                // analyze: allow(hot-path): rebuilt against this entries vec on registration
                if let Some(alert) = entries[slot as usize].offer(update, ce) {
                    emit(i as u64, alert);
                }
            }
        }
    }

    /// Simulates a crash-restart of the hosting CE: every condition's
    /// in-memory histories (and incremental caches) are lost; alert
    /// numbering continues, per condition, exactly like
    /// [`Evaluator::restart`](crate::Evaluator::restart).
    pub fn restart(&mut self) {
        for e in &mut self.entries {
            e.histories.clear();
            if let Some(inc) = &mut e.incremental {
                inc.invalidate_all();
            }
        }
    }
}

/// The registry's shard-slice seam: one condition set partitioned over
/// `n` disjoint per-shard registries by `cond_id % n`, keeping the
/// *global* id space, plus the deterministic merges that reconstruct
/// the unsharded emission order.
///
/// Two engines build on this seam and must agree exactly:
/// `rcm_sim::shard::ShardedRegistry` (batch parallelism on the sim's
/// deterministic thread harness) and the runtime's evaluation pipeline
/// (streaming shard workers behind SPSC rings). The determinism
/// argument is the same for both: the unsharded registry emits, per
/// update, in ascending condition-id order; every shard preserves the
/// stream order of updates it is fed and tags (or groups) alerts by
/// producing update, so sorting by `(update index, condition id)` — a
/// unique key, since a condition emits at most one alert per update —
/// reconstructs exactly the unsharded stream.
#[derive(Debug)]
pub struct ShardSlices {
    shards: Vec<ConditionRegistry>,
    conditions: usize,
}

impl ShardSlices {
    /// Creates `shards` empty slices for replica `ce`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(ce: CeId, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardSlices {
            shards: (0..shards).map(|_| ConditionRegistry::new(ce)).collect(),
            conditions: 0,
        }
    }

    /// The shard that owns `cond_id` (`id % shard_count`).
    pub fn shard_of(&self, cond_id: CondId) -> usize {
        // analyze: allow(hot-path): the constructor asserts shards >= 1
        cond_id.index() as usize % self.shards.len()
    }

    /// Registers a condition under its global id on the owning shard.
    ///
    /// # Panics
    ///
    /// Panics if `cond_id` is already registered.
    pub fn insert(&mut self, cond_id: CondId, cond: DynCondition) {
        let s = self.shard_of(cond_id);
        // analyze: allow(hot-path): shard_of returns id % len, in range.
        self.shards[s].insert(cond_id, cond);
        self.conditions += 1;
    }

    /// Registers a compiled condition (incremental re-evaluation) under
    /// its global id on the owning shard.
    ///
    /// # Panics
    ///
    /// Panics if `cond_id` is already registered.
    pub fn insert_compiled(&mut self, cond_id: CondId, cond: CompiledCondition) {
        let s = self.shard_of(cond_id);
        // analyze: allow(hot-path): shard_of returns id % len, in range.
        self.shards[s].insert_compiled(cond_id, cond);
        self.conditions += 1;
    }

    /// Number of hosted conditions across all shards.
    pub fn len(&self) -> usize {
        self.conditions
    }

    /// Whether no conditions are hosted.
    pub fn is_empty(&self) -> bool {
        self.conditions == 0
    }

    /// Number of shard slices.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to the per-shard registries (for stats).
    pub fn shards(&self) -> &[ConditionRegistry] {
        &self.shards
    }

    /// Mutable access to the per-shard registries, for engines that
    /// evaluate shards in place (the sim's batch harness).
    pub fn shards_mut(&mut self) -> &mut [ConditionRegistry] {
        &mut self.shards
    }

    /// Surrenders the slices to an engine that gives each shard its own
    /// worker thread (the runtime's evaluation pipeline). Shard `s`
    /// owns every condition with `id % shard_count == s`.
    pub fn into_shards(self) -> Vec<ConditionRegistry> {
        self.shards
    }

    /// Crash-restart across every shard: histories and incremental
    /// caches are lost, per-condition alert numbering survives.
    pub fn restart(&mut self) {
        for s in &mut self.shards {
            s.restart();
        }
    }

    /// Aggregate counters summed over shards.
    ///
    /// `ingested`, `dropped_stale` and `emitted` match the unsharded
    /// registry's exactly. `unrouted` does not: each shard counts an
    /// update unrouted when *its own* conditions ignore the variable,
    /// so one stream-level stray counts once per shard.
    pub fn stats(&self) -> RegistryStats {
        let mut sum = RegistryStats::default();
        for s in &self.shards {
            let st = s.stats();
            sum.ingested += st.ingested;
            sum.dropped_stale += st.dropped_stale;
            sum.emitted += st.emitted;
            sum.unrouted += st.unrouted;
        }
        sum
    }

    /// Merges per-shard tagged outputs (from
    /// [`ConditionRegistry::ingest_batch_tagged`] over the *same* update
    /// batch) into the exact unsharded emission order, appending to
    /// `out`.
    pub fn merge_tagged(parts: impl IntoIterator<Item = Vec<(u64, Alert)>>, out: &mut Vec<Alert>) {
        let mut merged: Vec<(u64, Alert)> = parts.into_iter().flatten().collect();
        // A condition emits at most one alert per update, so the key is
        // unique and `sort_unstable` is deterministic.
        merged.sort_unstable_by_key(|(i, a)| (*i, a.cond.index()));
        out.extend(merged.into_iter().map(|(_, a)| a));
    }

    /// Orders the alerts that one update produced across all shards
    /// (the streaming sequencer's per-update merge): ascending
    /// condition id, which is the unsharded registry's emission order
    /// within an update.
    pub fn merge_same_update(alerts: &mut [Alert]) {
        alerts.sort_unstable_by_key(|a| a.cond.index());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Cmp, Threshold};
    use crate::evaluator::Evaluator;
    use crate::var::VarRegistry;

    fn compiled(src: &str, vars: &mut VarRegistry) -> CompiledCondition {
        CompiledCondition::compile(src, vars).unwrap()
    }

    #[test]
    fn routes_only_subscribed_conditions() {
        let mut vars = VarRegistry::new();
        let mut reg = ConditionRegistry::new(CeId::new(0));
        let cx = reg.add_compiled(compiled("x[0].value > 0", &mut vars));
        let cy = reg.add_compiled(compiled("y[0].value > 0", &mut vars));
        assert_eq!((cx, cy), (CondId::new(0), CondId::new(1)));
        let (x, y) = (vars.lookup("x").unwrap(), vars.lookup("y").unwrap());

        let mut out = Vec::new();
        reg.ingest(Update::new(x, 1, 1.0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cond, cx);
        // y's condition saw nothing: still zero ingested for it.
        reg.ingest(Update::new(y, 1, 1.0), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].cond, cy);
        let stats = reg.stats();
        assert_eq!(stats.ingested, 2);
        assert_eq!(stats.emitted, 2);
        assert_eq!(stats.unrouted, 0);
    }

    #[test]
    fn unrouted_updates_are_counted_not_fatal() {
        let mut vars = VarRegistry::new();
        let mut reg = ConditionRegistry::new(CeId::new(0));
        reg.add_compiled(compiled("x[0].value > 0", &mut vars));
        let mut out = Vec::new();
        reg.ingest(Update::new(VarId::new(99), 1, 1.0), &mut out);
        assert!(out.is_empty());
        assert_eq!(reg.stats().unrouted, 1);
    }

    #[test]
    fn per_update_emission_order_is_registration_order() {
        let mut vars = VarRegistry::new();
        let mut reg = ConditionRegistry::new(CeId::new(0));
        let a = reg.add_compiled(compiled("x[0].value > 0", &mut vars));
        let b = reg.add_compiled(compiled("x[0].value > -1", &mut vars));
        let x = vars.lookup("x").unwrap();
        let mut out = Vec::new();
        reg.ingest(Update::new(x, 1, 1.0), &mut out);
        assert_eq!(out.iter().map(|al| al.cond).collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn matches_independent_evaluators() {
        let mut vars = VarRegistry::new();
        let sources =
            ["x[0].value > 5", "x[0].value - x[-1].value > 2 && consecutive(x)", "y[0].value < 0"];
        let mut reg = ConditionRegistry::new(CeId::new(3));
        let conds: Vec<CompiledCondition> =
            sources.iter().map(|s| compiled(s, &mut vars)).collect();
        for c in &conds {
            reg.add_compiled(c.clone());
        }
        let mut evs: Vec<Evaluator<CompiledCondition>> = conds
            .iter()
            .enumerate()
            .map(|(i, c)| Evaluator::with_ids(c.clone(), CondId::new(i as u32), CeId::new(3)))
            .collect();

        let (x, y) = (vars.lookup("x").unwrap(), vars.lookup("y").unwrap());
        let stream = [
            Update::new(x, 1, 4.0),
            Update::new(y, 1, -1.0),
            Update::new(x, 2, 7.0),
            Update::new(x, 2, 7.0), // stale duplicate
            Update::new(x, 4, 11.0),
            Update::new(y, 2, 3.0),
            Update::new(x, 5, 14.0),
        ];
        let mut got = Vec::new();
        reg.ingest_batch(&stream, &mut got);

        let mut want = Vec::new();
        for &u in &stream {
            for (ci, ev) in evs.iter_mut().enumerate() {
                if conds[ci].variables().contains(&u.var) {
                    if let Ok(Some(a)) = ev.try_ingest(u) {
                        want.push(a);
                    }
                }
            }
        }
        assert_eq!(got, want);
        // Byte-identical provenance, not just paper identity.
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.id, w.id);
            assert_eq!(g.snapshot[..], w.snapshot[..]);
        }
    }

    #[test]
    fn batch_equals_one_at_a_time() {
        let mut vars = VarRegistry::new();
        let mut batched = ConditionRegistry::new(CeId::new(0));
        let mut stepped = ConditionRegistry::new(CeId::new(0));
        for reg in [&mut batched, &mut stepped] {
            let mut v = VarRegistry::new();
            reg.add_compiled(compiled("x[0].value > 0 && consecutive(x)", &mut v));
            reg.add_compiled(compiled("x[0].value + y[0].value > 3", &mut v));
        }
        let (x, y) = (vars.register("x"), vars.register("y"));
        let stream = [
            Update::new(x, 1, 1.0),
            Update::new(x, 3, 2.0),
            Update::new(y, 1, 2.0),
            Update::new(x, 4, 2.0),
        ];
        let mut a = Vec::new();
        batched.ingest_batch(&stream, &mut a);
        let mut b = Vec::new();
        for &u in &stream {
            stepped.ingest(u, &mut b);
        }
        assert_eq!(a, b);
        assert_eq!(batched.stats(), stepped.stats());
    }

    #[test]
    fn restart_clears_state_keeps_numbering() {
        let mut vars = VarRegistry::new();
        let mut reg = ConditionRegistry::new(CeId::new(0));
        let c = reg.add_compiled(compiled("x[0].value > 0", &mut vars));
        let x = vars.lookup("x").unwrap();
        let mut out = Vec::new();
        reg.ingest(Update::new(x, 1, 1.0), &mut out);
        assert_eq!(out[0].id.index, 0);
        reg.restart();
        reg.ingest(Update::new(x, 7, 1.0), &mut out);
        assert_eq!(out[1].id.index, 1);
        assert_eq!(reg.alerts_emitted(c), Some(2));
    }

    #[test]
    fn non_compiled_conditions_fall_back_to_full_eval() {
        let x = VarId::new(0);
        let mut reg = ConditionRegistry::new(CeId::new(0));
        let id = reg.add(Arc::new(Threshold::new(x, Cmp::Gt, 10.0)));
        let mut out = Vec::new();
        reg.ingest(Update::new(x, 1, 11.0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cond, id);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_cond_id_rejected() {
        let x = VarId::new(0);
        let mut reg = ConditionRegistry::new(CeId::new(0));
        reg.insert(CondId::new(5), Arc::new(Threshold::new(x, Cmp::Gt, 0.0)));
        reg.insert(CondId::new(5), Arc::new(Threshold::new(x, Cmp::Gt, 1.0)));
    }

    #[test]
    fn variables_is_union_of_subscriptions() {
        let mut vars = VarRegistry::new();
        let mut reg = ConditionRegistry::new(CeId::new(0));
        reg.add_compiled(compiled("x[0].value > 0 && y[0].value > 0", &mut vars));
        reg.add_compiled(compiled("y[0].value < 0", &mut vars));
        let got: Vec<VarId> = reg.variables().collect();
        assert_eq!(got, vec![vars.lookup("x").unwrap(), vars.lookup("y").unwrap()]);
    }

    #[test]
    fn shard_slices_merge_matches_unsharded() {
        let x = VarId::new(0);
        let n = 9;
        let updates: Vec<Update> = (1..=40).map(|s| Update::new(x, s, (s % 10) as f64)).collect();

        let mut plain = ConditionRegistry::new(CeId::new(3));
        for i in 0..n {
            plain.insert(CondId::new(i), Arc::new(Threshold::new(x, Cmp::Gt, f64::from(i % 5))));
        }
        let mut want = Vec::new();
        plain.ingest_batch(&updates, &mut want);
        assert!(!want.is_empty());

        for shard_count in [1usize, 2, 4, 9] {
            let mut slices = ShardSlices::new(CeId::new(3), shard_count);
            for i in 0..n {
                slices
                    .insert(CondId::new(i), Arc::new(Threshold::new(x, Cmp::Gt, f64::from(i % 5))));
            }
            assert_eq!(slices.len(), n as usize);
            assert_eq!(slices.shard_count(), shard_count);
            let parts: Vec<Vec<(u64, Alert)>> = slices
                .shards_mut()
                .iter_mut()
                .map(|shard| {
                    let mut tagged = Vec::new();
                    shard.ingest_batch_tagged(&updates, &mut tagged);
                    tagged
                })
                .collect();
            let mut got = Vec::new();
            ShardSlices::merge_tagged(parts, &mut got);
            assert_eq!(got, want, "shards = {shard_count}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.id, w.id, "shards = {shard_count}");
            }
            let (ps, ss) = (plain.stats(), slices.stats());
            assert_eq!(ps.emitted, ss.emitted, "shards = {shard_count}");
        }
    }

    #[test]
    fn merge_same_update_restores_cond_order() {
        let x = VarId::new(0);
        let mk = |cond: u32| {
            Alert::new(
                CondId::new(cond),
                crate::HistoryFingerprint::single(x, vec![crate::SeqNo::new(1)]),
                vec![Update::new(x, 1, 0.0)],
                AlertId { ce: CeId::new(0), index: 0 },
            )
        };
        let mut alerts = vec![mk(5), mk(0), mk(3)];
        ShardSlices::merge_same_update(&mut alerts);
        let ids: Vec<u32> = alerts.iter().map(|a| a.cond.index()).collect();
        assert_eq!(ids, vec![0, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shard_slices_rejected() {
        let _ = ShardSlices::new(CeId::new(0), 0);
    }
}
