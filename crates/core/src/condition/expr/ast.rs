//! Abstract syntax tree for condition expressions.

use std::fmt;

/// Which field of a history entry a term reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Field {
    /// The update's value snapshot.
    Value,
    /// The update's sequence number (exact for seqnos below 2^53, which
    /// covers any realistic stream).
    Seqno,
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::Value => write!(f, "value"),
            Field::Seqno => write!(f, "seqno"),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Numeric negation `-e`.
    Neg,
    /// Boolean negation `!e`.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Whether this operator takes numeric operands and yields a number.
    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }

    /// Whether this operator takes numeric operands and yields a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }

    /// Whether this operator takes boolean operands.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// Source-level symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Window-aggregate operators over the most recent history entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// `min_over(x, k)`: minimum of `H_x[0] … H_x[-(k-1)]` values.
    Min,
    /// `max_over(x, k)`: maximum over the window.
    Max,
    /// `avg_over(x, k)`: arithmetic mean over the window.
    Avg,
    /// `sum_over(x, k)`: sum over the window.
    Sum,
}

impl AggOp {
    /// Source-level function name.
    pub fn name(self) -> &'static str {
        match self {
            AggOp::Min => "min_over",
            AggOp::Max => "max_over",
            AggOp::Avg => "avg_over",
            AggOp::Sum => "sum_over",
        }
    }
}

/// An expression node, generic over the variable representation `V`
/// (`String` as parsed, [`VarId`](crate::VarId) after resolution).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr<V> {
    /// Numeric literal.
    Num(f64),
    /// Boolean literal (`true` / `false`).
    Bool(bool),
    /// History term `var[index].field`; `index` is the paper's history
    /// index, zero or negative (`x[0]`, `x[-1]`, …).
    Term {
        /// The variable addressed.
        var: V,
        /// History index, `0` for `H[0]`, `-1` for `H[-1]`, etc.
        index: i64,
        /// Which field to read.
        field: Field,
    },
    /// `consecutive(var)`: true iff `H_var` has no seqno gap.
    Consecutive(V),
    /// Window aggregate `op(var, window)` over the newest `window`
    /// history values (contributes `window` to the variable's degree).
    Agg {
        /// Aggregate operator.
        op: AggOp,
        /// The variable aggregated over.
        var: V,
        /// Window size in history entries (≥ 1).
        window: u64,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr<V>>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr<V>>,
        /// Right operand.
        rhs: Box<Expr<V>>,
    },
    /// `abs(e)`.
    Abs(Box<Expr<V>>),
    /// `min(a, b)`.
    Min(Box<Expr<V>>, Box<Expr<V>>),
    /// `max(a, b)`.
    Max(Box<Expr<V>>, Box<Expr<V>>),
}

impl<V> Expr<V> {
    /// Maps the variable representation, e.g. resolving names to ids.
    pub fn map_vars<W>(self, f: &mut impl FnMut(V) -> W) -> Expr<W> {
        match self {
            Expr::Num(n) => Expr::Num(n),
            Expr::Bool(b) => Expr::Bool(b),
            Expr::Term { var, index, field } => Expr::Term { var: f(var), index, field },
            Expr::Consecutive(v) => Expr::Consecutive(f(v)),
            Expr::Agg { op, var, window } => Expr::Agg { op, var: f(var), window },
            Expr::Unary { op, expr } => Expr::Unary { op, expr: Box::new(expr.map_vars(f)) },
            Expr::Binary { op, lhs, rhs } => {
                Expr::Binary { op, lhs: Box::new(lhs.map_vars(f)), rhs: Box::new(rhs.map_vars(f)) }
            }
            Expr::Abs(e) => Expr::Abs(Box::new(e.map_vars(f))),
            Expr::Min(a, b) => Expr::Min(Box::new(a.map_vars(f)), Box::new(b.map_vars(f))),
            Expr::Max(a, b) => Expr::Max(Box::new(a.map_vars(f)), Box::new(b.map_vars(f))),
        }
    }

    /// Visits every node of the tree (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr<V>)) {
        f(self);
        match self {
            Expr::Num(_)
            | Expr::Bool(_)
            | Expr::Term { .. }
            | Expr::Consecutive(_)
            | Expr::Agg { .. } => {}
            Expr::Unary { expr, .. } | Expr::Abs(expr) => expr.visit(f),
            Expr::Binary { lhs, rhs, .. } | Expr::Min(lhs, rhs) | Expr::Max(lhs, rhs) => {
                lhs.visit(f);
                rhs.visit(f);
            }
        }
    }
}

impl<V: fmt::Display> fmt::Display for Expr<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n) => write!(f, "{n}"),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Term { var, index, field } => write!(f, "{var}[{index}].{field}"),
            Expr::Consecutive(v) => write!(f, "consecutive({v})"),
            Expr::Agg { op, var, window } => write!(f, "{}({var}, {window})", op.name()),
            Expr::Unary { op, expr } => match op {
                UnOp::Neg => write!(f, "-({expr})"),
                UnOp::Not => write!(f, "!({expr})"),
            },
            Expr::Binary { op, lhs, rhs } => {
                write!(f, "({lhs} {} {rhs})", op.symbol())
            }
            Expr::Abs(e) => write!(f, "abs({e})"),
            Expr::Min(a, b) => write!(f, "min({a}, {b})"),
            Expr::Max(a, b) => write!(f, "max({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_vars_resolves_names() {
        let e: Expr<String> = Expr::Binary {
            op: BinOp::Gt,
            lhs: Box::new(Expr::Term { var: "x".into(), index: 0, field: Field::Value }),
            rhs: Box::new(Expr::Num(1.0)),
        };
        let resolved = e.map_vars(&mut |name: String| name.len() as u32);
        match resolved {
            Expr::Binary { lhs, .. } => match *lhs {
                Expr::Term { var, .. } => assert_eq!(var, 1),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn visit_reaches_all_nodes() {
        let e: Expr<String> = Expr::Min(
            Box::new(Expr::Abs(Box::new(Expr::Num(1.0)))),
            Box::new(Expr::Consecutive("x".into())),
        );
        let mut count = 0;
        e.visit(&mut |_| count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn display_roundtrips_structure() {
        let e: Expr<String> = Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(Expr::Bool(true)),
            rhs: Box::new(Expr::Unary { op: UnOp::Not, expr: Box::new(Expr::Bool(false)) }),
        };
        assert_eq!(e.to_string(), "(true && !(false))");
    }

    #[test]
    fn binop_classification_is_total() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::And,
            BinOp::Or,
        ] {
            let classes = [op.is_arithmetic(), op.is_comparison(), op.is_logical()];
            assert_eq!(classes.iter().filter(|&&b| b).count(), 1, "{op:?}");
        }
    }
}
