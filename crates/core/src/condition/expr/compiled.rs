//! Compiled, evaluable condition expressions.

use std::collections::BTreeMap;

use super::analysis::analyze;
use super::ast::{AggOp, BinOp, Expr, Field, UnOp};
use super::parser::parse;
use crate::condition::{Condition, Triggering};
use crate::error::Result;
use crate::history::HistorySet;
use crate::var::{VarId, VarRegistry};

/// A parsed, type-checked, name-resolved condition ready for a
/// Condition Evaluator.
///
/// Produced by [`CompiledCondition::compile`]; implements
/// [`Condition`], so it plugs directly into
/// [`Evaluator`](crate::Evaluator):
///
/// ```rust
/// use rcm_core::condition::expr::CompiledCondition;
/// use rcm_core::condition::{Condition, Triggering, ConditionExt};
/// use rcm_core::{Evaluator, Update, VarRegistry};
///
/// let mut reg = VarRegistry::new();
/// let cond = CompiledCondition::compile("temp[0].value > 3000", &mut reg)?;
/// assert!(cond.is_non_historical());
///
/// let temp = reg.lookup("temp").unwrap();
/// let mut ce = Evaluator::new(cond);
/// assert!(ce.ingest(Update::new(temp, 1, 2900.0)).is_none());
/// assert!(ce.ingest(Update::new(temp, 2, 3100.0)).is_some());
/// # Ok::<(), rcm_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledCondition {
    source: String,
    ast: Expr<VarId>,
    degrees: BTreeMap<VarId, usize>,
    triggering: Triggering,
}

impl CompiledCondition {
    /// Parses, type-checks and resolves `source`. Variable names are
    /// registered in `registry` (reusing existing ids for known names).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`](crate::Error::Parse) on lexical,
    /// syntactic or type errors, and on conditions that mention no
    /// variables.
    pub fn compile(source: &str, registry: &mut VarRegistry) -> Result<Self> {
        let ast = parse(source)?;
        let info = analyze(&ast)?;
        let ast = ast.map_vars(&mut |name: String| registry.register(&name));
        let degrees = info
            .degrees
            .into_iter()
            .map(|(name, d)| (registry.lookup(&name).expect("registered above"), d))
            .collect();
        Ok(CompiledCondition {
            source: source.to_owned(),
            ast,
            degrees,
            triggering: info.triggering,
        })
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The resolved syntax tree.
    pub fn ast(&self) -> &Expr<VarId> {
        &self.ast
    }
}

/// Runtime value during evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Val {
    Num(f64),
    Bool(bool),
}

impl Val {
    pub(crate) fn num(self) -> Option<f64> {
        match self {
            Val::Num(n) => Some(n),
            Val::Bool(_) => None,
        }
    }

    pub(crate) fn boolean(self) -> Option<bool> {
        match self {
            Val::Bool(b) => Some(b),
            Val::Num(_) => None,
        }
    }
}

/// Evaluates an expression; `None` when a history entry is missing
/// (undefined history) — the evaluator treats that as "condition not
/// satisfied".
pub(crate) fn eval_expr(e: &Expr<VarId>, h: &HistorySet) -> Option<Val> {
    match e {
        Expr::Num(n) => Some(Val::Num(*n)),
        Expr::Bool(b) => Some(Val::Bool(*b)),
        Expr::Term { var, index, field } => {
            let i = index.unsigned_abs() as usize;
            let v = match field {
                Field::Value => h.value(*var, i)?,
                Field::Seqno => h.seqno(*var, i)?.get() as f64,
            };
            Some(Val::Num(v))
        }
        Expr::Consecutive(var) => Some(Val::Bool(h.history(*var)?.is_consecutive())),
        Expr::Agg { op, var, window } => {
            let mut values = Vec::with_capacity(*window as usize);
            for i in 0..*window as usize {
                values.push(h.value(*var, i)?);
            }
            let v = match op {
                AggOp::Min => values.iter().cloned().fold(f64::INFINITY, f64::min),
                AggOp::Max => values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                AggOp::Sum => values.iter().sum(),
                AggOp::Avg => values.iter().sum::<f64>() / values.len() as f64,
            };
            Some(Val::Num(v))
        }
        Expr::Unary { op, expr } => {
            let v = eval_expr(expr, h)?;
            match op {
                UnOp::Neg => Some(Val::Num(-v.num()?)),
                UnOp::Not => Some(Val::Bool(!v.boolean()?)),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            if op.is_logical() {
                // Short-circuit like the host language would.
                let l = eval_expr(lhs, h)?.boolean()?;
                return match (op, l) {
                    (BinOp::And, false) => Some(Val::Bool(false)),
                    (BinOp::Or, true) => Some(Val::Bool(true)),
                    _ => Some(Val::Bool(eval_expr(rhs, h)?.boolean()?)),
                };
            }
            let l = eval_expr(lhs, h)?.num()?;
            let r = eval_expr(rhs, h)?.num()?;
            Some(match op {
                BinOp::Add => Val::Num(l + r),
                BinOp::Sub => Val::Num(l - r),
                BinOp::Mul => Val::Num(l * r),
                BinOp::Div => Val::Num(l / r),
                BinOp::Lt => Val::Bool(l < r),
                BinOp::Le => Val::Bool(l <= r),
                BinOp::Gt => Val::Bool(l > r),
                BinOp::Ge => Val::Bool(l >= r),
                BinOp::Eq => Val::Bool(l == r),
                BinOp::Ne => Val::Bool(l != r),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            })
        }
        Expr::Abs(e) => Some(Val::Num(eval_expr(e, h)?.num()?.abs())),
        Expr::Min(a, b) => Some(Val::Num(eval_expr(a, h)?.num()?.min(eval_expr(b, h)?.num()?))),
        Expr::Max(a, b) => Some(Val::Num(eval_expr(a, h)?.num()?.max(eval_expr(b, h)?.num()?))),
    }
}

impl Condition for CompiledCondition {
    fn name(&self) -> String {
        self.source.clone()
    }

    fn variables(&self) -> Vec<VarId> {
        self.degrees.keys().copied().collect()
    }

    fn degree(&self, var: VarId) -> usize {
        self.degrees.get(&var).copied().unwrap_or(0)
    }

    fn triggering(&self) -> Triggering {
        self.triggering
    }

    fn eval(&self, h: &HistorySet) -> bool {
        eval_expr(&self.ast, h).and_then(Val::boolean).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::ConditionExt;
    use crate::update::Update;

    fn setup(src: &str) -> (CompiledCondition, VarRegistry) {
        let mut reg = VarRegistry::new();
        let c = CompiledCondition::compile(src, &mut reg).unwrap();
        (c, reg)
    }

    fn feed(c: &CompiledCondition, reg: &VarRegistry, updates: &[(&str, u64, f64)]) -> bool {
        let mut h = HistorySet::new(c.history_spec());
        for &(name, s, v) in updates {
            h.push(Update::new(reg.lookup(name).unwrap(), s, v)).unwrap();
        }
        c.eval(&h)
    }

    #[test]
    fn c1_evaluates() {
        let (c, reg) = setup("x[0].value > 3000");
        assert!(!feed(&c, &reg, &[("x", 1, 2900.0)]));
        assert!(feed(&c, &reg, &[("x", 1, 2900.0), ("x", 2, 3100.0)]));
    }

    #[test]
    fn c2_vs_c3_on_gap() {
        let (c2, reg2) = setup("x[0].value - x[-1].value > 200");
        let (c3, reg3) = setup("x[0].value - x[-1].value > 200 && consecutive(x)");
        let gap = [("x", 1u64, 400.0), ("x", 3u64, 720.0)];
        assert!(feed(&c2, &reg2, &gap));
        assert!(!feed(&c3, &reg3, &gap));
        let adj = [("x", 1u64, 400.0), ("x", 2u64, 700.0)];
        assert!(feed(&c2, &reg2, &adj));
        assert!(feed(&c3, &reg3, &adj));
    }

    #[test]
    fn seqno_arithmetic_mirrors_consecutive() {
        let (c, reg) = setup("x[0].seqno == x[-1].seqno + 1 && x[0].value > 0");
        assert!(feed(&c, &reg, &[("x", 4, 1.0), ("x", 5, 1.0)]));
        assert!(!feed(&c, &reg, &[("x", 4, 1.0), ("x", 6, 1.0)]));
    }

    #[test]
    fn multi_var_cm() {
        let (c, reg) = setup("abs(x[0].value - y[0].value) > 100");
        assert!(feed(&c, &reg, &[("x", 1, 1200.0), ("y", 1, 1050.0)]));
        assert!(!feed(&c, &reg, &[("x", 1, 1100.0), ("y", 1, 1050.0)]));
    }

    #[test]
    fn undefined_history_evaluates_false() {
        let (c, reg) = setup("x[0].value - x[-1].value > 0");
        assert!(!feed(&c, &reg, &[("x", 1, 10.0)])); // only one update held
        assert!(!feed(&c, &reg, &[])); // empty
    }

    #[test]
    fn short_circuit_protects_missing_entries() {
        // `false && <undefined term>` must evaluate to false, not None.
        let (c, reg) = setup("x[0].value > 1e300 && x[-1].value > 0");
        let mut h = HistorySet::new(c.history_spec());
        h.push(Update::new(reg.lookup("x").unwrap(), 1, 5.0)).unwrap();
        assert!(!c.eval(&h));
    }

    #[test]
    fn min_max_and_division() {
        let (c, reg) = setup("min(x[0].value, y[0].value) / max(x[0].value, y[0].value) < 0.5");
        assert!(feed(&c, &reg, &[("x", 1, 1.0), ("y", 1, 10.0)]));
        assert!(!feed(&c, &reg, &[("x", 1, 6.0), ("y", 1, 10.0)]));
    }

    #[test]
    fn window_aggregates_evaluate() {
        // Bounded high-watermark: the current reading is the maximum of
        // the last four (max_over includes H[0]) and a strict rise.
        let (c, reg) = setup("x[0].value >= max_over(x, 4) && x[0].value > x[-1].value");
        assert!(!feed(&c, &reg, &[("x", 1, 5.0), ("x", 2, 9.0), ("x", 3, 7.0)])); // degree 4: undefined
        assert!(feed(&c, &reg, &[("x", 1, 5.0), ("x", 2, 9.0), ("x", 3, 7.0), ("x", 4, 12.0)]));
        // New reading below an older max: no alert.
        assert!(!feed(&c, &reg, &[("x", 1, 5.0), ("x", 2, 9.0), ("x", 3, 7.0), ("x", 4, 8.0)]));

        let (avg, reg) = setup("avg_over(x, 2) >= 10");
        assert!(feed(&avg, &reg, &[("x", 1, 8.0), ("x", 2, 12.0)]));
        assert!(!feed(&avg, &reg, &[("x", 1, 8.0), ("x", 2, 11.0)]));

        let (sum, reg) = setup("sum_over(x, 3) == 6");
        assert!(feed(&sum, &reg, &[("x", 1, 1.0), ("x", 2, 2.0), ("x", 3, 3.0)]));

        let (min, reg) = setup("min_over(x, 2) < 0");
        assert!(feed(&min, &reg, &[("x", 1, -1.0), ("x", 2, 5.0)]));
        assert!(!feed(&min, &reg, &[("x", 1, 1.0), ("x", 2, 5.0)]));
    }

    #[test]
    fn registry_shared_across_conditions() {
        let mut reg = VarRegistry::new();
        let a = CompiledCondition::compile("x[0].value > 1", &mut reg).unwrap();
        let b = CompiledCondition::compile("x[0].value < 1 && y[0].value > 0", &mut reg).unwrap();
        assert_eq!(a.variables(), vec![reg.lookup("x").unwrap()]);
        assert_eq!(b.variables().len(), 2);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn source_and_ast_accessible() {
        let (c, _) = setup("x[0].value > 3000");
        assert_eq!(c.source(), "x[0].value > 3000");
        assert!(matches!(c.ast(), Expr::Binary { op: BinOp::Gt, .. }));
        assert_eq!(c.name(), "x[0].value > 3000");
    }

    #[test]
    fn degree_zero_for_unknown_vars() {
        let (c, _) = setup("x[0].value > 0");
        assert_eq!(c.degree(VarId::new(99)), 0);
    }

    #[test]
    fn compile_errors_surface() {
        let mut reg = VarRegistry::new();
        assert!(CompiledCondition::compile("x[0].value +", &mut reg).is_err());
        assert!(CompiledCondition::compile("true", &mut reg).is_err());
        assert!(CompiledCondition::compile("x[1].value > 0", &mut reg).is_err());
    }
}
