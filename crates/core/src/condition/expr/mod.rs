//! A small expression language for conditions.
//!
//! The paper treats a condition as "an expression defined on values of
//! real world variables" (§2). This module provides exactly that: a
//! parsed, type-checked expression language over update histories, so
//! monitoring conditions can be written as text:
//!
//! ```text
//! x[0].value > 3000                                  # c1
//! x[0].value - x[-1].value > 200                     # c2 (aggressive)
//! x[0].value - x[-1].value > 200 && consecutive(x)   # c3 (conservative)
//! abs(x[0].value - y[0].value) > 100                 # cm (two variables)
//! ```
//!
//! Terms address history entries with the paper's indexing: `x[0]` is
//! `H_x[0]` (most recent update), `x[-1]` is `H_x[-1]`, and so on; each
//! term selects `.value` or `.seqno`. The special predicate
//! `consecutive(x)` is true iff `H_x`'s seqnos have no gap — the
//! building block of conservative triggering.
//!
//! [`CompiledCondition::compile`] parses, type-checks, resolves variable
//! names against a [`VarRegistry`](crate::VarRegistry), and derives the
//! paper's static classification automatically:
//!
//! * the **variable set** and per-variable **degree** (max history index
//!   used + 1);
//! * **conservative vs aggressive** triggering, by checking that every
//!   historical variable is guarded by a top-level `consecutive(...)`
//!   conjunct. The classification is syntactic and sound: a condition
//!   classified conservative is semantically conservative; a condition
//!   that is "accidentally" conservative through value arithmetic may be
//!   classified aggressive.

mod analysis;
mod ast;
mod compiled;
mod incremental;
mod lexer;
mod parser;

pub use analysis::{ExprInfo, Ty};
pub use ast::{AggOp, BinOp, Expr, Field, UnOp};
pub use compiled::CompiledCondition;
pub use incremental::IncrementalExpr;
pub use lexer::{LexError, Token};
pub use parser::{parse, ParseError};
