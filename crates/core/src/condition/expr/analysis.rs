//! Static analysis of condition expressions: type checking, variable
//! set, degrees and triggering classification.

use std::collections::BTreeMap;

use super::ast::{BinOp, Expr, UnOp};
use super::parser::ParseError;
use crate::condition::Triggering;

/// Expression type: every node is a number or a boolean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// Numeric expression.
    Num,
    /// Boolean expression.
    Bool,
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Num => write!(f, "number"),
            Ty::Bool => write!(f, "boolean"),
        }
    }
}

/// Result of analysing an expression over variable names.
#[derive(Debug, Clone, PartialEq)]
pub struct ExprInfo {
    /// Per-variable degree: max history index used + 1, and at least 1
    /// for variables appearing only in `consecutive(...)`.
    pub degrees: BTreeMap<String, usize>,
    /// Derived triggering classification (see below).
    pub triggering: Triggering,
}

/// Type-checks `expr` (which must be boolean at the root) and derives
/// its [`ExprInfo`].
///
/// The triggering classification is *syntactic and sound*: the
/// expression is classified [`Triggering::Conservative`] iff it is
/// non-historical, or every variable of degree ≥ 2 is guarded by a
/// `consecutive(var)` conjunct at the top level (so any seqno gap
/// forces the whole expression false). Expressions that happen to be
/// semantically conservative through other means are classified
/// aggressive — a safe over-approximation for the AD algorithms, which
/// never rely on a condition being aggressive.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first type mismatch, or a
/// root expression that is not boolean, or an expression mentioning no
/// variables.
pub fn analyze(expr: &Expr<String>) -> Result<ExprInfo, ParseError> {
    let ty = type_of(expr)?;
    if ty != Ty::Bool {
        return Err(err(format!("condition must be boolean, found {ty}")));
    }
    let mut degrees: BTreeMap<String, usize> = BTreeMap::new();
    expr.visit(&mut |node| match node {
        Expr::Term { var, index, .. } => {
            let need = index.unsigned_abs() as usize + 1;
            let d = degrees.entry(var.clone()).or_insert(0);
            *d = (*d).max(need);
        }
        Expr::Consecutive(var) => {
            degrees.entry(var.clone()).or_insert(1);
        }
        Expr::Agg { var, window, .. } => {
            let d = degrees.entry(var.clone()).or_insert(0);
            *d = (*d).max(*window as usize);
        }
        _ => {}
    });
    if degrees.is_empty() {
        return Err(err("condition mentions no variables".to_owned()));
    }

    let guarded = top_level_consecutive_guards(expr);
    let conservative =
        degrees.iter().all(|(var, &degree)| degree <= 1 || guarded.iter().any(|g| g == var));
    let triggering = if conservative { Triggering::Conservative } else { Triggering::Aggressive };
    Ok(ExprInfo { degrees, triggering })
}

fn err(message: String) -> ParseError {
    ParseError { offset: 0, message }
}

/// Computes the type of an expression, verifying operand types.
pub fn type_of(expr: &Expr<String>) -> Result<Ty, ParseError> {
    match expr {
        Expr::Num(_) => Ok(Ty::Num),
        Expr::Bool(_) => Ok(Ty::Bool),
        Expr::Term { .. } => Ok(Ty::Num),
        Expr::Consecutive(_) => Ok(Ty::Bool),
        Expr::Agg { .. } => Ok(Ty::Num),
        Expr::Unary { op, expr: inner } => {
            let t = type_of(inner)?;
            match (op, t) {
                (UnOp::Neg, Ty::Num) => Ok(Ty::Num),
                (UnOp::Not, Ty::Bool) => Ok(Ty::Bool),
                (UnOp::Neg, Ty::Bool) => Err(err("cannot negate a boolean with '-'".into())),
                (UnOp::Not, Ty::Num) => Err(err("cannot apply '!' to a number".into())),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let lt = type_of(lhs)?;
            let rt = type_of(rhs)?;
            if op.is_arithmetic() {
                expect_both(*op, lt, rt, Ty::Num)?;
                Ok(Ty::Num)
            } else if op.is_comparison() {
                expect_both(*op, lt, rt, Ty::Num)?;
                Ok(Ty::Bool)
            } else {
                expect_both(*op, lt, rt, Ty::Bool)?;
                Ok(Ty::Bool)
            }
        }
        Expr::Abs(e) => {
            if type_of(e)? != Ty::Num {
                return Err(err("abs() takes a number".into()));
            }
            Ok(Ty::Num)
        }
        Expr::Min(a, b) | Expr::Max(a, b) => {
            if type_of(a)? != Ty::Num || type_of(b)? != Ty::Num {
                return Err(err("min()/max() take numbers".into()));
            }
            Ok(Ty::Num)
        }
    }
}

fn expect_both(op: BinOp, lt: Ty, rt: Ty, want: Ty) -> Result<(), ParseError> {
    if lt != want || rt != want {
        return Err(err(format!(
            "operator '{}' takes {want} operands, found {lt} and {rt}",
            op.symbol()
        )));
    }
    Ok(())
}

/// Variables guarded by a `consecutive(...)` conjunct reachable through
/// top-level `&&` only.
fn top_level_consecutive_guards(expr: &Expr<String>) -> Vec<String> {
    let mut out = Vec::new();
    collect_guards(expr, &mut out);
    out
}

fn collect_guards(expr: &Expr<String>, out: &mut Vec<String>) {
    match expr {
        Expr::Consecutive(v) => out.push(v.clone()),
        Expr::Binary { op: BinOp::And, lhs, rhs } => {
            collect_guards(lhs, out);
            collect_guards(rhs, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::expr::parse;

    fn info(src: &str) -> ExprInfo {
        analyze(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn c1_is_degree_one_conservative() {
        let i = info("x[0].value > 3000");
        assert_eq!(i.degrees.get("x"), Some(&1));
        assert_eq!(i.triggering, Triggering::Conservative);
    }

    #[test]
    fn c2_is_degree_two_aggressive() {
        let i = info("x[0].value - x[-1].value > 200");
        assert_eq!(i.degrees.get("x"), Some(&2));
        assert_eq!(i.triggering, Triggering::Aggressive);
    }

    #[test]
    fn c3_is_degree_two_conservative() {
        let i = info("x[0].value - x[-1].value > 200 && consecutive(x)");
        assert_eq!(i.degrees.get("x"), Some(&2));
        assert_eq!(i.triggering, Triggering::Conservative);
    }

    #[test]
    fn sparse_indices_take_max_degree() {
        // A condition using only H[0] and H[-2] is of degree 3 (paper §2).
        let i = info("x[0].value > x[-2].value");
        assert_eq!(i.degrees.get("x"), Some(&3));
    }

    #[test]
    fn guard_under_or_does_not_count() {
        // consecutive(x) under || does not force false on gaps.
        let i = info("x[0].value - x[-1].value > 200 || consecutive(x)");
        assert_eq!(i.triggering, Triggering::Aggressive);
    }

    #[test]
    fn negated_guard_does_not_count() {
        let i = info("x[0].value - x[-1].value > 200 && !consecutive(x)");
        assert_eq!(i.triggering, Triggering::Aggressive);
    }

    #[test]
    fn multi_var_guards_must_cover_all_historical_vars() {
        let partial =
            info("x[0].value - x[-1].value > 1 && y[0].value - y[-1].value > 1 && consecutive(x)");
        assert_eq!(partial.triggering, Triggering::Aggressive);
        let full = info(
            "x[0].value - x[-1].value > 1 && y[0].value - y[-1].value > 1 \
             && consecutive(x) && consecutive(y)",
        );
        assert_eq!(full.triggering, Triggering::Conservative);
    }

    #[test]
    fn non_historical_multi_var_is_conservative() {
        let i = info("abs(x[0].value - y[0].value) > 100");
        assert_eq!(i.degrees.get("x"), Some(&1));
        assert_eq!(i.degrees.get("y"), Some(&1));
        assert_eq!(i.triggering, Triggering::Conservative);
    }

    #[test]
    fn type_errors_rejected() {
        assert!(analyze(&parse("x[0].value + 1").unwrap()).is_err()); // not boolean
        assert!(analyze(&parse("1 && true").unwrap()).is_err());
        // '!' on a number is a type error.
        assert!(analyze(&parse("!(x[0].value) && true").unwrap()).is_err());
        assert!(analyze(&parse("consecutive(x) > 1").unwrap()).is_err());
        assert!(analyze(&parse("-consecutive(x) == 1").unwrap()).is_err());
        assert!(analyze(&parse("abs(true) > 1").unwrap()).is_err());
        assert!(analyze(&parse("min(true, 1) > 1").unwrap()).is_err());
    }

    #[test]
    fn no_variables_rejected() {
        assert!(analyze(&parse("true").unwrap()).is_err());
        assert!(analyze(&parse("1 > 2").unwrap()).is_err());
    }

    #[test]
    fn consecutive_only_var_gets_degree_one() {
        let i = info("consecutive(x)");
        assert_eq!(i.degrees.get("x"), Some(&1));
        assert_eq!(i.triggering, Triggering::Conservative);
    }

    #[test]
    fn window_aggregates_set_degree() {
        // "temperature exceeds the maximum of the previous three
        // readings" — the bounded-window version of the high-watermark
        // condition the paper excludes (unbounded state). Degree 4.
        let i = info("x[0].value > max_over(x, 4)");
        assert_eq!(i.degrees.get("x"), Some(&4));
        assert_eq!(i.triggering, Triggering::Aggressive);
        let guarded = info("x[0].value > max_over(x, 4) && consecutive(x)");
        assert_eq!(guarded.triggering, Triggering::Conservative);
    }

    #[test]
    fn aggregate_window_below_index_use_takes_max() {
        let i = info("avg_over(x, 2) > x[-4].value");
        assert_eq!(i.degrees.get("x"), Some(&5));
    }

    #[test]
    fn seqno_terms_count_toward_degree() {
        let i = info("x[0].seqno == x[-1].seqno + 1");
        assert_eq!(i.degrees.get("x"), Some(&2));
        // seqno arithmetic is NOT recognized as a conservativeness guard
        // (syntactic approximation): classified aggressive.
        assert_eq!(i.triggering, Triggering::Aggressive);
    }
}
