//! Tokenizer for the condition expression language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier: variable name, field name or builtin function.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Dot => write!(f, "."),
            Token::Comma => write!(f, ","),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Bang => write!(f, "!"),
        }
    }
}

/// Lexical error: an unexpected character or malformed literal.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`, returning tokens with their byte offsets.
pub fn lex(src: &str) -> Result<Vec<(Token, usize)>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '#' => {
                // comment to end of line
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push((Token::LParen, start));
                i += 1;
            }
            ')' => {
                out.push((Token::RParen, start));
                i += 1;
            }
            '[' => {
                out.push((Token::LBracket, start));
                i += 1;
            }
            ']' => {
                out.push((Token::RBracket, start));
                i += 1;
            }
            '.' => {
                out.push((Token::Dot, start));
                i += 1;
            }
            ',' => {
                out.push((Token::Comma, start));
                i += 1;
            }
            '+' => {
                out.push((Token::Plus, start));
                i += 1;
            }
            '-' => {
                out.push((Token::Minus, start));
                i += 1;
            }
            '*' => {
                out.push((Token::Star, start));
                i += 1;
            }
            '/' => {
                out.push((Token::Slash, start));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Le, start));
                    i += 2;
                } else {
                    out.push((Token::Lt, start));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Ge, start));
                    i += 2;
                } else {
                    out.push((Token::Gt, start));
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::EqEq, start));
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: start,
                        message: "single '=' is not an operator; use '=='".into(),
                    });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Ne, start));
                    i += 2;
                } else {
                    out.push((Token::Bang, start));
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push((Token::AndAnd, start));
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: start,
                        message: "single '&' is not an operator; use '&&'".into(),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push((Token::OrOr, start));
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: start,
                        message: "single '|' is not an operator; use '||'".into(),
                    });
                }
            }
            '0'..='9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // Optional exponent: e / E, optional sign, digits.
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                let n: f64 = text.parse().map_err(|_| LexError {
                    offset: start,
                    message: format!("malformed number literal '{text}'"),
                })?;
                out.push((Token::Number(n), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push((Token::Ident(src[start..i].to_owned()), start));
            }
            other => {
                return Err(LexError {
                    offset: start,
                    message: format!("unexpected character '{other}'"),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn lexes_c3() {
        let t = toks("x[0].value - x[-1].value > 200 && consecutive(x)");
        assert_eq!(t[0], Token::Ident("x".into()));
        assert_eq!(t[1], Token::LBracket);
        assert_eq!(t[2], Token::Number(0.0));
        assert!(t.contains(&Token::AndAnd));
        assert!(t.contains(&Token::Ident("consecutive".into())));
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("<= >= == != && ||"),
            vec![Token::Le, Token::Ge, Token::EqEq, Token::Ne, Token::AndAnd, Token::OrOr]
        );
    }

    #[test]
    fn decimals_and_integers() {
        assert_eq!(toks("3.25 7"), vec![Token::Number(3.25), Token::Number(7.0)]);
        assert_eq!(
            toks("1e3 2.5e-2 1E+2"),
            vec![Token::Number(1000.0), Token::Number(0.025), Token::Number(100.0)]
        );
        // 'e' not followed by digits stays an identifier.
        assert_eq!(toks("1e"), vec![Token::Number(1.0), Token::Ident("e".into())]);
        // '5.' is Number(5) followed by Dot (field access style).
        assert_eq!(toks("5.x"), vec![Token::Number(5.0), Token::Dot, Token::Ident("x".into())]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("1 # the rest is ignored\n+ 2"),
            vec![Token::Number(1.0), Token::Plus, Token::Number(2.0)]
        );
    }

    #[test]
    fn rejects_single_ampersand_pipe_equals() {
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("a = b").is_err());
        assert!(lex("a $ b").is_err());
    }

    #[test]
    fn offsets_point_at_tokens() {
        let lexed = lex("ab + cd").unwrap();
        assert_eq!(lexed[0].1, 0);
        assert_eq!(lexed[1].1, 3);
        assert_eq!(lexed[2].1, 5);
    }

    #[test]
    fn empty_input_is_no_tokens() {
        assert!(lex("   ").unwrap().is_empty());
    }
}
