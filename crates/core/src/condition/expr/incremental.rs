//! Incremental expression re-evaluation.
//!
//! [`IncrementalExpr`] flattens a resolved [`Expr<VarId>`] into a node
//! arena and keeps, per node, a cached result plus a dirty bit keyed by
//! the variables the node's subtree reads. When an update for variable
//! `x` arrives, [`IncrementalExpr::invalidate`] clears only the nodes
//! whose subtree mentions `x`; the next [`IncrementalExpr::eval`]
//! recomputes exactly those and reuses every other subtree's cached
//! value. Over a registry hosting many conditions this is the
//! dependency-driven evaluation that keeps per-update work proportional
//! to the affected subexpressions, not the whole formula.
//!
//! # Invariants
//!
//! The cache is coherent as long as every mutation of the backing
//! [`HistorySet`] is mirrored here:
//!
//! - a successful `push` of an update for `x` ⇒ `invalidate(x)` —
//!   *before* the next `eval`, and even while the history is not yet
//!   fully defined (a later defined `eval` must not see stale caches);
//! - a rejected (stale) push leaves the histories untouched ⇒ no
//!   invalidation needed;
//! - `HistorySet::clear` ⇒ [`IncrementalExpr::invalidate_all`].
//!
//! Under those rules `eval` is observationally identical to the
//! from-scratch [`eval_expr`](super::compiled) walk, including
//! short-circuit `&&`/`||` and `None` (undefined history) propagation:
//! each node's value is a pure function of the histories of the
//! variables in its dependency mask, and any change to those histories
//! clears the node. A cached `None` is itself a valid cache entry — it
//! means "this subtree is undefined for the *current* histories", not
//! "unknown".

use std::collections::BTreeMap;

use super::ast::{AggOp, BinOp, Expr, Field, UnOp};
use super::compiled::{CompiledCondition, Val};
use crate::history::HistorySet;
use crate::var::VarId;

/// Flattened expression node; children are identified by arena index
/// and always precede their parent (post-order), so the root is the
/// last node.
#[derive(Debug, Clone, Copy)]
enum Node {
    Num(f64),
    Bool(bool),
    Term { var: VarId, depth: usize, field: Field },
    Consecutive(VarId),
    Agg { op: AggOp, var: VarId, window: usize },
    Unary { op: UnOp, child: u32 },
    Binary { op: BinOp, lhs: u32, rhs: u32 },
    Abs(u32),
    Min(u32, u32),
    Max(u32, u32),
}

/// The condition-local variable slot a mask bit stands for. Conditions
/// with more than [`MASK_BITS`] distinct variables park the overflow on
/// the last bit; those variables then over-invalidate each other, which
/// costs recomputation but never correctness.
const MASK_BITS: u32 = u64::BITS;

/// A memoizing evaluator for one compiled expression.
///
/// Built from a [`CompiledCondition`] via
/// [`CompiledCondition::incremental`]; see the module docs for the
/// invalidation contract.
#[derive(Debug, Clone)]
pub struct IncrementalExpr {
    nodes: Vec<Node>,
    /// Per node: bitmask over condition-local variable slots its
    /// subtree reads.
    deps: Vec<u64>,
    /// Per node: cached result, meaningful only when `valid`.
    cache: Vec<Option<Val>>,
    valid: Vec<bool>,
    /// Variable → mask bit, slots assigned in first-appearance order.
    var_bits: BTreeMap<VarId, u64>,
}

impl IncrementalExpr {
    /// Flattens `ast` into an arena with all caches invalid.
    pub(crate) fn from_ast(ast: &Expr<VarId>) -> Self {
        let mut inc = IncrementalExpr {
            nodes: Vec::new(),
            deps: Vec::new(),
            cache: Vec::new(),
            valid: Vec::new(),
            var_bits: BTreeMap::new(),
        };
        inc.flatten(ast);
        inc
    }

    /// Adds `ast`'s nodes to the arena (children first) and returns the
    /// subtree root's index and dependency mask.
    fn flatten(&mut self, ast: &Expr<VarId>) -> (u32, u64) {
        let (node, deps) = match ast {
            Expr::Num(n) => (Node::Num(*n), 0),
            Expr::Bool(b) => (Node::Bool(*b), 0),
            Expr::Term { var, index, field } => (
                Node::Term { var: *var, depth: index.unsigned_abs() as usize, field: *field },
                self.bit_for(*var),
            ),
            Expr::Consecutive(var) => (Node::Consecutive(*var), self.bit_for(*var)),
            Expr::Agg { op, var, window } => {
                (Node::Agg { op: *op, var: *var, window: *window as usize }, self.bit_for(*var))
            }
            Expr::Unary { op, expr } => {
                let (child, d) = self.flatten(expr);
                (Node::Unary { op: *op, child }, d)
            }
            Expr::Binary { op, lhs, rhs } => {
                let (l, dl) = self.flatten(lhs);
                let (r, dr) = self.flatten(rhs);
                (Node::Binary { op: *op, lhs: l, rhs: r }, dl | dr)
            }
            Expr::Abs(e) => {
                let (child, d) = self.flatten(e);
                (Node::Abs(child), d)
            }
            Expr::Min(a, b) => {
                let (l, dl) = self.flatten(a);
                let (r, dr) = self.flatten(b);
                (Node::Min(l, r), dl | dr)
            }
            Expr::Max(a, b) => {
                let (l, dl) = self.flatten(a);
                let (r, dr) = self.flatten(b);
                (Node::Max(l, r), dl | dr)
            }
        };
        let idx = u32::try_from(self.nodes.len()).expect("expression arena exceeds u32 indices");
        self.nodes.push(node);
        self.deps.push(deps);
        self.cache.push(None);
        self.valid.push(false);
        (idx, deps)
    }

    /// The mask bit standing for `var`, assigning a fresh slot on first
    /// sight (overflow beyond [`MASK_BITS`] shares the last bit).
    fn bit_for(&mut self, var: VarId) -> u64 {
        let next = self.var_bits.len() as u32;
        *self.var_bits.entry(var).or_insert_with(|| 1u64 << next.min(MASK_BITS - 1))
    }

    /// Marks every node whose subtree reads `var` dirty. Must be called
    /// after each successful history push for `var`.
    pub fn invalidate(&mut self, var: VarId) {
        let Some(&mask) = self.var_bits.get(&var) else {
            return; // variable not mentioned — nothing cached reads it
        };
        for (i, &deps) in self.deps.iter().enumerate() {
            if deps & mask != 0 {
                self.valid[i] = false;
            }
        }
    }

    /// Drops every cached value; required after `HistorySet::clear`
    /// (e.g. an evaluator restart).
    pub fn invalidate_all(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
    }

    /// Evaluates the root against `h`, reusing every clean subtree.
    /// Semantics match the from-scratch walk exactly: `true` only when
    /// all referenced histories are defined and the expression is
    /// boolean-true.
    pub fn eval(&mut self, h: &HistorySet) -> bool {
        let root = self.nodes.len() - 1;
        self.eval_node(root, h).and_then(Val::boolean).unwrap_or(false)
    }

    fn eval_node(&mut self, i: usize, h: &HistorySet) -> Option<Val> {
        if self.valid[i] {
            return self.cache[i];
        }
        let v = self.compute(i, h);
        self.cache[i] = v;
        self.valid[i] = true;
        v
    }

    /// Recomputes node `i`; mirrors `eval_expr` in `compiled.rs` —
    /// any semantic change there must land here too (the equivalence
    /// proptest pins this).
    fn compute(&mut self, i: usize, h: &HistorySet) -> Option<Val> {
        match self.nodes[i] {
            Node::Num(n) => Some(Val::Num(n)),
            Node::Bool(b) => Some(Val::Bool(b)),
            Node::Term { var, depth, field } => {
                let v = match field {
                    Field::Value => h.value(var, depth)?,
                    Field::Seqno => h.seqno(var, depth)?.get() as f64,
                };
                Some(Val::Num(v))
            }
            Node::Consecutive(var) => Some(Val::Bool(h.history(var)?.is_consecutive())),
            Node::Agg { op, var, window } => {
                let mut values = Vec::with_capacity(window);
                for d in 0..window {
                    values.push(h.value(var, d)?);
                }
                let v = match op {
                    AggOp::Min => values.iter().cloned().fold(f64::INFINITY, f64::min),
                    AggOp::Max => values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                    AggOp::Sum => values.iter().sum(),
                    AggOp::Avg => values.iter().sum::<f64>() / values.len() as f64,
                };
                Some(Val::Num(v))
            }
            Node::Unary { op, child } => {
                let v = self.eval_node(child as usize, h)?;
                match op {
                    UnOp::Neg => Some(Val::Num(-v.num()?)),
                    UnOp::Not => Some(Val::Bool(!v.boolean()?)),
                }
            }
            Node::Binary { op, lhs, rhs } => {
                if op.is_logical() {
                    // Short-circuit exactly like the full walk: a
                    // deciding lhs leaves the rhs unevaluated (and, here,
                    // possibly still dirty — which is safe, it just stays
                    // lazily pending).
                    let l = self.eval_node(lhs as usize, h)?.boolean()?;
                    return match (op, l) {
                        (BinOp::And, false) => Some(Val::Bool(false)),
                        (BinOp::Or, true) => Some(Val::Bool(true)),
                        _ => Some(Val::Bool(self.eval_node(rhs as usize, h)?.boolean()?)),
                    };
                }
                let l = self.eval_node(lhs as usize, h)?.num()?;
                let r = self.eval_node(rhs as usize, h)?.num()?;
                Some(match op {
                    BinOp::Add => Val::Num(l + r),
                    BinOp::Sub => Val::Num(l - r),
                    BinOp::Mul => Val::Num(l * r),
                    BinOp::Div => Val::Num(l / r),
                    BinOp::Lt => Val::Bool(l < r),
                    BinOp::Le => Val::Bool(l <= r),
                    BinOp::Gt => Val::Bool(l > r),
                    BinOp::Ge => Val::Bool(l >= r),
                    BinOp::Eq => Val::Bool(l == r),
                    BinOp::Ne => Val::Bool(l != r),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                })
            }
            Node::Abs(e) => Some(Val::Num(self.eval_node(e as usize, h)?.num()?.abs())),
            Node::Min(a, b) => Some(Val::Num(
                self.eval_node(a as usize, h)?.num()?.min(self.eval_node(b as usize, h)?.num()?),
            )),
            Node::Max(a, b) => Some(Val::Num(
                self.eval_node(a as usize, h)?.num()?.max(self.eval_node(b as usize, h)?.num()?),
            )),
        }
    }

    /// Number of arena nodes (diagnostics / bench reporting).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// How many nodes are currently dirty (diagnostics).
    pub fn dirty_count(&self) -> usize {
        self.valid.iter().filter(|v| !**v).count()
    }
}

impl CompiledCondition {
    /// Builds a memoizing evaluator for this condition's expression.
    pub fn incremental(&self) -> IncrementalExpr {
        IncrementalExpr::from_ast(self.ast())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Condition, ConditionExt};
    use crate::update::Update;
    use crate::var::VarRegistry;

    fn compile(src: &str) -> (CompiledCondition, VarRegistry) {
        let mut reg = VarRegistry::new();
        let c = CompiledCondition::compile(src, &mut reg).unwrap();
        (c, reg)
    }

    /// Drives incremental and full evaluation in lockstep over a
    /// scripted update stream, asserting equality after every push.
    fn lockstep(src: &str, updates: &[(&str, u64, f64)]) {
        let (cond, reg) = compile(src);
        let mut h = HistorySet::new(cond.history_spec());
        let mut inc = cond.incremental();
        for &(name, s, v) in updates {
            let var = reg.lookup(name).unwrap();
            if h.push(Update::new(var, s, v)).is_ok() {
                inc.invalidate(var);
            }
            assert_eq!(inc.eval(&h), cond.eval(&h), "after ({name},{s},{v}) in {src}");
            // A second eval with warm caches must agree too.
            assert_eq!(inc.eval(&h), cond.eval(&h), "warm re-eval in {src}");
        }
    }

    #[test]
    fn matches_full_eval_through_definition_boundary() {
        lockstep(
            "x[0].value - x[-1].value > 200 && consecutive(x)",
            &[("x", 1, 400.0), ("x", 3, 720.0), ("x", 4, 950.0), ("x", 2, 0.0)],
        );
    }

    #[test]
    fn untouched_subtree_stays_cached() {
        let (cond, reg) = compile("x[0].value > 1 && y[0].value > 1");
        let (x, y) = (reg.lookup("x").unwrap(), reg.lookup("y").unwrap());
        let mut h = HistorySet::new(cond.history_spec());
        let mut inc = cond.incremental();
        h.push(Update::new(x, 1, 5.0)).unwrap();
        inc.invalidate(x);
        h.push(Update::new(y, 1, 5.0)).unwrap();
        inc.invalidate(y);
        assert!(inc.eval(&h));
        assert_eq!(inc.dirty_count(), 0);
        // An update to y must leave x's comparison subtree cached.
        h.push(Update::new(y, 2, 0.0)).unwrap();
        inc.invalidate(y);
        // Dirty: y's term, y's comparison, and the root `&&`.
        assert_eq!(inc.dirty_count(), 3);
        assert!(!inc.eval(&h));
        assert!(!cond.eval(&h));
    }

    #[test]
    fn short_circuit_leaves_rhs_lazily_dirty() {
        let (cond, reg) = compile("x[0].value > 10 && x[-1].value > 0");
        let x = reg.lookup("x").unwrap();
        let mut h = HistorySet::new(cond.history_spec());
        let mut inc = cond.incremental();
        h.push(Update::new(x, 1, 5.0)).unwrap();
        inc.invalidate(x);
        // lhs false short-circuits; rhs (undefined x[-1]) never read.
        assert!(!inc.eval(&h));
        assert!(!cond.eval(&h));
        h.push(Update::new(x, 2, 50.0)).unwrap();
        inc.invalidate(x);
        assert!(inc.eval(&h));
        assert!(cond.eval(&h));
    }

    #[test]
    fn invalidate_all_matches_cleared_histories() {
        let (cond, reg) = compile("x[0].value > 1");
        let x = reg.lookup("x").unwrap();
        let mut h = HistorySet::new(cond.history_spec());
        let mut inc = cond.incremental();
        h.push(Update::new(x, 1, 5.0)).unwrap();
        inc.invalidate(x);
        assert!(inc.eval(&h));
        h.clear();
        inc.invalidate_all();
        assert!(!inc.eval(&h));
        assert_eq!(inc.eval(&h), cond.eval(&h));
    }

    #[test]
    fn aggregates_and_seqno_terms_track() {
        lockstep(
            "avg_over(x, 2) >= 10 || x[0].seqno == x[-1].seqno + 1",
            &[("x", 1, 8.0), ("x", 2, 12.0), ("x", 4, 2.0), ("x", 5, 2.0)],
        );
        lockstep(
            "min(abs(x[0].value - y[0].value), 50) < max_over(y, 2)",
            &[("y", 1, 1.0), ("x", 1, 30.0), ("y", 2, 9.0), ("x", 2, -4.0)],
        );
    }

    #[test]
    fn node_count_reflects_arena() {
        let (cond, _) = compile("x[0].value > 1 && y[0].value > 1");
        // 2 terms + 2 literals + 2 comparisons + 1 `&&` = 7 nodes.
        assert_eq!(cond.incremental().node_count(), 7);
    }

    #[test]
    fn unknown_variable_invalidation_is_a_noop() {
        let (cond, reg) = compile("x[0].value > 1");
        let x = reg.lookup("x").unwrap();
        let mut h = HistorySet::new(cond.history_spec());
        let mut inc = cond.incremental();
        h.push(Update::new(x, 1, 5.0)).unwrap();
        inc.invalidate(x);
        assert!(inc.eval(&h));
        inc.invalidate(VarId::new(999));
        assert_eq!(inc.dirty_count(), 0);
    }
}
