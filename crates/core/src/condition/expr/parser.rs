//! Recursive-descent parser for condition expressions.

use std::fmt;

use super::ast::{AggOp, BinOp, Expr, Field, UnOp};
use super::lexer::{lex, LexError, Token};

/// Parse error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset the error was detected at (source length for
    /// unexpected end of input).
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { offset: e.offset, message: e.message }
    }
}

/// Parses a condition expression into an AST over variable *names*.
///
/// The grammar, loosest binding first:
///
/// ```text
/// expr   := and ("||" and)*
/// and    := cmp ("&&" cmp)*
/// cmp    := sum (("<"|"<="|">"|">="|"=="|"!=") sum)?
/// sum    := prod (("+"|"-") prod)*
/// prod   := neg (("*"|"/") neg)*
/// neg    := ("-"|"!") neg | atom
/// atom   := number | "true" | "false" | "(" expr ")"
///         | ident "[" int "]" "." ("value"|"seqno")      # history term
///         | "consecutive" "(" ident ")"
///         | ("abs") "(" expr ")"
///         | ("min"|"max") "(" expr "," expr ")"
///         | ("min_over"|"max_over"|"avg_over"|"sum_over") "(" ident "," int ")"
/// ```
///
/// `!` and unary `-` bind tightest, as in C and Rust: `!a && b` is
/// `(!a) && b`, and negating a whole comparison needs parentheses,
/// `!(a > b)`.
///
/// # Errors
///
/// Returns a [`ParseError`] on any lexical or syntactic problem. Type
/// errors (e.g. `1 && 2`) are reported by the analysis pass, not here.
pub fn parse(src: &str) -> Result<Expr<String>, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0, src_len: src.len() };
    let e = p.expr()?;
    if let Some((tok, off)) = p.peek_with_offset() {
        return Err(ParseError {
            offset: off,
            message: format!("unexpected trailing token '{tok}'"),
        });
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn peek_with_offset(&self) -> Option<(&Token, usize)> {
        self.tokens.get(self.pos).map(|(t, o)| (t, *o))
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.src_len, |(_, o)| *o)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(ParseError {
                offset: self.offset(),
                message: format!("expected '{want}', found '{t}'"),
            }),
            None => Err(ParseError {
                offset: self.src_len,
                message: format!("expected '{want}', found end of input"),
            }),
        }
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.offset(), message: message.into() }
    }

    fn expr(&mut self) -> Result<Expr<String>, ParseError> {
        let mut lhs = self.and()?;
        while self.peek() == Some(&Token::OrOr) {
            self.bump();
            let rhs = self.and()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr<String>, ParseError> {
        let mut lhs = self.cmp()?;
        while self.peek() == Some(&Token::AndAnd) {
            self.bump();
            let rhs = self.cmp()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn cmp(&mut self) -> Result<Expr<String>, ParseError> {
        let lhs = self.sum()?;
        let op = match self.peek() {
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            Some(Token::EqEq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.sum()?;
            return Ok(Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) });
        }
        Ok(lhs)
    }

    fn sum(&mut self) -> Result<Expr<String>, ParseError> {
        let mut lhs = self.prod()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.prod()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn prod(&mut self) -> Result<Expr<String>, ParseError> {
        let mut lhs = self.neg()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.neg()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn neg(&mut self) -> Result<Expr<String>, ParseError> {
        if self.peek() == Some(&Token::Minus) {
            self.bump();
            let inner = self.neg()?;
            return Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(inner) });
        }
        if self.peek() == Some(&Token::Bang) {
            self.bump();
            let inner = self.neg()?;
            return Ok(Expr::Unary { op: UnOp::Not, expr: Box::new(inner) });
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr<String>, ParseError> {
        match self.bump() {
            Some(Token::Number(n)) => Ok(Expr::Num(n)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => match name.as_str() {
                "true" => Ok(Expr::Bool(true)),
                "false" => Ok(Expr::Bool(false)),
                "consecutive" => {
                    self.expect(&Token::LParen)?;
                    let var = match self.bump() {
                        Some(Token::Ident(v)) => v,
                        _ => return Err(self.err_here("consecutive() takes a variable name")),
                    };
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Consecutive(var))
                }
                "abs" => {
                    self.expect(&Token::LParen)?;
                    let e = self.expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Abs(Box::new(e)))
                }
                "min_over" | "max_over" | "avg_over" | "sum_over" => {
                    let op = match name.as_str() {
                        "min_over" => AggOp::Min,
                        "max_over" => AggOp::Max,
                        "avg_over" => AggOp::Avg,
                        _ => AggOp::Sum,
                    };
                    self.expect(&Token::LParen)?;
                    let var = match self.bump() {
                        Some(Token::Ident(v)) => v,
                        _ => {
                            return Err(self.err_here(format!(
                                "{}() takes a variable name and a window size",
                                op.name()
                            )))
                        }
                    };
                    self.expect(&Token::Comma)?;
                    let window = match self.bump() {
                        Some(Token::Number(n)) if n.fract() == 0.0 && n >= 1.0 => n as u64,
                        _ => return Err(self.err_here("window size must be a positive integer")),
                    };
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Agg { op, var, window })
                }
                "min" | "max" => {
                    self.expect(&Token::LParen)?;
                    let a = self.expr()?;
                    self.expect(&Token::Comma)?;
                    let b = self.expr()?;
                    self.expect(&Token::RParen)?;
                    if name == "min" {
                        Ok(Expr::Min(Box::new(a), Box::new(b)))
                    } else {
                        Ok(Expr::Max(Box::new(a), Box::new(b)))
                    }
                }
                _ => self.term(name),
            },
            Some(t) => Err(ParseError {
                offset: self.tokens[self.pos - 1].1,
                message: format!("unexpected token '{t}'"),
            }),
            None => {
                Err(ParseError { offset: self.src_len, message: "unexpected end of input".into() })
            }
        }
    }

    /// Parses the `[index].field` suffix of a history term whose
    /// variable name was already consumed.
    fn term(&mut self, var: String) -> Result<Expr<String>, ParseError> {
        self.expect(&Token::LBracket)?;
        let negative = if self.peek() == Some(&Token::Minus) {
            self.bump();
            true
        } else {
            false
        };
        let index = match self.bump() {
            Some(Token::Number(n)) if n.fract() == 0.0 => {
                let n = n as i64;
                if negative {
                    -n
                } else {
                    n
                }
            }
            _ => return Err(self.err_here("history index must be an integer")),
        };
        if index > 0 {
            return Err(self.err_here(format!(
                "history index must be zero or negative (H[0] is the newest update), got {index}"
            )));
        }
        self.expect(&Token::RBracket)?;
        self.expect(&Token::Dot)?;
        let field = match self.bump() {
            Some(Token::Ident(f)) if f == "value" => Field::Value,
            Some(Token::Ident(f)) if f == "seqno" => Field::Seqno,
            _ => return Err(self.err_here("expected '.value' or '.seqno'")),
        };
        Ok(Expr::Term { var, index, field })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_c1() {
        let e = parse("x[0].value > 3000").unwrap();
        assert_eq!(
            e,
            Expr::Binary {
                op: BinOp::Gt,
                lhs: Box::new(Expr::Term { var: "x".into(), index: 0, field: Field::Value }),
                rhs: Box::new(Expr::Num(3000.0)),
            }
        );
    }

    #[test]
    fn parses_c3_with_consecutive() {
        let e = parse("x[0].value - x[-1].value > 200 && consecutive(x)").unwrap();
        match e {
            Expr::Binary { op: BinOp::And, rhs, .. } => {
                assert_eq!(*rhs, Expr::Consecutive("x".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_and_over_or_arith_over_cmp() {
        // a || b && c  parses as  a || (b && c)
        let e = parse("true || false && false").unwrap();
        match e {
            Expr::Binary { op: BinOp::Or, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        // 1 + 2 * 3 > 6  parses as  (1 + (2*3)) > 6
        let e = parse("1 + 2 * 3 > 6").unwrap();
        match e {
            Expr::Binary { op: BinOp::Gt, lhs, .. } => {
                assert!(matches!(*lhs, Expr::Binary { op: BinOp::Add, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unary_minus_and_not() {
        let e = parse("-x[0].value > -5").unwrap();
        match e {
            Expr::Binary { op: BinOp::Gt, lhs, rhs } => {
                assert!(matches!(*lhs, Expr::Unary { op: UnOp::Neg, .. }));
                assert!(matches!(*rhs, Expr::Unary { op: UnOp::Neg, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("!!consecutive(x)").is_ok());
    }

    #[test]
    fn functions_parse() {
        assert!(parse("abs(x[0].value) > 1").is_ok());
        assert!(parse("min(x[0].value, y[0].value) > 1").is_ok());
        assert!(parse("max(x[0].value, 3) > 1").is_ok());
    }

    #[test]
    fn window_aggregates_parse() {
        let e = parse("x[0].value >= max_over(x, 4)").unwrap();
        match e {
            Expr::Binary { rhs, .. } => {
                assert_eq!(*rhs, Expr::Agg { op: AggOp::Max, var: "x".into(), window: 4 })
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("avg_over(t, 3) > 100").is_ok());
        assert!(parse("sum_over(t, 2) - min_over(t, 2) > 0").is_ok());
    }

    #[test]
    fn window_aggregates_reject_bad_args() {
        assert!(parse("max_over(x, 0) > 1").is_err()); // zero window
        assert!(parse("max_over(x, 1.5) > 1").is_err()); // fractional
        assert!(parse("max_over(1, 2) > 1").is_err()); // not a variable
        assert!(parse("max_over(x) > 1").is_err()); // missing window
    }

    #[test]
    fn rejects_positive_history_index() {
        let err = parse("x[1].value > 0").unwrap_err();
        assert!(err.message.contains("zero or negative"));
    }

    #[test]
    fn rejects_fractional_index() {
        assert!(parse("x[0.5].value > 0").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse("x[0].value > 0 )").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn rejects_bad_field() {
        let err = parse("x[0].weight > 0").unwrap_err();
        assert!(err.message.contains(".value") || err.message.contains(".seqno"));
    }

    #[test]
    fn rejects_truncated_input() {
        assert!(parse("x[0].value >").is_err());
        assert!(parse("(x[0].value > 1").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn paren_grouping_overrides_precedence() {
        let e = parse("(1 + 2) * 3 > 0").unwrap();
        match e {
            Expr::Binary { op: BinOp::Gt, lhs, .. } => match *lhs {
                Expr::Binary { op: BinOp::Mul, lhs, .. } => {
                    assert!(matches!(*lhs, Expr::Binary { op: BinOp::Add, .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }
}
