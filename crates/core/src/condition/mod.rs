//! Conditions: boolean expressions over per-variable update histories.
//!
//! A condition `c` is an expression defined on values of real-world
//! variables, evaluated against the set `H` of update histories held by
//! a Condition Evaluator (paper §2). The paper's taxonomy is captured
//! here:
//!
//! * the **variable set** `V` and the per-variable **degree** (how many
//!   past updates of each variable the condition reads) come from the
//!   [`Condition`] trait;
//! * a condition is **non-historical** if it is of degree 1 with respect
//!   to every variable, otherwise **historical**
//!   ([`ConditionExt::is_historical`]);
//! * a historical condition is either **conservative** (always false
//!   when the history's seqnos are not consecutive, i.e. it detects
//!   update loss) or **aggressive** ([`Triggering`]). The
//!   [`Conservative`] wrapper turns any condition into its conservative
//!   variant — e.g. the paper's `c3` is `Conservative(c2)`.
//!
//! Ready-made conditions from the paper are re-exported here
//! ([`Threshold`] is `c1`, [`DeltaRise`] is `c2`, [`AbsDifference`] is
//! the two-variable `cm`), boolean combinators in [`combinators`], and a
//! parsed condition **expression language** in [`expr`]:
//!
//! ```rust
//! use rcm_core::condition::expr::CompiledCondition;
//! use rcm_core::condition::ConditionExt;
//! use rcm_core::VarRegistry;
//!
//! let mut reg = VarRegistry::new();
//! // c3: temperature rose >200 degrees between consecutive readings.
//! let c3 = CompiledCondition::compile(
//!     "x[0].value - x[-1].value > 200 && consecutive(x)", &mut reg)?;
//! assert!(c3.is_historical());
//! # Ok::<(), rcm_core::Error>(())
//! ```
//!
//! The paper excludes conditions of infinite degree, conditions needing
//! extra CE state (high watermarks), and conditions mentioning wall-clock
//! time; this framework cannot express them by construction (a
//! [`Condition`] sees only a bounded [`HistorySet`]).

pub mod combinators;
mod conservative;
pub mod expr;
mod func;
mod standard;

pub use combinators::{And, Not, Or};
pub use conservative::Conservative;
pub use func::FnCondition;
pub use standard::{
    AbsDifference, Band, Cmp, CrossesLevel, DeltaRise, SharpDrop, SustainedAbove, Threshold,
};

use std::fmt;
use std::sync::Arc;

use crate::history::HistorySet;
use crate::var::VarId;

/// How a historical condition treats update loss (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Triggering {
    /// The condition detects lost updates and always evaluates to false
    /// when the seqnos in any history are not consecutive.
    Conservative,
    /// The condition ignores seqno gaps, substituting older received
    /// values for missed updates.
    Aggressive,
}

impl fmt::Display for Triggering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Triggering::Conservative => write!(f, "conservative"),
            Triggering::Aggressive => write!(f, "aggressive"),
        }
    }
}

/// A boolean condition over update histories.
///
/// Implementations must be deterministic pure functions of the history
/// set: the paper's framework (and all six AD algorithms) relies on two
/// CEs with equal histories producing equal alert decisions.
///
/// The evaluator guarantees `eval` is called only when every history in
/// the set is defined (holds `degree` updates); implementations should
/// still return `false` rather than panic on unexpectedly short
/// histories.
pub trait Condition: fmt::Debug + Send + Sync {
    /// Human-readable name used in alert displays and reports.
    fn name(&self) -> String;

    /// The condition's variable set `V`, in ascending order, without
    /// duplicates.
    fn variables(&self) -> Vec<VarId>;

    /// The condition's degree with respect to `var`: how many past
    /// `var`-updates evaluation needs. Returns 0 for variables outside
    /// `V`. A condition that uses only `H_x[0]` and `H_x[-2]` is of
    /// degree 3 (paper §2).
    fn degree(&self, var: VarId) -> usize;

    /// Whether the condition is conservatively or aggressively
    /// triggered. Only meaningful for historical conditions;
    /// non-historical conditions are conservative vacuously (a
    /// single-update history has no gaps to detect).
    fn triggering(&self) -> Triggering;

    /// Evaluates the condition against the given histories.
    fn eval(&self, h: &HistorySet) -> bool;
}

/// Extension helpers derived from the [`Condition`] trait.
pub trait ConditionExt: Condition {
    /// `(variable, degree)` pairs suitable for building the evaluator's
    /// [`HistorySet`].
    fn history_spec(&self) -> Vec<(VarId, usize)> {
        self.variables().into_iter().map(|v| (v, self.degree(v))).collect()
    }

    /// Whether the condition is of degree 1 with respect to every
    /// variable (paper: *non-historical*).
    fn is_non_historical(&self) -> bool {
        self.variables().into_iter().all(|v| self.degree(v) == 1)
    }

    /// Whether the condition looks at historical data in addition to
    /// the most recent updates.
    fn is_historical(&self) -> bool {
        !self.is_non_historical()
    }
}

impl<C: Condition + ?Sized> ConditionExt for C {}

macro_rules! forward_condition {
    ($($ptr:ty),+) => {$(
        impl<C: Condition + ?Sized> Condition for $ptr {
            fn name(&self) -> String {
                (**self).name()
            }
            fn variables(&self) -> Vec<VarId> {
                (**self).variables()
            }
            fn degree(&self, var: VarId) -> usize {
                (**self).degree(var)
            }
            fn triggering(&self) -> Triggering {
                (**self).triggering()
            }
            fn eval(&self, h: &HistorySet) -> bool {
                (**self).eval(h)
            }
        }
    )+};
}

forward_condition!(&C, Box<C>, Arc<C>);

/// Type-erased, shareable condition handle used throughout the
/// simulator and runtime.
pub type DynCondition = Arc<dyn Condition>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::Update;

    #[test]
    fn ext_classifies_historicity() {
        let x = VarId::new(0);
        let c1 = Threshold::new(x, Cmp::Gt, 3000.0);
        assert!(c1.is_non_historical());
        assert!(!c1.is_historical());
        let c2 = DeltaRise::new(x, 200.0);
        assert!(c2.is_historical());
        assert_eq!(c2.history_spec(), vec![(x, 2)]);
    }

    #[test]
    fn trait_objects_forward() {
        let x = VarId::new(0);
        let c: DynCondition = Arc::new(Threshold::new(x, Cmp::Gt, 10.0));
        assert_eq!(c.variables(), vec![x]);
        assert_eq!(c.degree(x), 1);
        assert_eq!(c.triggering(), Triggering::Conservative);
        let mut h = HistorySet::new([(x, 1)]);
        h.push(Update::new(x, 1, 11.0)).unwrap();
        assert!(c.eval(&h));
        let boxed: Box<dyn Condition> = Box::new(Threshold::new(x, Cmp::Gt, 10.0));
        assert!(boxed.eval(&h));
        let borrowed: &dyn Condition = &*boxed;
        assert!(borrowed.eval(&h));
    }

    #[test]
    fn triggering_display() {
        assert_eq!(Triggering::Conservative.to_string(), "conservative");
        assert_eq!(Triggering::Aggressive.to_string(), "aggressive");
    }
}
