//! Building conditions from closures.

use std::fmt;

use crate::history::HistorySet;
use crate::var::VarId;

use super::{Condition, Triggering};

/// A condition defined by a plain closure over the history set, with
/// explicitly declared metadata (variable set, degrees, triggering).
///
/// This is the escape hatch for conditions that are awkward to express
/// with the standard types or the expression language — any pure
/// function of the bounded histories qualifies (the paper's framework
/// excludes only unbounded state and wall-clock time, which a
/// [`HistorySet`] cannot smuggle in).
///
/// ```rust
/// use rcm_core::condition::{FnCondition, Condition, Triggering};
/// use rcm_core::{Evaluator, Update, VarId};
///
/// let x = VarId::new(0);
/// // "the temperature oscillated: direction changed between the last
/// // two steps" — degree 3, aggressive.
/// let zigzag = FnCondition::new(
///     "zigzag",
///     [(x, 3)],
///     Triggering::Aggressive,
///     move |h| {
///         match (h.value(x, 0), h.value(x, 1), h.value(x, 2)) {
///             (Some(a), Some(b), Some(c)) => (a - b) * (b - c) < 0.0,
///             _ => false,
///         }
///     },
/// );
/// assert_eq!(zigzag.degree(x), 3);
///
/// let mut ce = Evaluator::new(zigzag);
/// assert!(ce.ingest(Update::new(x, 1, 10.0)).is_none());
/// assert!(ce.ingest(Update::new(x, 2, 20.0)).is_none());
/// assert!(ce.ingest(Update::new(x, 3, 15.0)).is_some()); // up then down
/// ```
pub struct FnCondition<F> {
    name: String,
    spec: Vec<(VarId, usize)>,
    triggering: Triggering,
    eval: F,
}

impl<F> FnCondition<F>
where
    F: Fn(&HistorySet) -> bool + Send + Sync,
{
    /// Creates a closure condition.
    ///
    /// `spec` declares the variable set and per-variable degrees;
    /// `triggering` is the caller's classification (wrap the result in
    /// [`Conservative`](super::Conservative) instead of claiming
    /// conservativeness the closure does not implement).
    ///
    /// # Panics
    ///
    /// Panics on an empty variable set, duplicate variables, or a zero
    /// degree.
    pub fn new(
        name: impl Into<String>,
        spec: impl IntoIterator<Item = (VarId, usize)>,
        triggering: Triggering,
        eval: F,
    ) -> Self {
        let mut spec: Vec<(VarId, usize)> = spec.into_iter().collect();
        spec.sort_by_key(|(v, _)| *v);
        assert!(!spec.is_empty(), "closure condition needs at least one variable");
        for w in spec.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate variable {} in spec", w[0].0);
        }
        for (v, d) in &spec {
            assert!(*d >= 1, "degree for {v} must be at least 1");
        }
        FnCondition { name: name.into(), spec, triggering, eval }
    }
}

impl<F> fmt::Debug for FnCondition<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnCondition")
            .field("name", &self.name)
            .field("spec", &self.spec)
            .field("triggering", &self.triggering)
            .finish()
    }
}

impl<F> Condition for FnCondition<F>
where
    F: Fn(&HistorySet) -> bool + Send + Sync,
{
    fn name(&self) -> String {
        self.name.clone()
    }

    fn variables(&self) -> Vec<VarId> {
        self.spec.iter().map(|(v, _)| *v).collect()
    }

    fn degree(&self, var: VarId) -> usize {
        self.spec.iter().find(|(v, _)| *v == var).map_or(0, |(_, d)| *d)
    }

    fn triggering(&self) -> Triggering {
        self.triggering
    }

    fn eval(&self, h: &HistorySet) -> bool {
        (self.eval)(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Conservative;
    use crate::update::Update;

    fn x() -> VarId {
        VarId::new(0)
    }
    fn y() -> VarId {
        VarId::new(1)
    }

    #[test]
    fn metadata_is_declared() {
        let c = FnCondition::new("both-high", [(x(), 1), (y(), 2)], Triggering::Aggressive, |h| {
            h.value(x(), 0).unwrap_or(0.0) > 1.0 && h.value(y(), 0).unwrap_or(0.0) > 1.0
        });
        assert_eq!(c.name(), "both-high");
        assert_eq!(c.variables(), vec![x(), y()]);
        assert_eq!(c.degree(x()), 1);
        assert_eq!(c.degree(y()), 2);
        assert_eq!(c.degree(VarId::new(7)), 0);
    }

    #[test]
    fn composes_with_conservative_wrapper() {
        let raw = FnCondition::new("rise", [(x(), 2)], Triggering::Aggressive, |h| {
            match (h.value(x(), 0), h.value(x(), 1)) {
                (Some(a), Some(b)) => a > b,
                _ => false,
            }
        });
        let cons = Conservative::new(raw);
        let mut h = HistorySet::new([(x(), 2)]);
        h.push(Update::new(x(), 1, 1.0)).unwrap();
        h.push(Update::new(x(), 3, 2.0)).unwrap(); // gap
        assert!(!cons.eval(&h));
        assert_eq!(cons.triggering(), Triggering::Conservative);
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn empty_spec_rejected() {
        FnCondition::new("bad", Vec::<(VarId, usize)>::new(), Triggering::Aggressive, |_| true);
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_vars_rejected() {
        FnCondition::new("bad", [(x(), 1), (x(), 2)], Triggering::Aggressive, |_| true);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_degree_rejected() {
        FnCondition::new("bad", [(x(), 0)], Triggering::Aggressive, |_| true);
    }
}
