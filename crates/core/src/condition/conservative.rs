//! The conservative-triggering wrapper.

use crate::history::HistorySet;
use crate::var::VarId;

use super::{Condition, Triggering};

/// Turns any condition into its conservative variant: the wrapped
/// condition is additionally required to see **consecutive** seqnos in
/// every history, so it evaluates to false whenever an update in the
/// window was lost (paper §2).
///
/// The paper's `c3` ("temperature has risen more than 200 degrees since
/// the last reading *taken at the DM*") is exactly
/// `Conservative::new(DeltaRise::new(x, 200.0))`: it conjoins the
/// seqno-consecutiveness check
/// `H_x[0].seqno = H_x[-1].seqno + 1` onto `c2`.
///
/// ```rust
/// use rcm_core::condition::{Conservative, DeltaRise, Condition, Triggering};
/// use rcm_core::{HistorySet, Update, VarId};
/// let x = VarId::new(0);
/// let c3 = Conservative::new(DeltaRise::new(x, 200.0));
/// assert_eq!(c3.triggering(), Triggering::Conservative);
///
/// let mut h = HistorySet::new([(x, 2)]);
/// h.push(Update::new(x, 1, 400.0))?;
/// h.push(Update::new(x, 3, 720.0))?; // update 2 lost
/// assert!(!c3.eval(&h)); // c2 would fire here; c3 detects the gap
/// # Ok::<(), rcm_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Conservative<C> {
    inner: C,
}

impl<C: Condition> Conservative<C> {
    /// Wraps `inner` with consecutiveness checks on every variable.
    pub fn new(inner: C) -> Self {
        Conservative { inner }
    }

    /// The wrapped condition.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// A reference to the wrapped condition.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Condition> Condition for Conservative<C> {
    fn name(&self) -> String {
        format!("conservative({})", self.inner.name())
    }

    fn variables(&self) -> Vec<VarId> {
        self.inner.variables()
    }

    fn degree(&self, var: VarId) -> usize {
        self.inner.degree(var)
    }

    fn triggering(&self) -> Triggering {
        Triggering::Conservative
    }

    fn eval(&self, h: &HistorySet) -> bool {
        h.is_consecutive() && self.inner.eval(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Cmp, DeltaRise, Threshold};
    use crate::update::Update;

    fn x() -> VarId {
        VarId::new(0)
    }

    #[test]
    fn c3_requires_consecutive_seqnos() {
        let c3 = Conservative::new(DeltaRise::new(x(), 200.0));
        let mut h = HistorySet::new([(x(), 2)]);
        h.push(Update::new(x(), 1, 1000.0)).unwrap();
        h.push(Update::new(x(), 2, 1500.0)).unwrap();
        assert!(c3.eval(&h)); // consecutive, rise of 500
        let mut h2 = HistorySet::new([(x(), 2)]);
        h2.push(Update::new(x(), 1, 1000.0)).unwrap();
        h2.push(Update::new(x(), 3, 1500.0)).unwrap();
        assert!(!c3.eval(&h2)); // same rise but gap at 2
    }

    #[test]
    fn wrapping_non_historical_is_harmless() {
        // A degree-1 history is always consecutive, so wrapping a
        // threshold changes nothing but the classification label.
        let c = Conservative::new(Threshold::new(x(), Cmp::Gt, 10.0));
        let mut h = HistorySet::new([(x(), 1)]);
        h.push(Update::new(x(), 5, 11.0)).unwrap();
        assert!(c.eval(&h));
        assert_eq!(c.degree(x()), 1);
    }

    #[test]
    fn accessors_and_name() {
        let c = Conservative::new(DeltaRise::new(x(), 200.0));
        assert!(c.name().starts_with("conservative("));
        assert_eq!(c.inner(), &DeltaRise::new(x(), 200.0));
        assert_eq!(c.into_inner(), DeltaRise::new(x(), 200.0));
    }
}
