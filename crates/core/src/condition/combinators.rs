//! Boolean combinators over conditions.
//!
//! The paper's Appendix D reduces two co-located conditions `A` and `B`
//! to the single combined condition `C = A ∨ B`; [`Or`] implements that
//! construction. [`And`] and [`Not`] round out the algebra.
//!
//! The `triggering()` classification of a combinator is derived
//! soundly from its children:
//!
//! * a **non-historical** combination is conservative vacuously;
//! * `And` is conservative iff every variable of the combined set is
//!   covered by some conservative child that mentions it (that child
//!   goes false on a gap, taking the conjunction with it);
//! * `Or` is conservative iff all children are conservative *and*
//!   mention the full combined variable set (a gap must silence every
//!   disjunct);
//! * `Not` of a historical condition is aggressive (negating a
//!   gap-silenced condition yields true on gaps).

use crate::history::HistorySet;
use crate::seq::ordered_union;
use crate::var::VarId;

use super::{Condition, ConditionExt, Triggering};

/// Conjunction of two conditions.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct And<A, B> {
    a: A,
    b: B,
}

impl<A: Condition, B: Condition> And<A, B> {
    /// Creates `a && b`.
    pub fn new(a: A, b: B) -> Self {
        And { a, b }
    }
}

fn union_vars(a: &impl Condition, b: &impl Condition) -> Vec<VarId> {
    ordered_union(&a.variables(), &b.variables())
}

impl<A: Condition, B: Condition> Condition for And<A, B> {
    fn name(&self) -> String {
        format!("({}) && ({})", self.a.name(), self.b.name())
    }

    fn variables(&self) -> Vec<VarId> {
        union_vars(&self.a, &self.b)
    }

    fn degree(&self, var: VarId) -> usize {
        self.a.degree(var).max(self.b.degree(var))
    }

    fn triggering(&self) -> Triggering {
        if self.is_non_historical() {
            return Triggering::Conservative;
        }
        let conservative = self.variables().into_iter().all(|v| {
            (self.a.triggering() == Triggering::Conservative && self.a.degree(v) > 0)
                || (self.b.triggering() == Triggering::Conservative && self.b.degree(v) > 0)
        });
        if conservative {
            Triggering::Conservative
        } else {
            Triggering::Aggressive
        }
    }

    fn eval(&self, h: &HistorySet) -> bool {
        self.a.eval(h) && self.b.eval(h)
    }
}

/// Disjunction of two conditions (Appendix D's `C = A ∨ B`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Or<A, B> {
    a: A,
    b: B,
}

impl<A: Condition, B: Condition> Or<A, B> {
    /// Creates `a || b`.
    pub fn new(a: A, b: B) -> Self {
        Or { a, b }
    }
}

impl<A: Condition, B: Condition> Condition for Or<A, B> {
    fn name(&self) -> String {
        format!("({}) || ({})", self.a.name(), self.b.name())
    }

    fn variables(&self) -> Vec<VarId> {
        union_vars(&self.a, &self.b)
    }

    fn degree(&self, var: VarId) -> usize {
        self.a.degree(var).max(self.b.degree(var))
    }

    fn triggering(&self) -> Triggering {
        if self.is_non_historical() {
            return Triggering::Conservative;
        }
        let all = self.variables();
        let covers_all = |c: &dyn Condition| all.iter().all(|&v| c.degree(v) > 0);
        if self.a.triggering() == Triggering::Conservative
            && self.b.triggering() == Triggering::Conservative
            && covers_all(&self.a)
            && covers_all(&self.b)
        {
            Triggering::Conservative
        } else {
            Triggering::Aggressive
        }
    }

    fn eval(&self, h: &HistorySet) -> bool {
        self.a.eval(h) || self.b.eval(h)
    }
}

/// Negation of a condition.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Not<C> {
    inner: C,
}

impl<C: Condition> Not<C> {
    /// Creates `!inner`.
    pub fn new(inner: C) -> Self {
        Not { inner }
    }
}

impl<C: Condition> Condition for Not<C> {
    fn name(&self) -> String {
        format!("!({})", self.inner.name())
    }

    fn variables(&self) -> Vec<VarId> {
        self.inner.variables()
    }

    fn degree(&self, var: VarId) -> usize {
        self.inner.degree(var)
    }

    fn triggering(&self) -> Triggering {
        if self.is_non_historical() {
            Triggering::Conservative
        } else {
            Triggering::Aggressive
        }
    }

    fn eval(&self, h: &HistorySet) -> bool {
        !self.inner.eval(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Cmp, Conservative, DeltaRise, Threshold};
    use crate::update::Update;

    fn x() -> VarId {
        VarId::new(0)
    }
    fn y() -> VarId {
        VarId::new(1)
    }

    #[test]
    fn and_or_not_eval() {
        let hot = Threshold::new(x(), Cmp::Gt, 100.0);
        let cold = Threshold::new(x(), Cmp::Lt, 0.0);
        let mut h = HistorySet::new([(x(), 1)]);
        h.push(Update::new(x(), 1, 150.0)).unwrap();
        assert!(Or::new(hot.clone(), cold.clone()).eval(&h));
        assert!(!And::new(hot.clone(), cold.clone()).eval(&h));
        assert!(!Not::new(hot).eval(&h));
        assert!(Not::new(cold).eval(&h));
    }

    #[test]
    fn variable_sets_union_and_degrees_max() {
        let a = Threshold::new(x(), Cmp::Gt, 1.0);
        let b = DeltaRise::new(y(), 5.0);
        let c = And::new(a, b);
        assert_eq!(c.variables(), vec![x(), y()]);
        assert_eq!(c.degree(x()), 1);
        assert_eq!(c.degree(y()), 2);
        assert_eq!(c.degree(VarId::new(9)), 0);
    }

    #[test]
    fn appendix_d_disjunction() {
        // A: "x hotter than y", B: "y hotter than x"; C = A ∨ B.
        // Both raise from 2000 to 2100; interleaving decides which fires,
        // but C fires whenever either does.
        let a = AbsGt::new(x(), y());
        let b = AbsGt::new(y(), x());
        let c = Or::new(a, b);
        let mut h = HistorySet::new([(x(), 1), (y(), 1)]);
        h.push(Update::new(x(), 1, 2000.0)).unwrap();
        h.push(Update::new(y(), 1, 2000.0)).unwrap();
        assert!(!c.eval(&h));
        h.push(Update::new(x(), 2, 2100.0)).unwrap();
        assert!(c.eval(&h)); // x saw its change first → A fires → C fires
        h.push(Update::new(y(), 2, 2100.0)).unwrap();
        assert!(!c.eval(&h)); // equal again
    }

    /// "left's current value exceeds right's" helper for the Appendix D test.
    #[derive(Debug, Clone, PartialEq)]
    struct AbsGt {
        l: VarId,
        r: VarId,
    }

    impl AbsGt {
        fn new(l: VarId, r: VarId) -> Self {
            AbsGt { l, r }
        }
    }

    impl Condition for AbsGt {
        fn name(&self) -> String {
            format!("{} > {}", self.l, self.r)
        }
        fn variables(&self) -> Vec<VarId> {
            let mut v = vec![self.l, self.r];
            v.sort_unstable();
            v
        }
        fn degree(&self, var: VarId) -> usize {
            usize::from(var == self.l || var == self.r)
        }
        fn triggering(&self) -> Triggering {
            Triggering::Conservative
        }
        fn eval(&self, h: &HistorySet) -> bool {
            match (h.value(self.l, 0), h.value(self.r, 0)) {
                (Some(a), Some(b)) => a > b,
                _ => false,
            }
        }
    }

    #[test]
    fn triggering_classification() {
        let cons = Conservative::new(DeltaRise::new(x(), 1.0));
        let aggr = DeltaRise::new(x(), 1.0);
        // And with a conservative child covering the only variable.
        assert_eq!(And::new(cons.clone(), aggr.clone()).triggering(), Triggering::Conservative);
        // Or of conservative+aggressive over the same variable: aggressive.
        assert_eq!(Or::new(cons.clone(), aggr.clone()).triggering(), Triggering::Aggressive);
        // Or of two conservatives over the same variable set: conservative.
        assert_eq!(Or::new(cons.clone(), cons.clone()).triggering(), Triggering::Conservative);
        // Or of conservatives over different variables: a gap in x silences
        // only the x disjunct → aggressive.
        let cons_y = Conservative::new(DeltaRise::new(y(), 1.0));
        assert_eq!(Or::new(cons.clone(), cons_y).triggering(), Triggering::Aggressive);
        // Not of a historical condition: aggressive.
        assert_eq!(Not::new(cons).triggering(), Triggering::Aggressive);
        // Non-historical combinations are conservative vacuously.
        let t = Threshold::new(x(), Cmp::Gt, 1.0);
        assert_eq!(Not::new(t.clone()).triggering(), Triggering::Conservative);
        assert_eq!(And::new(t.clone(), t).triggering(), Triggering::Conservative);
    }

    #[test]
    fn names_nest() {
        let t = Threshold::new(x(), Cmp::Gt, 1.0);
        let n = Not::new(Or::new(t.clone(), t));
        assert!(n.name().starts_with("!(("));
    }
}
