//! Ready-made conditions, including every concrete condition used in
//! the paper's examples.

use serde::{Deserialize, Serialize};

use crate::history::HistorySet;
use crate::var::VarId;

use super::{Condition, Triggering};

/// Comparison operator for [`Threshold`] and friends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl Cmp {
    /// Applies the comparison to two values.
    pub fn apply(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
        }
    }

    /// Source-level symbol (`<`, `<=`, …).
    pub fn symbol(self) -> &'static str {
        match self {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
        }
    }
}

/// The paper's `c1` family: "current value compares against a limit",
/// e.g. *reactor temperature is over 3000 degrees*.
///
/// Non-historical: degree 1 in its single variable.
///
/// ```rust
/// use rcm_core::condition::{Threshold, Cmp, Condition};
/// use rcm_core::{HistorySet, Update, VarId};
/// let x = VarId::new(0);
/// let c1 = Threshold::new(x, Cmp::Gt, 3000.0);
/// let mut h = HistorySet::new([(x, 1)]);
/// h.push(Update::new(x, 1, 2900.0))?;
/// assert!(!c1.eval(&h));
/// h.push(Update::new(x, 2, 3100.0))?;
/// assert!(c1.eval(&h));
/// # Ok::<(), rcm_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Threshold {
    var: VarId,
    cmp: Cmp,
    limit: f64,
}

impl Threshold {
    /// Creates a threshold condition `H_var[0].value <cmp> limit`.
    pub fn new(var: VarId, cmp: Cmp, limit: f64) -> Self {
        Threshold { var, cmp, limit }
    }
}

impl Condition for Threshold {
    fn name(&self) -> String {
        format!("{}[0].value {} {}", self.var, self.cmp.symbol(), self.limit)
    }

    fn variables(&self) -> Vec<VarId> {
        vec![self.var]
    }

    fn degree(&self, var: VarId) -> usize {
        usize::from(var == self.var)
    }

    fn triggering(&self) -> Triggering {
        // Non-historical: conservative vacuously.
        Triggering::Conservative
    }

    fn eval(&self, h: &HistorySet) -> bool {
        h.value(self.var, 0).is_some_and(|v| self.cmp.apply(v, self.limit))
    }
}

/// The paper's `c2`: *value has risen by more than `delta` since the
/// last reading **received*** — `H_x[0].value − H_x[-1].value > delta`.
///
/// Historical of degree 2 and **aggressively** triggered: it does not
/// check that the two readings are consecutive, so after a lost update
/// it compares against an older value. Use
/// [`Conservative`](super::Conservative)`::new(DeltaRise::new(..))` for
/// the paper's `c3` (rise since the last reading *taken at the DM*).
///
/// Negative `delta` thresholds detect drops (evaluate the rise of the
/// negated series instead: wrap values upstream or use the expression
/// language for asymmetric cases).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaRise {
    var: VarId,
    delta: f64,
}

impl DeltaRise {
    /// Creates the condition `H_var[0].value − H_var[-1].value > delta`.
    pub fn new(var: VarId, delta: f64) -> Self {
        DeltaRise { var, delta }
    }
}

impl Condition for DeltaRise {
    fn name(&self) -> String {
        format!("{v}[0].value - {v}[-1].value > {}", self.delta, v = self.var)
    }

    fn variables(&self) -> Vec<VarId> {
        vec![self.var]
    }

    fn degree(&self, var: VarId) -> usize {
        if var == self.var {
            2
        } else {
            0
        }
    }

    fn triggering(&self) -> Triggering {
        Triggering::Aggressive
    }

    fn eval(&self, h: &HistorySet) -> bool {
        match (h.value(self.var, 0), h.value(self.var, 1)) {
            (Some(cur), Some(prev)) => cur - prev > self.delta,
            _ => false,
        }
    }
}

/// The paper's `cm` (§5, Theorem 10): *the absolute difference between
/// two variables exceeds a limit* —
/// `|H_x[0].value − H_y[0].value| > limit`.
///
/// Non-historical in both variables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbsDifference {
    x: VarId,
    y: VarId,
    limit: f64,
}

impl AbsDifference {
    /// Creates the condition `|H_x[0].value − H_y[0].value| > limit`.
    ///
    /// # Panics
    ///
    /// Panics if `x == y`; a one-variable difference is always zero.
    pub fn new(x: VarId, y: VarId, limit: f64) -> Self {
        assert!(x != y, "AbsDifference requires two distinct variables");
        AbsDifference { x, y, limit }
    }
}

impl Condition for AbsDifference {
    fn name(&self) -> String {
        format!("|{}[0].value - {}[0].value| > {}", self.x, self.y, self.limit)
    }

    fn variables(&self) -> Vec<VarId> {
        let mut v = vec![self.x, self.y];
        v.sort_unstable();
        v
    }

    fn degree(&self, var: VarId) -> usize {
        usize::from(var == self.x || var == self.y)
    }

    fn triggering(&self) -> Triggering {
        Triggering::Conservative
    }

    fn eval(&self, h: &HistorySet) -> bool {
        match (h.value(self.x, 0), h.value(self.y, 0)) {
            (Some(a), Some(b)) => (a - b).abs() > self.limit,
            _ => false,
        }
    }
}

/// *Value is outside the closed band `[lo, hi]`* — a two-sided
/// threshold, non-historical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Band {
    var: VarId,
    lo: f64,
    hi: f64,
}

impl Band {
    /// Creates the condition `H_var[0].value < lo || H_var[0].value > hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn outside(var: VarId, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "band bounds must satisfy lo <= hi");
        Band { var, lo, hi }
    }
}

impl Condition for Band {
    fn name(&self) -> String {
        format!("{v}[0].value outside [{}, {}]", self.lo, self.hi, v = self.var)
    }

    fn variables(&self) -> Vec<VarId> {
        vec![self.var]
    }

    fn degree(&self, var: VarId) -> usize {
        usize::from(var == self.var)
    }

    fn triggering(&self) -> Triggering {
        Triggering::Conservative
    }

    fn eval(&self, h: &HistorySet) -> bool {
        h.value(self.var, 0).is_some_and(|v| v < self.lo || v > self.hi)
    }
}

/// *Value crossed a level from below between the previous and current
/// reading received* — `H[-1].value < level && H[0].value >= level`.
///
/// Historical of degree 2, aggressively triggered (wrap in
/// [`Conservative`](super::Conservative) to require adjacent readings).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossesLevel {
    var: VarId,
    level: f64,
}

impl CrossesLevel {
    /// Creates the upward level-crossing condition.
    pub fn new(var: VarId, level: f64) -> Self {
        CrossesLevel { var, level }
    }
}

impl Condition for CrossesLevel {
    fn name(&self) -> String {
        format!("{v} crosses {} upward", self.level, v = self.var)
    }

    fn variables(&self) -> Vec<VarId> {
        vec![self.var]
    }

    fn degree(&self, var: VarId) -> usize {
        if var == self.var {
            2
        } else {
            0
        }
    }

    fn triggering(&self) -> Triggering {
        Triggering::Aggressive
    }

    fn eval(&self, h: &HistorySet) -> bool {
        match (h.value(self.var, 0), h.value(self.var, 1)) {
            (Some(cur), Some(prev)) => prev < self.level && cur >= self.level,
            _ => false,
        }
    }
}

/// The introduction's stock example: *sharp price drop*, defined as a
/// greater-than-`fraction` relative drop between two quotes received in
/// a row — `(H[-1].value − H[0].value) / H[-1].value > fraction`.
///
/// Historical of degree 2, aggressively triggered — exactly the
/// behaviour that produces the paper's §1 "two drops instead of one"
/// confusion when replicas miss different quotes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharpDrop {
    var: VarId,
    fraction: f64,
}

impl SharpDrop {
    /// Creates a sharp-drop condition; `fraction` is relative (0.2 =
    /// twenty percent).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1`.
    pub fn new(var: VarId, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction < 1.0, "drop fraction must be strictly between 0 and 1");
        SharpDrop { var, fraction }
    }
}

impl Condition for SharpDrop {
    fn name(&self) -> String {
        format!("{v} drops more than {}%", self.fraction * 100.0, v = self.var)
    }

    fn variables(&self) -> Vec<VarId> {
        vec![self.var]
    }

    fn degree(&self, var: VarId) -> usize {
        if var == self.var {
            2
        } else {
            0
        }
    }

    fn triggering(&self) -> Triggering {
        Triggering::Aggressive
    }

    fn eval(&self, h: &HistorySet) -> bool {
        match (h.value(self.var, 0), h.value(self.var, 1)) {
            (Some(cur), Some(prev)) if prev > 0.0 => (prev - cur) / prev > self.fraction,
            _ => false,
        }
    }
}

/// *Value has stayed above a level for the last `k` readings received*
/// — the debounced alarm every real deployment wants (a single noisy
/// reading does not page anyone).
///
/// Historical of degree `k`, aggressively triggered: after loss it
/// judges the last `k` readings it *received*. Wrap in
/// [`Conservative`](super::Conservative) to demand `k` *consecutive*
/// readings instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SustainedAbove {
    var: VarId,
    level: f64,
    window: usize,
}

impl SustainedAbove {
    /// Creates the condition: every one of the last `window` readings
    /// exceeds `level`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(var: VarId, level: f64, window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        SustainedAbove { var, level, window }
    }
}

impl Condition for SustainedAbove {
    fn name(&self) -> String {
        format!("{v} above {} for {} readings", self.level, self.window, v = self.var)
    }

    fn variables(&self) -> Vec<VarId> {
        vec![self.var]
    }

    fn degree(&self, var: VarId) -> usize {
        if var == self.var {
            self.window
        } else {
            0
        }
    }

    fn triggering(&self) -> Triggering {
        if self.window == 1 {
            Triggering::Conservative // non-historical
        } else {
            Triggering::Aggressive
        }
    }

    fn eval(&self, h: &HistorySet) -> bool {
        (0..self.window).all(|i| h.value(self.var, i).is_some_and(|v| v > self.level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistorySet;
    use crate::update::Update;

    fn x() -> VarId {
        VarId::new(0)
    }
    fn y() -> VarId {
        VarId::new(1)
    }

    fn hist1(vals: &[(u64, f64)]) -> HistorySet {
        let mut h = HistorySet::new([(x(), 1)]);
        for &(s, v) in vals {
            h.push(Update::new(x(), s, v)).unwrap();
        }
        h
    }

    fn hist2(vals: &[(u64, f64)]) -> HistorySet {
        let mut h = HistorySet::new([(x(), 2)]);
        for &(s, v) in vals {
            h.push(Update::new(x(), s, v)).unwrap();
        }
        h
    }

    #[test]
    fn cmp_all_operators() {
        assert!(Cmp::Lt.apply(1.0, 2.0) && !Cmp::Lt.apply(2.0, 2.0));
        assert!(Cmp::Le.apply(2.0, 2.0) && !Cmp::Le.apply(3.0, 2.0));
        assert!(Cmp::Gt.apply(3.0, 2.0) && !Cmp::Gt.apply(2.0, 2.0));
        assert!(Cmp::Ge.apply(2.0, 2.0) && !Cmp::Ge.apply(1.0, 2.0));
        assert!(Cmp::Eq.apply(2.0, 2.0) && !Cmp::Eq.apply(1.0, 2.0));
        assert!(Cmp::Ne.apply(1.0, 2.0) && !Cmp::Ne.apply(2.0, 2.0));
    }

    #[test]
    fn threshold_matches_c1() {
        let c1 = Threshold::new(x(), Cmp::Gt, 3000.0);
        assert!(!c1.eval(&hist1(&[(1, 2900.0)])));
        assert!(c1.eval(&hist1(&[(1, 2900.0), (2, 3100.0)])));
        assert_eq!(c1.degree(x()), 1);
        assert_eq!(c1.degree(y()), 0);
    }

    #[test]
    fn delta_rise_matches_c2() {
        // c2 from the proof of Theorem 4: U = ⟨1(400), 2(700), 3(720)⟩.
        let c2 = DeltaRise::new(x(), 200.0);
        // CE1 sees 1,2: 700-400 = 300 > 200 → alert.
        assert!(c2.eval(&hist2(&[(1, 400.0), (2, 700.0)])));
        // CE1 then 2,3: 720-700 = 20 → no alert.
        assert!(!c2.eval(&hist2(&[(1, 400.0), (2, 700.0), (3, 720.0)])));
        // CE2 sees 1,3 (missed 2): 720-400 = 320 > 200 → aggressive alert.
        assert!(c2.eval(&hist2(&[(1, 400.0), (3, 720.0)])));
        assert_eq!(c2.triggering(), Triggering::Aggressive);
    }

    #[test]
    fn delta_rise_undefined_history_is_false() {
        let c2 = DeltaRise::new(x(), 200.0);
        assert!(!c2.eval(&hist2(&[(1, 1000.0)])));
    }

    #[test]
    fn abs_difference_matches_cm() {
        // Theorem 10: |x - y| > 100 over 1x(1000), 2x(1200), 1y(1050), 2y(1150).
        let cm = AbsDifference::new(x(), y(), 100.0);
        let mut h = HistorySet::new([(x(), 1), (y(), 1)]);
        h.push(Update::new(x(), 1, 1000.0)).unwrap();
        h.push(Update::new(y(), 1, 1050.0)).unwrap();
        assert!(!cm.eval(&h)); // |1000-1050| = 50
        h.push(Update::new(x(), 2, 1200.0)).unwrap();
        assert!(cm.eval(&h)); // |1200-1050| = 150
        h.push(Update::new(y(), 2, 1150.0)).unwrap();
        assert!(!cm.eval(&h)); // |1200-1150| = 50
        assert_eq!(cm.variables(), vec![x(), y()]);
    }

    #[test]
    #[should_panic(expected = "distinct variables")]
    fn abs_difference_rejects_same_var() {
        AbsDifference::new(x(), x(), 1.0);
    }

    #[test]
    fn band_outside() {
        let b = Band::outside(x(), 10.0, 20.0);
        assert!(b.eval(&hist1(&[(1, 9.0)])));
        assert!(!b.eval(&hist1(&[(1, 10.0)])));
        assert!(!b.eval(&hist1(&[(1, 15.0)])));
        assert!(!b.eval(&hist1(&[(1, 20.0)])));
        assert!(b.eval(&hist1(&[(1, 21.0)])));
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn band_rejects_inverted_bounds() {
        Band::outside(x(), 5.0, 1.0);
    }

    #[test]
    fn crosses_level_only_on_upward_crossing() {
        let c = CrossesLevel::new(x(), 100.0);
        assert!(c.eval(&hist2(&[(1, 90.0), (2, 105.0)])));
        assert!(!c.eval(&hist2(&[(1, 105.0), (2, 110.0)]))); // already above
        assert!(!c.eval(&hist2(&[(1, 105.0), (2, 90.0)]))); // downward
        assert!(c.eval(&hist2(&[(1, 90.0), (2, 100.0)]))); // lands exactly on level
    }

    #[test]
    fn sharp_drop_matches_intro_example() {
        // §1: quotes 100, 50 → >20% drop alert at CE1; CE2 misses the 50
        // and alerts on 100 → 52 instead.
        let c = SharpDrop::new(x(), 0.2);
        assert!(c.eval(&hist2(&[(1, 100.0), (2, 50.0)])));
        assert!(!c.eval(&hist2(&[(1, 100.0), (2, 50.0), (3, 52.0)]))); // 50→52 rises
        assert!(c.eval(&hist2(&[(1, 100.0), (3, 52.0)]))); // aggressive: 100→52
    }

    #[test]
    #[should_panic(expected = "between 0 and 1")]
    fn sharp_drop_rejects_bad_fraction() {
        SharpDrop::new(x(), 1.5);
    }

    #[test]
    fn sustained_above_debounces() {
        let c = SustainedAbove::new(x(), 100.0, 3);
        let mut h = HistorySet::new([(x(), 3)]);
        h.push(Update::new(x(), 1, 150.0)).unwrap();
        h.push(Update::new(x(), 2, 90.0)).unwrap(); // dip
        h.push(Update::new(x(), 3, 160.0)).unwrap();
        assert!(!c.eval(&h)); // the dip is still in the window
        h.push(Update::new(x(), 4, 170.0)).unwrap();
        h.push(Update::new(x(), 5, 180.0)).unwrap();
        assert!(c.eval(&h)); // 160, 170, 180 all above
        assert_eq!(c.degree(x()), 3);
        assert_eq!(c.triggering(), Triggering::Aggressive);
    }

    #[test]
    fn sustained_above_window_one_is_threshold() {
        let c = SustainedAbove::new(x(), 10.0, 1);
        assert!(c.eval(&hist1(&[(1, 11.0)])));
        assert!(!c.eval(&hist1(&[(1, 9.0)])));
        assert_eq!(c.triggering(), Triggering::Conservative);
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn sustained_above_rejects_zero_window() {
        SustainedAbove::new(x(), 1.0, 0);
    }

    #[test]
    fn names_are_descriptive() {
        assert!(Threshold::new(x(), Cmp::Gt, 3000.0).name().contains("> 3000"));
        assert!(DeltaRise::new(x(), 200.0).name().contains("200"));
        assert!(AbsDifference::new(x(), y(), 100.0).name().contains("100"));
        assert!(SharpDrop::new(x(), 0.2).name().contains("20%"));
    }
}
