//! Alerts: `a(condname, histories)` tuples sent by Condition Evaluators
//! to the Alert Displayer.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::inline::InlineVec;
use crate::update::{SeqNo, Update};
use crate::var::VarId;

/// Inline seqno buffer sized for the paper's histories: degree is 1–3
/// in every scenario the paper (and our simulator) considers, so the
/// common case stores the whole list in the fingerprint itself with no
/// heap allocation. Deeper histories transparently spill to the heap.
pub type SeqBuf = InlineVec<SeqNo, 3>;

/// Inline entry list for [`HistoryFingerprint`]: conditions mention
/// 1–3 variables in all paper scenarios.
type FpEntries = InlineVec<(VarId, SeqBuf), 3>;

/// Identifier of a monitored condition (the paper's `condname`).
///
/// Single-condition systems use [`CondId::SINGLE`]; multi-condition
/// systems (paper Appendix D) assign one id per condition so the AD can
/// demultiplex alert streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CondId(u32);

impl CondId {
    /// The id conventionally used when only one condition is monitored.
    pub const SINGLE: CondId = CondId(0);

    /// Creates a condition id from a raw index.
    pub const fn new(index: u32) -> Self {
        CondId(index)
    }

    /// Returns the raw index backing this id.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for CondId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of a Condition Evaluator replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CeId(u32);

impl CeId {
    /// Creates a CE id from a raw index.
    pub const fn new(index: u32) -> Self {
        CeId(index)
    }

    /// Returns the raw index backing this id.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for CeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CE{}", self.0)
    }
}

/// Provenance of an alert: which CE replica emitted it and at which
/// position in that replica's output stream.
///
/// Provenance is *not* part of alert identity — the paper considers two
/// alerts identical when their history sets `H` are equal, regardless of
/// which replica produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AlertId {
    /// Emitting replica.
    pub ce: CeId,
    /// Zero-based position in the replica's output stream.
    pub index: u64,
}

impl fmt::Display for AlertId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.ce, self.index)
    }
}

/// Why a `(variable, seqnos)` set is not a well-formed history set.
///
/// Returned by [`HistoryFingerprint::try_new`], the validating
/// constructor used when fingerprints are built from untrusted input
/// (e.g. the binary wire decoder) where the panicking constructors
/// would turn hostile bytes into a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FingerprintError {
    /// The same variable appeared in two entries.
    DuplicateVariable(VarId),
    /// A variable carried no seqnos at all.
    EmptyHistory(VarId),
    /// A seqno list was not strictly decreasing (newest first).
    UnorderedHistory(VarId),
}

impl fmt::Display for FingerprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FingerprintError::DuplicateVariable(v) => {
                write!(f, "duplicate variable {v} in fingerprint")
            }
            FingerprintError::EmptyHistory(v) => write!(f, "empty history for variable {v}"),
            FingerprintError::UnorderedHistory(v) => {
                write!(f, "history seqnos for {v} must be strictly decreasing (newest first)")
            }
        }
    }
}

impl std::error::Error for FingerprintError {}

/// The update histories an alert triggered on, reduced to sequence
/// numbers: one newest-first seqno list per variable, sorted by variable.
///
/// This is the paper's `a.H` as far as identity is concerned: AD-1
/// considers two alerts identical iff their history sets are the same,
/// and the consistency algorithms (AD-3/AD-6) work entirely on the
/// seqnos. Values are excluded because an update is a full snapshot —
/// two CEs receiving update `i_x` necessarily saw the same value, so the
/// seqnos determine the values.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct HistoryFingerprint {
    /// `(variable, seqnos newest-first)` entries sorted by variable,
    /// stored inline (no heap) for up to 3 variables of degree ≤ 3.
    entries: FpEntries,
}

impl HistoryFingerprint {
    /// Builds a fingerprint from `(variable, newest-first seqnos)` pairs.
    ///
    /// Entries are sorted by variable so equal history sets compare equal
    /// regardless of insertion order.
    ///
    /// # Panics
    ///
    /// Panics if a variable appears twice or a seqno list is empty or not
    /// strictly decreasing (newest first).
    pub fn new(entries: Vec<(VarId, Vec<SeqNo>)>) -> Self {
        Self::from_entries(entries.into_iter().map(|(v, s)| (v, SeqBuf::from(s))))
    }

    /// Builds a fingerprint from `(variable, newest-first seqnos)` pairs
    /// already in inline-buffer form — the allocation-free construction
    /// path used by the evaluator's hot loop. Same validation and
    /// sorting as [`HistoryFingerprint::new`].
    ///
    /// # Panics
    ///
    /// Panics if a variable appears twice or a seqno list is empty or not
    /// strictly decreasing (newest first).
    pub fn from_entries(entries: impl IntoIterator<Item = (VarId, SeqBuf)>) -> Self {
        match Self::try_from_entries(entries) {
            Ok(fp) => fp,
            Err(e) => panic!("{e}"),
        }
    }

    /// The non-panicking twin of [`HistoryFingerprint::new`]: validates
    /// `(variable, newest-first seqnos)` pairs and reports malformed
    /// input instead of crashing. This is the construction path for
    /// fingerprints decoded from untrusted bytes.
    ///
    /// # Errors
    ///
    /// [`FingerprintError`] when a variable appears twice, a history is
    /// empty, or a seqno list is not strictly decreasing.
    pub fn try_new(entries: Vec<(VarId, Vec<SeqNo>)>) -> Result<Self, FingerprintError> {
        Self::try_from_entries(entries.into_iter().map(|(v, s)| (v, SeqBuf::from(s))))
    }

    /// Validating construction from inline-buffer entries; see
    /// [`HistoryFingerprint::try_new`].
    ///
    /// # Errors
    ///
    /// [`FingerprintError`] when a variable appears twice, a history is
    /// empty, or a seqno list is not strictly decreasing.
    pub fn try_from_entries(
        entries: impl IntoIterator<Item = (VarId, SeqBuf)>,
    ) -> Result<Self, FingerprintError> {
        let mut entries: FpEntries = entries.into_iter().collect();
        entries.as_mut_slice().sort_by_key(|(v, _)| *v);
        for w in entries.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(FingerprintError::DuplicateVariable(w[0].0));
            }
        }
        for (v, seqnos) in &entries {
            if seqnos.is_empty() {
                return Err(FingerprintError::EmptyHistory(*v));
            }
            if !seqnos.windows(2).all(|w| w[0] > w[1]) {
                return Err(FingerprintError::UnorderedHistory(*v));
            }
        }
        Ok(HistoryFingerprint { entries })
    }

    /// Fingerprint over a single variable; `seqnos` newest-first.
    pub fn single(var: VarId, seqnos: Vec<SeqNo>) -> Self {
        Self::from_entries([(var, SeqBuf::from(seqnos))])
    }

    /// The paper's `a.seqno.x`: the newest seqno for `var`, i.e. the
    /// seqno of the last `var`-update received when the alert triggered.
    pub fn seqno(&self, var: VarId) -> Option<SeqNo> {
        self.entries.iter().find(|(v, _)| *v == var).and_then(|(_, s)| s.first().copied())
    }

    /// Newest-first seqnos recorded for `var`.
    pub fn seqnos(&self, var: VarId) -> Option<&[SeqNo]> {
        self.entries.iter().find(|(v, _)| *v == var).map(|(_, s)| s.as_slice())
    }

    /// Variables covered by this fingerprint, in ascending order.
    pub fn variables(&self) -> impl Iterator<Item = VarId> + '_ {
        self.entries.iter().map(|(v, _)| *v)
    }

    /// Iterates over `(variable, newest-first seqnos)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &[SeqNo])> {
        self.entries.iter().map(|(v, s)| (*v, s.as_slice()))
    }

    /// Whether the seqnos for every variable are consecutive (no gaps),
    /// i.e. whether a conservative condition could have triggered on
    /// these histories.
    pub fn is_consecutive(&self) -> bool {
        self.entries.iter().all(|(_, seqnos)| seqnos.windows(2).all(|w| w[1].precedes(w[0])))
    }
}

impl fmt::Display for HistoryFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, seqnos)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}:[")?;
            for (j, s) in seqnos.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{s}")?;
            }
            write!(f, "]")?;
        }
        write!(f, "}}")
    }
}

/// An alert `a(condname, histories)` emitted by a Condition Evaluator.
///
/// Identity follows the paper: two alerts are equal iff they are for the
/// same condition and triggered on the same update histories
/// ([`HistoryFingerprint`]). Provenance ([`AlertId`]) and the value
/// snapshot are carried for display and tracing but excluded from
/// `Eq`/`Hash`, so AD-1's "identical alerts" test is plain `==`.
///
/// ```rust
/// use rcm_core::{Alert, AlertId, CeId, CondId, HistoryFingerprint, SeqNo, Update, VarId};
/// let x = VarId::new(0);
/// let fp = HistoryFingerprint::single(x, vec![SeqNo::new(3), SeqNo::new(2)]);
/// let a = Alert::new(CondId::SINGLE, fp.clone(), vec![Update::new(x, 3, 52.0)],
///                    AlertId { ce: CeId::new(0), index: 0 });
/// let b = Alert::new(CondId::SINGLE, fp, vec![], AlertId { ce: CeId::new(1), index: 5 });
/// assert_eq!(a, b); // same condition + histories => identical
/// assert_eq!(a.seqno(x), Some(SeqNo::new(3)));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Alert {
    /// Which condition triggered.
    pub cond: CondId,
    /// The update histories the CE used in evaluating the condition.
    pub fingerprint: HistoryFingerprint,
    /// Snapshot of the triggering updates, newest first per variable
    /// (for display; not part of identity). Shared via `Arc` so cloning
    /// an alert into an AD `seen` set or fanning it out to several
    /// displayers bumps a refcount instead of deep-copying the payload.
    #[serde(with = "snapshot_serde")]
    pub snapshot: Arc<[Update]>,
    /// Provenance (not part of identity).
    pub id: AlertId,
}

/// Serde adapter for `Arc<[Update]>` (the workspace's serde has no
/// `rc` feature): serialize as a plain sequence, deserialize through a
/// `Vec`. The wire format is identical to the former `Vec<Update>`
/// field's.
mod snapshot_serde {
    use super::{Arc, Update};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(v: &Arc<[Update]>, s: S) -> Result<S::Ok, S::Error> {
        v[..].serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Arc<[Update]>, D::Error> {
        Ok(Vec::<Update>::deserialize(d)?.into())
    }
}

impl Alert {
    /// Creates an alert; `snapshot` accepts a `Vec<Update>` or an
    /// already-shared `Arc<[Update]>`.
    pub fn new(
        cond: CondId,
        fingerprint: HistoryFingerprint,
        snapshot: impl Into<Arc<[Update]>>,
        id: AlertId,
    ) -> Self {
        Alert { cond, fingerprint, snapshot: snapshot.into(), id }
    }

    /// The paper's `a.seqno.x` for `var`.
    pub fn seqno(&self, var: VarId) -> Option<SeqNo> {
        self.fingerprint.seqno(var)
    }
}

impl PartialEq for Alert {
    fn eq(&self, other: &Self) -> bool {
        self.cond == other.cond && self.fingerprint == other.fingerprint
    }
}

impl Eq for Alert {}

impl Hash for Alert {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.cond.hash(state);
        self.fingerprint.hash(state);
    }
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a({}, {})", self.cond, self.fingerprint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(seqnos: &[u64]) -> HistoryFingerprint {
        HistoryFingerprint::single(VarId::new(0), seqnos.iter().map(|&s| SeqNo::new(s)).collect())
    }

    fn alert(fpr: HistoryFingerprint, ce: u32) -> Alert {
        Alert::new(CondId::SINGLE, fpr, vec![], AlertId { ce: CeId::new(ce), index: 0 })
    }

    #[test]
    fn identity_ignores_provenance_and_snapshot() {
        let a = alert(fp(&[3, 2]), 0);
        let mut b = alert(fp(&[3, 2]), 1);
        b.snapshot = vec![Update::new(VarId::new(0), 3, 1.0)].into();
        assert_eq!(a, b);
        use std::collections::HashSet;
        let set: HashSet<Alert> = [a, b].into_iter().collect();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn different_histories_are_not_identical() {
        // Paper §3: a1 triggered on {2x,3x}, a2 on {1x,3x}; AD-1 must not
        // treat them as duplicates.
        let a1 = alert(fp(&[3, 2]), 0);
        let a2 = alert(fp(&[3, 1]), 1);
        assert_ne!(a1, a2);
    }

    #[test]
    fn seqno_is_newest_entry() {
        let a = alert(fp(&[7, 5]), 0);
        assert_eq!(a.seqno(VarId::new(0)), Some(SeqNo::new(7)));
        assert_eq!(a.seqno(VarId::new(1)), None);
    }

    #[test]
    fn fingerprint_sorts_variables() {
        let x = VarId::new(0);
        let y = VarId::new(1);
        let f1 = HistoryFingerprint::new(vec![(y, vec![SeqNo::new(2)]), (x, vec![SeqNo::new(8)])]);
        let f2 = HistoryFingerprint::new(vec![(x, vec![SeqNo::new(8)]), (y, vec![SeqNo::new(2)])]);
        assert_eq!(f1, f2);
        let vars: Vec<_> = f1.variables().collect();
        assert_eq!(vars, vec![x, y]);
    }

    #[test]
    fn consecutive_detection() {
        assert!(fp(&[3, 2]).is_consecutive());
        assert!(!fp(&[3, 1]).is_consecutive());
        assert!(fp(&[3]).is_consecutive());
    }

    #[test]
    #[should_panic(expected = "strictly decreasing")]
    fn fingerprint_rejects_unordered_history() {
        fp(&[2, 3]);
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn fingerprint_rejects_duplicate_vars() {
        HistoryFingerprint::new(vec![
            (VarId::new(0), vec![SeqNo::new(1)]),
            (VarId::new(0), vec![SeqNo::new(2)]),
        ]);
    }

    #[test]
    fn try_new_reports_instead_of_panicking() {
        let v = VarId::new(0);
        assert_eq!(
            HistoryFingerprint::try_new(vec![(v, vec![SeqNo::new(2), SeqNo::new(3)])]),
            Err(FingerprintError::UnorderedHistory(v))
        );
        assert_eq!(
            HistoryFingerprint::try_new(vec![(v, vec![])]),
            Err(FingerprintError::EmptyHistory(v))
        );
        assert_eq!(
            HistoryFingerprint::try_new(vec![(v, vec![SeqNo::new(1)]), (v, vec![SeqNo::new(2)]),]),
            Err(FingerprintError::DuplicateVariable(v))
        );
        let ok = HistoryFingerprint::try_new(vec![(v, vec![SeqNo::new(3), SeqNo::new(2)])])
            .expect("well-formed history set");
        assert_eq!(ok, fp(&[3, 2]));
    }

    #[test]
    fn display_formats() {
        let a = alert(fp(&[3, 1]), 0);
        assert_eq!(a.to_string(), "a(c0, {v0:[3,1]})");
        assert_eq!(AlertId { ce: CeId::new(2), index: 9 }.to_string(), "CE2#9");
    }

    #[test]
    fn cloned_alerts_share_the_snapshot() {
        let a = Alert::new(
            CondId::SINGLE,
            fp(&[3, 2]),
            vec![Update::new(VarId::new(0), 3, 52.0)],
            AlertId { ce: CeId::new(0), index: 0 },
        );
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.snapshot, &b.snapshot));
    }

    #[test]
    fn serde_wire_format_unchanged_by_inline_storage() {
        // The inline fingerprint buffers and the Arc'd snapshot must
        // serialize exactly like the former Vec-backed fields, so
        // checkpoints and wire frames from older builds stay readable.
        let a = Alert::new(
            CondId::SINGLE,
            fp(&[3, 2]),
            vec![Update::new(VarId::new(0), 3, 52.0)],
            AlertId { ce: CeId::new(0), index: 0 },
        );
        let json = serde_json::to_value(&a).unwrap();
        assert_eq!(json["fingerprint"]["entries"][0][1], serde_json::json!([3, 2]));
        assert_eq!(json["snapshot"][0]["seqno"], 3);
        let back: Alert = serde_json::from_value(json).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.snapshot[..], a.snapshot[..]);
    }
}
