//! Derived updates: the stream kind hierarchical tier links carry.
//!
//! The paper's update `u(varname, seqno, value)` is what a Data
//! Monitor observes. An aggregation tree of Condition Evaluators
//! (`rcm-tree`) needs a second stream kind flowing *upward*: each leaf
//! CE, besides feeding its own Alert Displayer, summarizes what it saw
//! for its parent. A [`DerivedUpdate`] is that summary — shaped
//! deliberately like a raw update so every per-tier mechanism built
//! for updates (seqno gates, retained-window replay, property
//! checkers) applies unchanged:
//!
//! * a **synthetic variable id** ([`derived_var`]) names the emitting
//!   stream — one id per `(tier, node)` pair, carved out of the top of
//!   the `VarId` space so it can never collide with a real monitored
//!   variable;
//! * a **per-stream consecutive seqno**, stamped by the emitting
//!   node's [`DerivedEmitter`] exactly like a DM stamps raw updates
//!   (`1, 2, 3, …`, no gaps at the source), so the receiving tier's
//!   `SeqGate` admission, duplicate suppression, and replay-window
//!   recovery work verbatim;
//! * a [`DerivedPayload`] — either the leaf's full triggered
//!   [`Alert`] (a *verdict*, lossless fidelity: the root can renumber
//!   and display it byte-identically to a flat CE) or a numeric
//!   *aggregate* (a fold the parent monitors as an ordinary input
//!   variable, El-Hokayem & Falcone's decentralized-specification
//!   recipe).
//!
//! Because replicated leaves fed the same post-loss input are
//! deterministic, every replica of a leaf emits the *same* derived
//! stream under the *same* synthetic variable id — so a parent's
//! per-variable seqno gate makes leaf replication transparent: the
//! first copy of `(var, seqno)` is admitted, later copies are
//! duplicates, exactly the front-link contract of the paper's §2.1.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::alert::Alert;
use crate::update::{SeqNo, Update};
use crate::var::VarId;

/// Base of the synthetic derived-variable id space. Real variables are
/// registered densely from zero; derived ids start at `2^24` so the
/// two spaces cannot collide in any deployment this codebase targets
/// (the registry asserts well below `2^24` conditions).
pub const DERIVED_VAR_BASE: u32 = 1 << 24;

/// Width of the per-tier node field inside a derived variable id.
const NODE_BITS: u32 = 16;

/// The synthetic variable id naming the derived stream of node `node`
/// on tier `tier` (tier 0 = leaves, increasing toward the root).
///
/// # Panics
///
/// Panics if `node` does not fit the 16-bit node field or `tier`
/// overflows the id space — both far beyond any buildable tree.
pub fn derived_var(tier: u8, node: u32) -> VarId {
    assert!(node < (1 << NODE_BITS), "derived node {node} exceeds the 16-bit node field");
    let id = DERIVED_VAR_BASE + (u32::from(tier) << NODE_BITS) + node;
    VarId::new(id)
}

/// Whether `var` names a derived stream rather than a monitored
/// variable.
pub fn is_derived_var(var: VarId) -> bool {
    var.index() >= DERIVED_VAR_BASE
}

/// The tier and node a derived variable id names, or `None` for a raw
/// variable.
pub fn derived_var_parts(var: VarId) -> Option<(u8, u32)> {
    if !is_derived_var(var) {
        return None;
    }
    let rel = var.index() - DERIVED_VAR_BASE;
    let tier = rel >> NODE_BITS;
    u8::try_from(tier).ok().map(|t| (t, rel & ((1 << NODE_BITS) - 1)))
}

/// What one derived update carries upward.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DerivedPayload {
    /// A numeric aggregate the parent treats as an ordinary input
    /// value (count, max, rate, …) — genuine hierarchical aggregation.
    Aggregate(f64),
    /// A full leaf alert. Lossless fidelity: the root can renumber its
    /// provenance and display it byte-identically to a flat CE fed the
    /// combined stream.
    Verdict(Alert),
}

impl DerivedPayload {
    /// The numeric value a parent condition over this stream sees: the
    /// aggregate itself, or `1.0` for a verdict (the "condition fired"
    /// indicator variable).
    pub fn value(&self) -> f64 {
        match self {
            DerivedPayload::Aggregate(v) => *v,
            DerivedPayload::Verdict(_) => 1.0,
        }
    }
}

/// One element of a derived-update stream on a tier link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DerivedUpdate {
    /// Synthetic variable id of the emitting stream ([`derived_var`]).
    pub var: VarId,
    /// Per-stream consecutive sequence number (`1, 2, 3, …` at the
    /// emitting node), the same contract a DM keeps per variable.
    pub seqno: SeqNo,
    /// The aggregate or verdict carried.
    pub payload: DerivedPayload,
}

impl DerivedUpdate {
    /// The raw-update shadow of this derived update: same variable and
    /// seqno, value from [`DerivedPayload::value`]. This is what lets a
    /// parent CE monitor a derived stream with the ordinary condition
    /// machinery (histories, gates, AD property checkers) untouched.
    pub fn as_update(&self) -> Update {
        Update::new(self.var, self.seqno.get(), self.payload.value())
    }
}

impl fmt::Display for DerivedUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.payload {
            DerivedPayload::Aggregate(v) => {
                write!(f, "d{}({})={v}", self.var, self.seqno)
            }
            DerivedPayload::Verdict(a) => write!(f, "d{}({})={a}", self.var, self.seqno),
        }
    }
}

/// Stamps a node's derived stream with consecutive seqnos — the tree
/// tier's equivalent of a DM's per-variable counter. Restart keeps the
/// counter (like `Evaluator::restart` keeps alert numbering), so a
/// recovered node never reuses a seqno its parent may already have
/// admitted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DerivedEmitter {
    var: VarId,
    next: u64,
}

impl DerivedEmitter {
    /// An emitter for the derived stream named `var` (see
    /// [`derived_var`]); the first emission carries seqno 1.
    pub fn new(var: VarId) -> Self {
        DerivedEmitter { var, next: 1 }
    }

    /// The stream's synthetic variable id.
    pub fn var(&self) -> VarId {
        self.var
    }

    /// Seqno the next emission will carry.
    pub fn next_seqno(&self) -> SeqNo {
        SeqNo::new(self.next)
    }

    /// Count of derived updates emitted so far.
    pub fn emitted(&self) -> u64 {
        self.next - 1
    }

    /// Wraps `payload` as the stream's next derived update.
    pub fn emit(&mut self, payload: DerivedPayload) -> DerivedUpdate {
        let seqno = SeqNo::new(self.next);
        self.next += 1;
        DerivedUpdate { var: self.var, seqno, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::{AlertId, CeId, CondId, HistoryFingerprint};

    #[test]
    fn derived_ids_partition_the_var_space() {
        let v = derived_var(2, 5);
        assert!(is_derived_var(v));
        assert_eq!(derived_var_parts(v), Some((2, 5)));
        assert!(!is_derived_var(VarId::new(123_456)));
        assert_eq!(derived_var_parts(VarId::new(0)), None);
        // Distinct (tier, node) pairs never collide.
        assert_ne!(derived_var(0, 1), derived_var(1, 0));
        assert_ne!(derived_var(0, 1), derived_var(0, 2));
    }

    #[test]
    #[should_panic(expected = "16-bit node field")]
    fn oversized_node_rejected() {
        let _ = derived_var(0, 1 << 16);
    }

    #[test]
    fn emitter_stamps_consecutive_seqnos() {
        let mut em = DerivedEmitter::new(derived_var(0, 3));
        assert_eq!(em.emitted(), 0);
        let a = em.emit(DerivedPayload::Aggregate(1.5));
        let b = em.emit(DerivedPayload::Aggregate(2.5));
        assert_eq!(a.seqno, SeqNo::new(1));
        assert_eq!(b.seqno, SeqNo::new(2));
        assert!(a.seqno.precedes(b.seqno));
        assert_eq!(em.emitted(), 2);
        assert_eq!(em.next_seqno(), SeqNo::new(3));
        assert_eq!(a.var, derived_var(0, 3));
    }

    #[test]
    fn as_update_preserves_the_gate_key() {
        let mut em = DerivedEmitter::new(derived_var(1, 0));
        let d = em.emit(DerivedPayload::Aggregate(42.0));
        let u = d.as_update();
        assert_eq!((u.var, u.seqno), (d.var, d.seqno));
        assert_eq!(u.value, 42.0);
        let alert = Alert::new(
            CondId::new(0),
            HistoryFingerprint::single(VarId::new(0), vec![SeqNo::new(1)]),
            vec![],
            AlertId { ce: CeId::new(0), index: 0 },
        );
        let v = em.emit(DerivedPayload::Verdict(alert)).as_update();
        assert_eq!(v.value, 1.0);
        assert_eq!(v.seqno, SeqNo::new(2));
    }

    #[test]
    fn serde_roundtrip() {
        let mut em = DerivedEmitter::new(derived_var(0, 7));
        let d = em.emit(DerivedPayload::Aggregate(-3.25));
        let json = serde_json::to_string(&d).unwrap();
        let back: DerivedUpdate = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
        // The emitter's counter survives a checkpoint roundtrip too.
        let em_json = serde_json::to_string(&em).unwrap();
        let em_back: DerivedEmitter = serde_json::from_str(&em_json).unwrap();
        assert_eq!(em_back.next_seqno(), em.next_seqno());
    }
}
