//! Fixed-bucket HDR-style latency histogram for the ingest→alert-emit
//! path.
//!
//! The record path is allocation-free and lock-free: one atomic
//! increment into a fixed log-linear bucket array, cheap enough to sit
//! on the evaluation hot path. The layout follows the HdrHistogram
//! idea at reduced precision: values are bucketed into octave groups
//! with [`SUB_BUCKETS`] linear sub-buckets per octave, giving a bounded
//! relative error of `1/SUB_BUCKETS` (≈3%) across the full `u64`
//! nanosecond range — microseconds and minutes coexist in ~15 KiB with
//! no reallocation ever.
//!
//! Index math for a value `v` (in nanoseconds):
//!
//! ```text
//! v < 32           → index = v                       (group 0, exact)
//! v ≥ 32, msb = m  → group g = m - 4,
//!                    index = 32·g + (v >> (g-1)) - 32
//! ```
//!
//! Group `g ≥ 1` spans `[2^(g+4), 2^(g+5))` with bucket width
//! `2^(g-1)`. The maximum group for `u64` is 59, so the array holds
//! `32 × 60 = 1920` buckets. Quantiles walk the cumulative counts and
//! report a bucket's upper edge, so `p(q)` never under-reports.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per octave group (2^5: ~3% relative error).
const SUB_BUCKETS: u64 = 32;
/// Total bucket count: group 0 plus 59 octave groups of 32.
const BUCKETS: usize = (SUB_BUCKETS as usize) * 60;

/// Concurrent fixed-bucket latency histogram (values in nanoseconds).
///
/// All methods take `&self`; threads share one histogram behind an
/// `Arc` and record without coordination.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a nanosecond value (see the module docs for the
/// layout derivation).
fn index_of(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        // msb ≥ 5 here, so the group and shift are both ≥ 1.
        let msb = 63 - v.leading_zeros() as u64;
        let group = msb - 4;
        (SUB_BUCKETS * group + (v >> (group - 1)) - SUB_BUCKETS) as usize
    }
}

/// Upper edge (inclusive) of bucket `index` — what quantiles report.
fn upper_edge(index: usize) -> u64 {
    let group = index as u64 / SUB_BUCKETS;
    let sub = index as u64 % SUB_BUCKETS;
    if group == 0 {
        sub
    } else {
        // Lower edge plus bucket width − 1; phrased to stay in range
        // for the top group (whose edge is exactly `u64::MAX`).
        ((sub + SUB_BUCKETS) << (group - 1)) + ((1u64 << (group - 1)) - 1)
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram (one fixed allocation, then none).
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the boxed array through a
        // Vec to keep the construction allocation on the cold path.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let boxed: Box<[AtomicU64; BUCKETS]> = match v.into_boxed_slice().try_into() {
            Ok(b) => b,
            Err(_) => unreachable!("vec built with exactly BUCKETS entries"),
        };
        LatencyHistogram { buckets: boxed, count: AtomicU64::new(0), max: AtomicU64::new(0) }
    }

    /// Records one latency sample in nanoseconds. Allocation-free,
    /// lock-free, wait-free modulo the `max` CAS loop.
    pub fn record(&self, nanos: u64) {
        // analyze: allow(hot-path): index_of maps every u64 below BUCKETS (tested
        // analyze: allow(hot-path): over the boundaries), and buckets has BUCKETS slots
        self.buckets[index_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` (in `[0, 1]`), as the containing
    /// bucket's upper edge; 0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        // Rank of the sample that dominates quantile q (1-based).
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return upper_edge(i).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Freezes the percentiles the reports carry.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            count: self.count(),
            p50_ns: self.quantile(0.50),
            p99_ns: self.quantile(0.99),
            p999_ns: self.quantile(0.999),
            max_ns: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Frozen ingest→alert-emit latency percentiles, as carried by
/// `RunReport`, chaos `--json` and `bench_snapshot`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// Samples recorded (one per admitted update that completed
    /// evaluation and emitted its merged alerts).
    #[serde(default)]
    pub count: u64,
    /// Median, nanoseconds (bucket upper edge, ≤3% relative error).
    #[serde(default)]
    pub p50_ns: u64,
    /// 99th percentile, nanoseconds.
    #[serde(default)]
    pub p99_ns: u64,
    /// 99.9th percentile, nanoseconds.
    #[serde(default)]
    pub p999_ns: u64,
    /// Largest recorded sample, nanoseconds (exact).
    #[serde(default)]
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_zero_is_exact() {
        for v in 0..32u64 {
            assert_eq!(index_of(v), v as usize);
            assert_eq!(upper_edge(index_of(v)), v);
        }
    }

    #[test]
    fn buckets_are_monotone_and_tight() {
        // Octave boundaries and neighbors land in increasing buckets,
        // and every upper edge bounds its value within 1/32.
        let mut last = 0usize;
        for shift in 5..63 {
            for v in [1u64 << shift, (1u64 << shift) + 1, (1u64 << (shift + 1)) - 1] {
                let i = index_of(v);
                assert!(i >= last, "index regressed at {v}");
                last = i;
                let edge = upper_edge(i);
                assert!(edge >= v, "edge {edge} below value {v}");
                assert!((edge - v) as f64 <= v as f64 / 32.0 + 1.0, "edge {edge} too far from {v}");
            }
        }
        assert!(index_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = LatencyHistogram::new();
        // 1000 samples: 900 at ~1µs, 90 at ~10µs, 10 at ~1ms.
        for _ in 0..900 {
            h.record(1_000);
        }
        for _ in 0..90 {
            h.record(10_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.count(), 1000);
        let s = h.snapshot();
        let close = |got: u64, want: u64| (got as f64 - want as f64).abs() <= want as f64 / 24.0;
        assert!(close(s.p50_ns, 1_000), "p50 {}", s.p50_ns);
        assert!(close(s.p99_ns, 10_000), "p99 {}", s.p99_ns);
        assert!(close(s.p999_ns, 1_000_000), "p999 {}", s.p999_ns);
        assert_eq!(s.max_ns, 1_000_000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot(), LatencySnapshot::default());
    }

    #[test]
    fn extremes_clamp_not_panic() {
        let h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("recorder thread");
        }
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let h = LatencyHistogram::new();
        h.record(123);
        h.record(456_789);
        let s = h.snapshot();
        let json = serde_json::to_string(&s).expect("serializes");
        let back: LatencySnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, s);
    }
}
