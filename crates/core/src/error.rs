//! Error types for the core library.

use std::fmt;

use crate::var::VarId;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the core monitoring library.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An update arrived for a variable the condition does not watch.
    ///
    /// The paper assumes the CE subscribes only to the variables in the
    /// condition's variable set `V`; receiving anything else indicates a
    /// wiring bug, so the evaluator surfaces it instead of silently
    /// dropping the update.
    UnknownVariable(VarId),
    /// An update arrived out of order (its sequence number is not greater
    /// than the newest one already in the history).
    ///
    /// Front links are required to deliver in order (§2.1); the evaluator
    /// enforces this defensively.
    OutOfOrderUpdate {
        /// Variable the stale update belongs to.
        var: VarId,
        /// Sequence number of the offending update.
        got: u64,
        /// Newest sequence number already incorporated.
        newest: u64,
    },
    /// A condition expression failed to parse.
    Parse(crate::condition::expr::ParseError),
    /// A condition declared a degree of zero for some variable.
    ZeroDegree(VarId),
    /// A condition declared an empty variable set.
    EmptyVariableSet,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownVariable(v) => {
                write!(f, "update for variable {v} not in the condition's variable set")
            }
            Error::OutOfOrderUpdate { var, got, newest } => write!(
                f,
                "out-of-order update for variable {var}: got seqno {got}, newest is {newest}"
            ),
            Error::Parse(e) => write!(f, "condition expression parse error: {e}"),
            Error::ZeroDegree(v) => {
                write!(f, "condition declares degree 0 for variable {v}")
            }
            Error::EmptyVariableSet => write!(f, "condition has an empty variable set"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::condition::expr::ParseError> for Error {
    fn from(e: crate::condition::expr::ParseError) -> Self {
        Error::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = Error::UnknownVariable(VarId::new(3));
        let s = e.to_string();
        assert!(s.starts_with("update for variable"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn out_of_order_mentions_both_seqnos() {
        let e = Error::OutOfOrderUpdate { var: VarId::new(0), got: 3, newest: 7 };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
