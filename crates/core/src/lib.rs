//! # rcm-core — Replicated Condition Monitoring
//!
//! Core library implementing the data model, condition framework,
//! Condition Evaluator and Alert Displayer filtering algorithms from
//! *Replicated condition monitoring* (Huang & Garcia-Molina, PODC 2001).
//!
//! A condition monitoring system tracks real-world variables and alerts
//! users when a predefined condition becomes true. The paper's system has
//! three component classes:
//!
//! * **Data Monitors (DM)** emit [`Update`]s — `u(varname, seqno, value)`
//!   tuples with per-variable consecutive sequence numbers.
//! * **Condition Evaluators (CE)** keep bounded per-variable
//!   [`History`] windows, re-evaluate a boolean [`Condition`] on every
//!   arrival, and emit [`Alert`]s. The [`Evaluator`] type implements the
//!   paper's `T` transducer mapping update sequences to alert sequences.
//! * **Alert Displayers (AD)** merge the alert streams of replicated CEs
//!   through a filtering algorithm. The six algorithms from the paper's
//!   Appendix A live in [`ad`]: exact-duplicate removal ([`ad::Ad1`]),
//!   orderedness ([`ad::Ad2`], [`ad::Ad5`]), consistency ([`ad::Ad3`]),
//!   and their combinations ([`ad::Ad4`], [`ad::Ad6`]).
//!
//! The sequence mathematics of the paper's §2.2 (ordered sequences,
//! subsequence tests, ordered union `⊔`, projections `Π_x`, spanning
//! sets) is in [`seq`].
//!
//! Beyond the paper's core algorithms, the crate provides the variants
//! and tooling a deployment needs:
//!
//! * conditions as **text** via the expression language
//!   ([`condition::expr::CompiledCondition`]), as **closures**
//!   ([`condition::FnCondition`]), and ready-made types including the
//!   debounced [`condition::SustainedAbove`];
//! * checksummed duplicate removal ([`ad::Ad1Digest`], the paper's §2
//!   remark), the §4.2 "delayed displaying" alternative
//!   ([`ad::DelayedOrdered`]), and the AD-6 ablation [`ad::Ad3Multi`];
//! * **durable state**: every filter and the [`Evaluator`] serialize
//!   with serde, so displayers and evaluators can checkpoint and
//!   restart without forgetting what they promised the user;
//! * a **multi-condition engine** ([`ConditionRegistry`]): N conditions
//!   hosted over one update stream behind a variable→condition inverted
//!   index, with incremental expression re-evaluation
//!   ([`condition::expr::IncrementalExpr`]) for compiled conditions.
//!
//! ## Quick example
//!
//! ```rust
//! use rcm_core::{Evaluator, Update, VarId};
//! use rcm_core::condition::{Threshold, Cmp};
//! use rcm_core::ad::{Ad1, AlertFilter};
//!
//! let x = VarId::new(0);
//! // c1: "reactor temperature is over 3000 degrees"
//! let c1 = Threshold::new(x, Cmp::Gt, 3000.0);
//!
//! // Two replicated CEs; CE2 misses update 2.
//! let mut ce1 = Evaluator::new(c1.clone());
//! let mut ce2 = Evaluator::new(c1);
//! let u = |s, v| Update::new(x, s, v);
//!
//! let a1 = ce1.ingest(u(1, 2900.0)); // no alert
//! let a2 = ce1.ingest(u(2, 3100.0)).unwrap();
//! let a3 = ce1.ingest(u(3, 3200.0)).unwrap();
//! let b1 = ce2.ingest(u(1, 2900.0));
//! let b3 = ce2.ingest(u(3, 3200.0)).unwrap();
//! assert!(a1.is_none() && b1.is_none());
//!
//! // The AD removes the exact duplicate (a3 and b3 triggered on the
//! // same update history), so the user sees two alerts, not three.
//! let mut ad = Ad1::new();
//! let shown: Vec<_> = [a2, a3, b3]
//!     .into_iter()
//!     .filter(|a| ad.offer(a).is_deliver())
//!     .collect();
//! assert_eq!(shown.len(), 2);
//! ```

// `unsafe` is denied crate-wide; the single audited exception is the
// `inline` module's MaybeUninit small-vector storage (each block
// carries a SAFETY comment and `cargo xtask lint` pins the allowlist).
// Miri runs this crate's test suite in CI to check those blocks.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ad;
mod alert;
pub mod condition;
mod derived;
mod error;
mod evaluator;
mod history;
pub mod inline;
mod latency;
mod registry;
pub mod seq;
mod update;
mod var;

pub use alert::{Alert, AlertId, CeId, CondId, FingerprintError, HistoryFingerprint, SeqBuf};
pub use condition::{Condition, ConditionExt, Triggering};
pub use derived::{
    derived_var, derived_var_parts, is_derived_var, DerivedEmitter, DerivedPayload, DerivedUpdate,
    DERIVED_VAR_BASE,
};
pub use error::{Error, Result};
pub use evaluator::{transduce, transduce_merged, Evaluator};
pub use history::{History, HistorySet};
pub use inline::InlineVec;
pub use latency::{LatencyHistogram, LatencySnapshot};
pub use registry::{ConditionRegistry, RegistryStats, ShardSlices};
pub use update::{SeqNo, Update};
pub use var::{VarId, VarRegistry};
