//! Multi-condition demultiplexing (paper Appendix D).

use std::collections::BTreeMap;

use crate::alert::{Alert, CondId};

use super::{AlertFilter, Decision};

/// Runs one filter instance per condition (paper Appendix D,
/// Fig. D-7(c)): the AD "can effectively separate the A and B alert
/// streams and run one instance of the filtering algorithm against each
/// stream", reducing a replicated multi-condition system with separate
/// CEs to independent single-condition systems.
///
/// Filter instances are created on demand by the factory closure, keyed
/// by the alert's [`CondId`].
///
/// ```rust
/// use rcm_core::ad::{Ad2, AlertFilter, PerCondition};
/// use rcm_core::VarId;
/// # use rcm_core::{Alert, AlertId, CeId, CondId, HistoryFingerprint, SeqNo};
/// # let mk = |c: u32, s: u64| Alert::new(CondId::new(c),
/// #     HistoryFingerprint::single(VarId::new(0), vec![SeqNo::new(s)]), vec![],
/// #     AlertId { ce: CeId::new(0), index: 0 });
/// let mut ad = PerCondition::new(|_cond| Ad2::new(VarId::new(0)));
/// assert!(ad.offer(&mk(0, 2)).is_deliver());
/// assert!(!ad.offer(&mk(0, 1)).is_deliver()); // out of order within c0
/// assert!(ad.offer(&mk(1, 1)).is_deliver());  // c1 has its own stream
/// ```
pub struct PerCondition<F, Make> {
    make: Make,
    filters: BTreeMap<CondId, F>,
}

impl<F, Make> std::fmt::Debug for PerCondition<F, Make>
where
    F: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerCondition").field("filters", &self.filters).finish()
    }
}

impl<F, Make> PerCondition<F, Make>
where
    F: AlertFilter,
    Make: FnMut(CondId) -> F,
{
    /// Creates the demultiplexer with a per-condition filter factory.
    pub fn new(make: Make) -> Self {
        PerCondition { make, filters: BTreeMap::new() }
    }

    /// Number of condition streams seen so far.
    pub fn streams(&self) -> usize {
        self.filters.len()
    }

    /// The filter instance for `cond`, if that stream has been seen.
    pub fn stream(&self, cond: CondId) -> Option<&F> {
        self.filters.get(&cond)
    }
}

impl<F, Make> AlertFilter for PerCondition<F, Make>
where
    F: AlertFilter,
    Make: FnMut(CondId) -> F + Send,
{
    fn name(&self) -> &'static str {
        "per-condition"
    }

    fn offer(&mut self, alert: &Alert) -> Decision {
        let filter = self.filters.entry(alert.cond).or_insert_with(|| (self.make)(alert.cond));
        filter.offer(alert)
    }

    fn reset(&mut self) {
        self.filters.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::testutil::alert_cond;
    use crate::ad::{Ad1, Ad3};
    use crate::var::VarId;

    #[test]
    fn streams_are_independent() {
        let mut ad = PerCondition::new(|_c| Ad3::new(VarId::new(0)));
        // Condition 0 commits "2 missed"; condition 1 may still claim 2
        // received — the streams never interact (Appendix D).
        assert!(ad.offer(&alert_cond(0, &[3, 1])).is_deliver());
        assert!(ad.offer(&alert_cond(1, &[3, 2])).is_deliver());
        assert!(!ad.offer(&alert_cond(0, &[3, 2])).is_deliver());
        assert_eq!(ad.streams(), 2);
        assert!(ad.stream(CondId::new(0)).is_some());
        assert!(ad.stream(CondId::new(9)).is_none());
    }

    #[test]
    fn duplicates_deduped_within_stream_only() {
        let mut ad = PerCondition::new(|_c| Ad1::new());
        assert!(ad.offer(&alert_cond(0, &[1])).is_deliver());
        assert!(ad.offer(&alert_cond(1, &[1])).is_deliver());
        assert!(!ad.offer(&alert_cond(0, &[1])).is_deliver());
    }

    #[test]
    fn reset_drops_all_streams() {
        let mut ad = PerCondition::new(|_c| Ad1::new());
        ad.offer(&alert_cond(0, &[1]));
        ad.reset();
        assert_eq!(ad.streams(), 0);
        assert!(ad.offer(&alert_cond(0, &[1])).is_deliver());
    }
}
