//! The "delayed displaying" alternative discussed (and dismissed) in
//! the paper's §4.2.
//!
//! Instead of discarding out-of-order alerts like AD-2, the AD could
//! hold alerts back until their predecessors arrive. The paper points
//! out the two problems: the AD cannot know which alerts exist (alert
//! seqnos are not consecutive), so it must bound the wait with a
//! timeout — and once a timeout can force a display, orderedness is no
//! longer guaranteed unless system delays are bounded.
//!
//! [`DelayedOrdered`] implements the idea so the trade-off can be
//! *measured* (see the `delayed_display` experiment binary): alerts are
//! buffered and released in seqno order; an alert is held for at most
//! `max_hold` subsequent arrivals. What happens to an alert that
//! arrives *too* late (below the release watermark) is the
//! [`LatePolicy`]:
//!
//! * [`LatePolicy::Drop`] keeps the output ordered always — a
//!   "look-ahead AD-2" that trades display latency for fewer drops;
//! * [`LatePolicy::Display`] shows it anyway — more alerts, but
//!   orderedness is lost exactly as the paper predicts.

use std::collections::BTreeMap;

use crate::alert::Alert;
use crate::update::SeqNo;
use crate::var::VarId;

/// What to do with an alert that arrives below the release watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatePolicy {
    /// Discard it (output stays ordered; still incomplete).
    Drop,
    /// Display it out of order (output complete-r, orderedness lost).
    Display,
}

/// A buffering Alert Displayer for single-variable systems: releases
/// alerts in seqno order, holding each for at most `max_hold`
/// subsequent arrivals.
///
/// Unlike [`AlertFilter`](super::AlertFilter) implementations, offering
/// an alert may release *several* alerts (the offered one may unblock
/// buffered successors), so `offer` returns a vector. Call
/// [`DelayedOrdered::flush`] at end of stream to drain the buffer.
#[derive(Debug, Clone)]
pub struct DelayedOrdered {
    var: VarId,
    max_hold: usize,
    late: LatePolicy,
    /// Buffered alerts keyed by seqno, with the arrival count at which
    /// they expire.
    buffer: BTreeMap<u64, (Alert, u64)>,
    /// Arrival counter (logical time; the online AD has no clock).
    arrivals: u64,
    /// Highest released seqno.
    watermark: Option<SeqNo>,
    /// Alerts dropped for arriving below the watermark.
    dropped_late: u64,
}

impl DelayedOrdered {
    /// Creates the displayer.
    ///
    /// `max_hold = 0` releases every alert immediately (AD-2-like but
    /// with the chosen late policy).
    pub fn new(var: VarId, max_hold: usize, late: LatePolicy) -> Self {
        DelayedOrdered {
            var,
            max_hold,
            late,
            buffer: BTreeMap::new(),
            arrivals: 0,
            watermark: None,
            dropped_late: 0,
        }
    }

    /// Alerts dropped for arriving too late ([`LatePolicy::Drop`] only).
    pub fn dropped_late(&self) -> u64 {
        self.dropped_late
    }

    /// Alerts currently held.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Offers one arriving alert; returns the alerts released *now*,
    /// in display order.
    pub fn offer(&mut self, alert: &Alert) -> Vec<Alert> {
        self.arrivals += 1;
        let mut out = Vec::new();
        match alert.seqno(self.var) {
            None => return out, // malformed for this system; ignore
            Some(seq) => {
                if self.watermark.is_some_and(|w| seq < w) {
                    match self.late {
                        LatePolicy::Drop => {
                            self.dropped_late += 1;
                        }
                        LatePolicy::Display => {
                            out.push(alert.clone());
                        }
                    }
                    // Release anything expired, then return.
                    self.release(&mut out);
                    return out;
                }
                // Duplicates (same seqno already buffered or equal to the
                // watermark) are suppressed.
                if self.watermark == Some(seq) || self.buffer.contains_key(&seq.get()) {
                    self.release(&mut out);
                    return out;
                }
                let expiry = self.arrivals + self.max_hold as u64;
                self.buffer.insert(seq.get(), (alert.clone(), expiry));
            }
        }
        self.release(&mut out);
        out
    }

    /// Releases buffered alerts: everything below or at an expired
    /// alert's seqno goes out, in seqno order.
    fn release(&mut self, out: &mut Vec<Alert>) {
        // Find the highest expired seqno; everything up to it must be
        // flushed (waiting longer cannot help alerts below an expired
        // one — they would come out of order anyway).
        let expired_max = self
            .buffer
            .iter()
            .filter(|(_, (_, expiry))| *expiry <= self.arrivals)
            .map(|(&s, _)| s)
            .max();
        if let Some(limit) = expired_max {
            let to_release: Vec<u64> = self.buffer.range(..=limit).map(|(&s, _)| s).collect();
            for s in to_release {
                if let Some((alert, _)) = self.buffer.remove(&s) {
                    self.watermark = Some(SeqNo::new(s));
                    out.push(alert);
                }
            }
        }
    }

    /// Drains the buffer in order (end of stream).
    pub fn flush(&mut self) -> Vec<Alert> {
        let mut out = Vec::with_capacity(self.buffer.len());
        for (s, (alert, _)) in std::mem::take(&mut self.buffer) {
            self.watermark = Some(SeqNo::new(s));
            out.push(alert);
        }
        out
    }

    /// Runs a whole arrival sequence through the displayer, flushing at
    /// the end.
    pub fn display_all(&mut self, arrivals: &[Alert]) -> Vec<Alert> {
        let mut out = Vec::new();
        for a in arrivals {
            out.extend(self.offer(a));
        }
        out.extend(self.flush());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::testutil::alert1;
    use crate::seq::project_alerts;

    fn x() -> VarId {
        VarId::new(0)
    }

    fn seqs(alerts: &[Alert]) -> Vec<u64> {
        project_alerts(alerts, x()).into_iter().map(|s| s.get()).collect()
    }

    #[test]
    fn in_order_stream_released_after_hold() {
        let mut d = DelayedOrdered::new(x(), 1, LatePolicy::Drop);
        let out = d.display_all(&[alert1(&[1]), alert1(&[2]), alert1(&[3])]);
        assert_eq!(seqs(&out), vec![1, 2, 3]);
        assert_eq!(d.dropped_late(), 0);
    }

    #[test]
    fn inversion_within_window_is_repaired() {
        // AD-2 would drop alert 1; a hold of 1 arrival reorders it.
        let mut d = DelayedOrdered::new(x(), 1, LatePolicy::Drop);
        let out = d.display_all(&[alert1(&[2]), alert1(&[1]), alert1(&[3])]);
        assert_eq!(seqs(&out), vec![1, 2, 3]);
        assert_eq!(d.dropped_late(), 0);
    }

    #[test]
    fn inversion_beyond_window_drops_or_disorders() {
        // Alert 2 expires (hold 1) before alert 1 arrives two offers later.
        let arrivals = [alert1(&[2]), alert1(&[3]), alert1(&[4]), alert1(&[1])];
        let mut drop = DelayedOrdered::new(x(), 1, LatePolicy::Drop);
        let out = drop.display_all(&arrivals);
        assert_eq!(seqs(&out), vec![2, 3, 4]);
        assert_eq!(drop.dropped_late(), 1);

        let mut show = DelayedOrdered::new(x(), 1, LatePolicy::Display);
        let out = show.display_all(&arrivals);
        assert_eq!(seqs(&out), vec![2, 3, 1, 4]); // unordered, as §4.2 warns
    }

    #[test]
    fn zero_hold_behaves_like_ad2_with_drop_policy() {
        let mut d = DelayedOrdered::new(x(), 0, LatePolicy::Drop);
        let out = d.display_all(&[alert1(&[2]), alert1(&[1]), alert1(&[3])]);
        assert_eq!(seqs(&out), vec![2, 3]);
        assert_eq!(d.dropped_late(), 1);
    }

    #[test]
    fn duplicates_suppressed() {
        let mut d = DelayedOrdered::new(x(), 2, LatePolicy::Drop);
        let out = d.display_all(&[alert1(&[1]), alert1(&[1]), alert1(&[2])]);
        assert_eq!(seqs(&out), vec![1, 2]);
    }

    #[test]
    fn drop_policy_output_always_ordered() {
        // Stress with a pathological arrival order.
        let arrivals: Vec<Alert> =
            [5u64, 1, 4, 2, 8, 3, 7, 6, 10, 9].iter().map(|&s| alert1(&[s])).collect();
        for hold in 0..6 {
            let mut d = DelayedOrdered::new(x(), hold, LatePolicy::Drop);
            let out = d.display_all(&arrivals);
            let s = seqs(&out);
            assert!(crate::seq::is_strictly_ordered(&s), "hold {hold}: unordered {s:?}");
        }
    }

    #[test]
    fn larger_hold_never_displays_fewer() {
        let arrivals: Vec<Alert> =
            [5u64, 1, 4, 2, 8, 3, 7, 6, 10, 9].iter().map(|&s| alert1(&[s])).collect();
        let mut prev = 0;
        for hold in 0..8 {
            let mut d = DelayedOrdered::new(x(), hold, LatePolicy::Drop);
            let n = d.display_all(&arrivals).len();
            assert!(n >= prev, "hold {hold} displayed {n} < {prev}");
            prev = n;
        }
        // With a big enough window everything is displayed.
        assert_eq!(prev, arrivals.len());
    }

    #[test]
    fn flush_drains_remaining() {
        let mut d = DelayedOrdered::new(x(), 100, LatePolicy::Drop);
        assert!(d.offer(&alert1(&[3])).is_empty());
        assert!(d.offer(&alert1(&[1])).is_empty());
        assert_eq!(d.buffered(), 2);
        let out = d.flush();
        assert_eq!(seqs(&out), vec![1, 3]);
        assert_eq!(d.buffered(), 0);
    }
}
