//! Checksum-based duplicate removal — the paper's §2 optimization.
//!
//! > "Still others only use these sequence numbers in a simple equality
//! > test, in which case it may be sufficient to send just a checksum
//! > of the histories."
//!
//! AD-1's identity test is exactly such an equality test, so an alert
//! can carry (and the AD can remember) a 64-bit [`HistoryDigest`]
//! instead of the full history set. [`Ad1Digest`] is the resulting
//! filter: constant 8 bytes of state per displayed alert regardless of
//! condition degree or variable count, at the cost of a
//! 2⁻⁶⁴-per-pair false-duplicate probability (an FNV-1a collision
//! would *suppress* a genuinely new alert).

use std::collections::HashSet;

use crate::alert::{Alert, CondId, HistoryFingerprint};

use super::{AlertFilter, Decision, DiscardReason};

/// A 64-bit FNV-1a digest of an alert's condition id and history
/// fingerprint.
///
/// Equal (condition, histories) pairs always produce equal digests;
/// distinct pairs collide with probability ≈ 2⁻⁶⁴.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct HistoryDigest(u64);

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl HistoryDigest {
    /// Computes the digest of a condition/fingerprint pair.
    pub fn compute(cond: CondId, fingerprint: &HistoryFingerprint) -> Self {
        let mut h = FNV_OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(u64::from(cond.index()));
        for (var, seqnos) in fingerprint.iter() {
            eat(u64::from(var.index()) | 1 << 63); // tag variable boundaries
            for s in seqnos {
                eat(s.get());
            }
        }
        HistoryDigest(h)
    }

    /// Digest of an alert.
    pub fn of(alert: &Alert) -> Self {
        Self::compute(alert.cond, &alert.fingerprint)
    }

    /// The raw 64-bit value (e.g. for putting on the wire instead of
    /// the full histories).
    pub fn get(self) -> u64 {
        self.0
    }
}

/// AD-1 on digests: exact-duplicate removal remembering only 8 bytes
/// per displayed alert.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Ad1Digest {
    seen: HashSet<HistoryDigest>,
}

impl Ad1Digest {
    /// Creates the filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Approximate state size in bytes (the paper's motivation for the
    /// checksum: the AD need not store histories at all).
    pub fn state_bytes(&self) -> usize {
        self.seen.len() * std::mem::size_of::<HistoryDigest>()
    }
}

impl AlertFilter for Ad1Digest {
    fn name(&self) -> &'static str {
        "AD-1/digest"
    }

    fn offer(&mut self, alert: &Alert) -> Decision {
        if self.seen.insert(HistoryDigest::of(alert)) {
            Decision::Deliver
        } else {
            Decision::Discard(DiscardReason::Duplicate)
        }
    }

    fn reset(&mut self) {
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::testutil::{alert1, alert2, alert_cond};
    use crate::ad::Ad1;

    #[test]
    fn equal_alerts_equal_digests() {
        let a = alert1(&[3, 2]);
        let b = alert1(&[3, 2]);
        assert_eq!(HistoryDigest::of(&a), HistoryDigest::of(&b));
    }

    #[test]
    fn different_histories_different_digests() {
        // Not guaranteed in theory; in practice FNV-1a separates these.
        let digests: Vec<HistoryDigest> = [
            alert1(&[3, 2]),
            alert1(&[3, 1]),
            alert1(&[3]),
            alert1(&[2, 1]),
            alert_cond(1, &[3, 2]),
            alert2(3, 2),
        ]
        .iter()
        .map(HistoryDigest::of)
        .collect();
        let unique: HashSet<_> = digests.iter().collect();
        assert_eq!(unique.len(), digests.len());
    }

    #[test]
    fn variable_boundaries_matter() {
        // {x:[2], y:[3]} must not collide with {x:[2,3-ish]} shapes:
        // boundary tagging separates per-variable runs.
        let two_vars = alert2(2, 3);
        let one_var = alert1(&[3, 2]);
        assert_ne!(HistoryDigest::of(&two_vars), HistoryDigest::of(&one_var));
    }

    #[test]
    fn digest_filter_matches_ad1_exactly() {
        let stream = vec![
            alert1(&[1]),
            alert1(&[2, 1]),
            alert1(&[1]),
            alert_cond(1, &[1]),
            alert1(&[2, 1]),
            alert1(&[3, 2]),
        ];
        let mut full = Ad1::new();
        let mut digest = Ad1Digest::new();
        for a in &stream {
            assert_eq!(full.offer(a).is_deliver(), digest.offer(a).is_deliver(), "{a}");
        }
    }

    #[test]
    fn state_is_eight_bytes_per_alert() {
        let mut f = Ad1Digest::new();
        for s in 1..=100u64 {
            f.offer(&alert1(&[s]));
        }
        assert_eq!(f.state_bytes(), 800);
    }

    #[test]
    fn reset_clears() {
        let mut f = Ad1Digest::new();
        f.offer(&alert1(&[1]));
        f.reset();
        assert!(f.offer(&alert1(&[1])).is_deliver());
    }

    #[test]
    fn digest_exposes_raw_value() {
        let d = HistoryDigest::of(&alert1(&[1]));
        assert_ne!(d.get(), 0);
    }
}
