//! Algorithm AD-6: orderedness and consistency for multi-variable
//! systems (paper Fig. A-6).

use std::collections::BTreeMap;

use crate::alert::Alert;
use crate::var::VarId;

use super::ad3::{ConsistencyState, VarConsistency};
use super::ad5::Ad5;
use super::{AlertFilter, Decision, DiscardReason};

/// Algorithm AD-6: combines [`Ad5`] (multi-variable orderedness) with
/// the multi-variable version of AD-3 (one `Received`/`Missed` pair per
/// variable), enforcing both orderedness and consistency (paper §5.2).
///
/// System properties match Table 3 except that the
/// aggressive-triggering row is also consistent.
///
/// Like [`super::Ad3`], the per-variable bookkeeping is pluggable via
/// the `W` parameter; the default is the interval-backed
/// [`VarConsistency`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Ad6<W = VarConsistency> {
    ordered: Ad5,
    consistency: BTreeMap<VarId, W>,
}

impl Ad6 {
    /// Creates the filter for the condition's variable set.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty or contains duplicates (via [`Ad5`]).
    pub fn new(vars: impl IntoIterator<Item = VarId>) -> Self {
        Self::with_state(vars)
    }
}

impl<W: ConsistencyState> Ad6<W> {
    /// Creates the filter with an explicit bookkeeping strategy for the
    /// consistency half.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty or contains duplicates (via [`Ad5`]).
    pub fn with_state(vars: impl IntoIterator<Item = VarId>) -> Self {
        let vars: Vec<VarId> = vars.into_iter().collect();
        let ordered = Ad5::new(vars.iter().copied());
        let consistency = vars.into_iter().map(|v| (v, W::default())).collect();
        Ad6 { ordered, consistency }
    }

    fn conflicts(&self, alert: &Alert) -> bool {
        self.consistency.iter().any(|(&var, state)| {
            match alert.fingerprint.seqnos(var) {
                Some(seqnos) => state.conflicts(seqnos),
                None => true, // alert missing a tracked variable
            }
        })
    }
}

impl<W: ConsistencyState> AlertFilter for Ad6<W> {
    fn name(&self) -> &'static str {
        "AD-6"
    }

    fn offer(&mut self, alert: &Alert) -> Decision {
        let d5 = self.ordered.check(alert);
        if !d5.is_deliver() {
            return d5;
        }
        if self.conflicts(alert) {
            return Decision::Discard(DiscardReason::Conflict);
        }
        self.ordered.commit(alert);
        for (&var, state) in self.consistency.iter_mut() {
            if let Some(seqnos) = alert.fingerprint.seqnos(var) {
                state.record(seqnos);
            }
        }
        Decision::Deliver
    }

    fn reset(&mut self) {
        self.ordered.reset();
        for state in self.consistency.values_mut() {
            state.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::{AlertId, CeId, CondId, HistoryFingerprint};
    use crate::update::SeqNo;

    fn x() -> VarId {
        VarId::new(0)
    }
    fn y() -> VarId {
        VarId::new(1)
    }

    /// Two-variable alert with degree-2 histories.
    fn alert22(xs: &[u64], ys: &[u64]) -> Alert {
        Alert::new(
            CondId::SINGLE,
            HistoryFingerprint::new(vec![
                (x(), xs.iter().map(|&s| SeqNo::new(s)).collect()),
                (y(), ys.iter().map(|&s| SeqNo::new(s)).collect()),
            ]),
            vec![],
            AlertId { ce: CeId::new(0), index: 0 },
        )
    }

    fn ad() -> Ad6 {
        Ad6::new([x(), y()])
    }

    #[test]
    fn enforces_order_like_ad5() {
        let mut f = ad();
        assert!(f.offer(&alert22(&[2], &[1])).is_deliver());
        assert_eq!(f.offer(&alert22(&[1], &[2])), Decision::Discard(DiscardReason::OutOfOrder));
    }

    #[test]
    fn enforces_consistency_per_variable() {
        let mut f = ad();
        // First alert: x history {1,3} → x's Missed = {2}.
        assert!(f.offer(&alert22(&[3, 1], &[1])).is_deliver());
        // Second alert advances (order fine) but needs 2x received.
        assert_eq!(f.offer(&alert22(&[4, 3, 2], &[2])), Decision::Discard(DiscardReason::Conflict));
        // Conflict-free advance passes.
        assert!(f.offer(&alert22(&[4, 3], &[2])).is_deliver());
    }

    #[test]
    fn conflict_in_second_variable_detected() {
        let mut f = ad();
        assert!(f.offer(&alert22(&[1], &[3, 1])).is_deliver()); // y Missed = {2}
        assert!(!f.offer(&alert22(&[2], &[4, 3, 2])).is_deliver());
    }

    #[test]
    fn rejected_alert_leaves_state_clean() {
        let mut f = ad();
        assert!(f.offer(&alert22(&[3, 1], &[1])).is_deliver());
        // Dropped for conflict; its y watermark (5) must not stick.
        assert!(!f.offer(&alert22(&[4, 2], &[5])).is_deliver());
        // y = 2 would be out of order had the previous alert committed.
        assert!(f.offer(&alert22(&[4, 3], &[2])).is_deliver());
    }

    #[test]
    fn duplicates_dropped() {
        let mut f = ad();
        assert!(f.offer(&alert22(&[2, 1], &[1])).is_deliver());
        assert_eq!(f.offer(&alert22(&[2, 1], &[1])), Decision::Discard(DiscardReason::Duplicate));
    }

    #[test]
    fn reset_clears_everything() {
        let mut f = ad();
        f.offer(&alert22(&[3, 1], &[1]));
        f.reset();
        assert!(f.offer(&alert22(&[2, 1], &[1])).is_deliver());
    }
}
