//! Algorithm AD-3: consistency for single-variable systems (paper
//! Fig. A-3).

use std::collections::{BTreeSet, HashSet};

use crate::alert::Alert;
use crate::seq::{spanning_gaps, spanning_set};
use crate::update::SeqNo;
use crate::var::VarId;

use super::{AlertFilter, Decision, DiscardReason};

/// Per-variable received/missed bookkeeping shared by AD-3 and AD-6.
///
/// Displaying an alert asserts that every seqno in its history was
/// *received* by the hypothetical single CE `U'`, and every seqno in a
/// gap of the history's span was *missed*. Two alerts conflict when one
/// needs a seqno received and the other needs it missed.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub(crate) struct VarConsistency {
    received: BTreeSet<u64>,
    missed: BTreeSet<u64>,
}

impl VarConsistency {
    /// The paper's `Conflicts(H)` for one variable's history seqnos.
    pub(crate) fn conflicts(&self, seqnos: &[SeqNo]) -> bool {
        let hx: BTreeSet<u64> = seqnos.iter().map(|s| s.get()).collect();
        // Any history seqno previously recorded as missed?
        if hx.iter().any(|s| self.missed.contains(s)) {
            return true;
        }
        // Any gap in the history's span previously recorded as received?
        spanning_set(&hx)
            .into_iter()
            .any(|s| !hx.contains(&s) && self.received.contains(&s))
    }

    /// The paper's `UpdateState(H)` for one variable.
    pub(crate) fn record(&mut self, seqnos: &[SeqNo]) {
        let hx: BTreeSet<u64> = seqnos.iter().map(|s| s.get()).collect();
        self.missed.extend(spanning_gaps(&hx));
        self.received.extend(hx);
    }

    /// Seqnos committed as received (the consistency witness `U'`).
    pub(crate) fn received(&self) -> &BTreeSet<u64> {
        &self.received
    }

    pub(crate) fn clear(&mut self) {
        self.received.clear();
        self.missed.clear();
    }
}

/// Algorithm AD-3: guarantees **consistency** in all single-variable
/// systems by refusing to display two alerts that require some update
/// to be in a conflicting received/missed state.
///
/// For every displayed alert the filter records the history's seqnos in
/// a `Received` set and the gaps of the history's span in a `Missed`
/// set; an arriving alert whose history contains a `Missed` seqno, or
/// whose span-gaps contain a `Received` seqno, is discarded
/// (`Conflicts` in Fig. A-3). The `Received` set is itself the witness
/// `U' ⊑ U1 ⊔ U2` of the consistency definition — the proof of
/// Theorem 7 shows `ΦA ⊆ ΦT(Received)` and that AD-3 is **maximally
/// consistent**.
///
/// Exact duplicates are also removed. The paper's Fig. A-3 pseudo-code
/// leaves the duplicate test implicit, but Theorem 8 (`AD-1 > AD-3`,
/// "AD-3 filters out at least all the alerts filtered by AD-1")
/// requires it, so this implementation includes it.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Ad3 {
    var: VarId,
    state: VarConsistency,
    seen: HashSet<Alert>,
}

impl Ad3 {
    /// Creates the filter for the system's single variable.
    pub fn new(var: VarId) -> Self {
        Ad3 { var, state: VarConsistency::default(), seen: HashSet::new() }
    }

    /// The committed `Received` set: the witness `U'` for consistency,
    /// as plain seqno values.
    pub fn received(&self) -> Vec<SeqNo> {
        self.state.received().iter().map(|&s| SeqNo::new(s)).collect()
    }

    /// Decision without committing state (used by AD-4).
    pub(crate) fn check(&self, alert: &Alert) -> Decision {
        if self.seen.contains(alert) {
            return Decision::Discard(DiscardReason::Duplicate);
        }
        let Some(seqnos) = alert.fingerprint.seqnos(self.var) else {
            return Decision::Discard(DiscardReason::Conflict);
        };
        if self.state.conflicts(seqnos) {
            Decision::Discard(DiscardReason::Conflict)
        } else {
            Decision::Deliver
        }
    }

    /// Records a delivered alert (used by AD-4).
    pub(crate) fn commit(&mut self, alert: &Alert) {
        if let Some(seqnos) = alert.fingerprint.seqnos(self.var) {
            self.state.record(seqnos);
        }
        self.seen.insert(alert.clone());
    }
}

impl AlertFilter for Ad3 {
    fn name(&self) -> &'static str {
        "AD-3"
    }

    fn offer(&mut self, alert: &Alert) -> Decision {
        let d = self.check(alert);
        if d.is_deliver() {
            self.commit(alert);
        }
        d
    }

    fn reset(&mut self) {
        self.state.clear();
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::testutil::alert1;

    fn ad() -> Ad3 {
        Ad3::new(VarId::new(0))
    }

    #[test]
    fn example_3_conflict() {
        // a1 with H = ⟨3x, 1x⟩ displays; records Received {1,3}, Missed {2}.
        // a2 with H = ⟨3x, 2x⟩ would need 2 received → conflict.
        let mut f = ad();
        assert!(f.offer(&alert1(&[3, 1])).is_deliver());
        assert_eq!(
            f.offer(&alert1(&[3, 2])),
            Decision::Discard(DiscardReason::Conflict)
        );
    }

    #[test]
    fn reverse_arrival_order_keeps_first() {
        // Symmetric to Example 3: whichever alert arrives first wins.
        let mut f = ad();
        assert!(f.offer(&alert1(&[3, 2])).is_deliver());
        assert!(!f.offer(&alert1(&[3, 1])).is_deliver());
    }

    #[test]
    fn gap_conflicts_with_received() {
        // First alert says 2 was received; second's history {1,3} implies
        // 2 was missed → conflict.
        let mut f = ad();
        assert!(f.offer(&alert1(&[2, 1])).is_deliver());
        assert!(!f.offer(&alert1(&[3, 1])).is_deliver());
    }

    #[test]
    fn non_overlapping_histories_pass() {
        let mut f = ad();
        assert!(f.offer(&alert1(&[2, 1])).is_deliver());
        assert!(f.offer(&alert1(&[4, 3])).is_deliver());
        // Out-of-order arrivals also pass: AD-3 does not enforce order.
        assert!(f.offer(&alert1(&[3, 2])).is_deliver());
    }

    #[test]
    fn exact_duplicates_removed() {
        let mut f = ad();
        assert!(f.offer(&alert1(&[3, 1])).is_deliver());
        assert_eq!(
            f.offer(&alert1(&[3, 1])),
            Decision::Discard(DiscardReason::Duplicate)
        );
    }

    #[test]
    fn received_witness_accumulates() {
        let mut f = ad();
        f.offer(&alert1(&[3, 1]));
        f.offer(&alert1(&[5, 4]));
        let w: Vec<u64> = f.received().iter().map(|s| s.get()).collect();
        assert_eq!(w, vec![1, 3, 4, 5]);
    }

    #[test]
    fn missing_variable_conflicts() {
        let mut f = Ad3::new(VarId::new(9));
        assert!(!f.offer(&alert1(&[1])).is_deliver());
    }

    #[test]
    fn reset_clears_sets() {
        let mut f = ad();
        f.offer(&alert1(&[3, 1]));
        f.reset();
        assert!(f.offer(&alert1(&[3, 2])).is_deliver());
    }

    #[test]
    fn degree_one_histories_never_conflict() {
        // Non-historical conditions: singleton histories have no gaps, so
        // AD-3 passes everything except duplicates (consistent with
        // Theorem 2's systems remaining complete under AD-3's Table-1'
        // variant).
        let mut f = ad();
        for s in [2u64, 1, 3, 1] {
            let d = f.offer(&alert1(&[s]));
            if s == 1 && !d.is_deliver() {
                // second ⟨1⟩ is an exact duplicate
                assert_eq!(d, Decision::Discard(DiscardReason::Duplicate));
            }
        }
    }
}
