//! Algorithm AD-3: consistency for single-variable systems (paper
//! Fig. A-3).

use std::collections::{BTreeSet, HashSet};
use std::fmt;

use crate::alert::Alert;
use crate::seq::{spanning_gaps, spanning_set, IntervalSet};
use crate::update::SeqNo;
use crate::var::VarId;

use super::{AlertFilter, Decision, DiscardReason};

/// Per-variable received/missed bookkeeping strategy shared by AD-3,
/// AD-4, AD-6 and the [`Ad3Multi`](super::Ad3Multi) ablation.
///
/// Displaying an alert asserts that every seqno in its history was
/// *received* by the hypothetical single CE `U'`, and every seqno in a
/// gap of the history's span was *missed*. Two alerts conflict when one
/// needs a seqno received and the other needs it missed.
///
/// The production implementation is [`VarConsistency`], which stores
/// both sets as sorted interval runs. [`BTreeConsistency`] retains the
/// seed's per-seqno `BTreeSet` logic as an executable reference that
/// tests and benches validate the interval path against.
pub trait ConsistencyState: Default + Clone + fmt::Debug + Send {
    /// The paper's `Conflicts(H)` for one variable's newest-first
    /// history seqnos.
    fn conflicts(&self, seqnos: &[SeqNo]) -> bool;

    /// The paper's `UpdateState(H)` for one variable: commits the
    /// history's seqnos as received and its span gaps as missed.
    fn record(&mut self, seqnos: &[SeqNo]);

    /// Seqnos committed as received (the consistency witness `U'`), in
    /// ascending order.
    fn received(&self) -> impl Iterator<Item = u64> + '_;

    /// Forgets all committed state (filter reset).
    fn clear(&mut self);
}

/// Interval-backed received/missed bookkeeping — the production
/// [`ConsistencyState`].
///
/// Histories march forward, so `Received` and `Missed` are unions of a
/// few long runs of consecutive seqnos. Storing them as sorted
/// inclusive intervals ([`IntervalSet`]) makes an offer two binary
/// searches over a handful of runs — no per-offer `BTreeSet` rebuild,
/// no materialized spanning set — and caps memory at the number of
/// *gaps* ever observed instead of the number of updates, fixing
/// unbounded growth in long-running deployments.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VarConsistency {
    received: IntervalSet,
    missed: IntervalSet,
}

impl ConsistencyState for VarConsistency {
    fn conflicts(&self, seqnos: &[SeqNo]) -> bool {
        // Any history seqno previously recorded as missed?
        if seqnos.iter().any(|s| self.missed.contains(s.get())) {
            return true;
        }
        // Any gap in the history's span previously recorded as
        // received? Seqnos are newest-first strictly decreasing, so the
        // span gaps are exactly the open ranges between adjacent pairs.
        seqnos.windows(2).any(|w| {
            let (hi, lo) = (w[0].get(), w[1].get());
            hi > lo + 1 && self.received.intersects(lo + 1, hi - 1)
        })
    }

    fn record(&mut self, seqnos: &[SeqNo]) {
        for s in seqnos {
            self.received.insert(s.get());
        }
        for w in seqnos.windows(2) {
            let (hi, lo) = (w[0].get(), w[1].get());
            if hi > lo + 1 {
                self.missed.insert_range(lo + 1, hi - 1);
            }
        }
    }

    fn received(&self) -> impl Iterator<Item = u64> + '_ {
        self.received.iter()
    }

    fn clear(&mut self) {
        self.received.clear();
        self.missed.clear();
    }
}

impl VarConsistency {
    /// Memory footprint as `(received_runs, missed_runs)` interval
    /// counts — proportional to observed gaps, not stream length.
    pub fn num_runs(&self) -> (usize, usize) {
        (self.received.num_runs(), self.missed.num_runs())
    }
}

/// The seed's per-seqno `BTreeSet` bookkeeping, kept as an executable
/// reference implementation.
///
/// Every offer rebuilds the history's seqno set and materializes its
/// full spanning set, and both `received` and `missed` grow by one tree
/// node per seqno forever — the costs the interval representation
/// removes. Retained so property tests and benches can check
/// [`VarConsistency`] against it decision-for-decision; not for
/// production use.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BTreeConsistency {
    received: BTreeSet<u64>,
    missed: BTreeSet<u64>,
}

impl ConsistencyState for BTreeConsistency {
    fn conflicts(&self, seqnos: &[SeqNo]) -> bool {
        let hx: BTreeSet<u64> = seqnos.iter().map(|s| s.get()).collect();
        if hx.iter().any(|s| self.missed.contains(s)) {
            return true;
        }
        spanning_set(&hx).into_iter().any(|s| !hx.contains(&s) && self.received.contains(&s))
    }

    fn record(&mut self, seqnos: &[SeqNo]) {
        let hx: BTreeSet<u64> = seqnos.iter().map(|s| s.get()).collect();
        self.missed.extend(spanning_gaps(&hx));
        self.received.extend(hx);
    }

    fn received(&self) -> impl Iterator<Item = u64> + '_ {
        self.received.iter().copied()
    }

    fn clear(&mut self) {
        self.received.clear();
        self.missed.clear();
    }
}

/// Algorithm AD-3: guarantees **consistency** in all single-variable
/// systems by refusing to display two alerts that require some update
/// to be in a conflicting received/missed state.
///
/// For every displayed alert the filter records the history's seqnos in
/// a `Received` set and the gaps of the history's span in a `Missed`
/// set; an arriving alert whose history contains a `Missed` seqno, or
/// whose span-gaps contain a `Received` seqno, is discarded
/// (`Conflicts` in Fig. A-3). The `Received` set is itself the witness
/// `U' ⊑ U1 ⊔ U2` of the consistency definition — the proof of
/// Theorem 7 shows `ΦA ⊆ ΦT(Received)` and that AD-3 is **maximally
/// consistent**.
///
/// Exact duplicates are also removed. The paper's Fig. A-3 pseudo-code
/// leaves the duplicate test implicit, but Theorem 8 (`AD-1 > AD-3`,
/// "AD-3 filters out at least all the alerts filtered by AD-1")
/// requires it, so this implementation includes it.
///
/// The bookkeeping strategy is pluggable: `Ad3` defaults to the
/// interval-backed [`VarConsistency`]; `Ad3::<BTreeConsistency>::with_state`
/// builds the reference variant.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Ad3<W = VarConsistency> {
    var: VarId,
    state: W,
    seen: HashSet<Alert>,
}

impl Ad3 {
    /// Creates the filter for the system's single variable.
    pub fn new(var: VarId) -> Self {
        Self::with_state(var)
    }
}

impl<W: ConsistencyState> Ad3<W> {
    /// Creates the filter with an explicit bookkeeping strategy, e.g.
    /// `Ad3::<BTreeConsistency>::with_state(x)` for the reference.
    pub fn with_state(var: VarId) -> Self {
        Ad3 { var, state: W::default(), seen: HashSet::new() }
    }

    /// The committed `Received` set: the witness `U'` for consistency,
    /// as ascending seqnos. Borrows from the filter instead of
    /// materializing a `Vec`, so checkers can poll it per alert for
    /// free.
    pub fn received(&self) -> impl Iterator<Item = SeqNo> + '_ {
        self.state.received().map(SeqNo::new)
    }

    /// Decision without committing state (used by AD-4).
    pub(crate) fn check(&self, alert: &Alert) -> Decision {
        if self.seen.contains(alert) {
            return Decision::Discard(DiscardReason::Duplicate);
        }
        let Some(seqnos) = alert.fingerprint.seqnos(self.var) else {
            return Decision::Discard(DiscardReason::Conflict);
        };
        if self.state.conflicts(seqnos) {
            Decision::Discard(DiscardReason::Conflict)
        } else {
            Decision::Deliver
        }
    }

    /// Records a delivered alert (used by AD-4).
    pub(crate) fn commit(&mut self, alert: &Alert) {
        if let Some(seqnos) = alert.fingerprint.seqnos(self.var) {
            self.state.record(seqnos);
        }
        self.seen.insert(alert.clone());
    }
}

impl<W: ConsistencyState> AlertFilter for Ad3<W> {
    fn name(&self) -> &'static str {
        "AD-3"
    }

    fn offer(&mut self, alert: &Alert) -> Decision {
        let d = self.check(alert);
        if d.is_deliver() {
            self.commit(alert);
        }
        d
    }

    fn reset(&mut self) {
        self.state.clear();
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::testutil::alert1;

    fn ad() -> Ad3 {
        Ad3::new(VarId::new(0))
    }

    #[test]
    fn example_3_conflict() {
        // a1 with H = ⟨3x, 1x⟩ displays; records Received {1,3}, Missed {2}.
        // a2 with H = ⟨3x, 2x⟩ would need 2 received → conflict.
        let mut f = ad();
        assert!(f.offer(&alert1(&[3, 1])).is_deliver());
        assert_eq!(f.offer(&alert1(&[3, 2])), Decision::Discard(DiscardReason::Conflict));
    }

    #[test]
    fn reverse_arrival_order_keeps_first() {
        // Symmetric to Example 3: whichever alert arrives first wins.
        let mut f = ad();
        assert!(f.offer(&alert1(&[3, 2])).is_deliver());
        assert!(!f.offer(&alert1(&[3, 1])).is_deliver());
    }

    #[test]
    fn gap_conflicts_with_received() {
        // First alert says 2 was received; second's history {1,3} implies
        // 2 was missed → conflict.
        let mut f = ad();
        assert!(f.offer(&alert1(&[2, 1])).is_deliver());
        assert!(!f.offer(&alert1(&[3, 1])).is_deliver());
    }

    #[test]
    fn non_overlapping_histories_pass() {
        let mut f = ad();
        assert!(f.offer(&alert1(&[2, 1])).is_deliver());
        assert!(f.offer(&alert1(&[4, 3])).is_deliver());
        // Out-of-order arrivals also pass: AD-3 does not enforce order.
        assert!(f.offer(&alert1(&[3, 2])).is_deliver());
    }

    #[test]
    fn exact_duplicates_removed() {
        let mut f = ad();
        assert!(f.offer(&alert1(&[3, 1])).is_deliver());
        assert_eq!(f.offer(&alert1(&[3, 1])), Decision::Discard(DiscardReason::Duplicate));
    }

    #[test]
    fn received_witness_accumulates() {
        let mut f = ad();
        f.offer(&alert1(&[3, 1]));
        f.offer(&alert1(&[5, 4]));
        let w: Vec<u64> = f.received().map(|s| s.get()).collect();
        assert_eq!(w, vec![1, 3, 4, 5]);
    }

    #[test]
    fn missing_variable_conflicts() {
        let mut f = Ad3::new(VarId::new(9));
        assert!(!f.offer(&alert1(&[1])).is_deliver());
    }

    #[test]
    fn reset_clears_sets() {
        let mut f = ad();
        f.offer(&alert1(&[3, 1]));
        f.reset();
        assert!(f.offer(&alert1(&[3, 2])).is_deliver());
    }

    #[test]
    fn degree_one_histories_never_conflict() {
        // Non-historical conditions: singleton histories have no gaps, so
        // AD-3 passes everything except duplicates (consistent with
        // Theorem 2's systems remaining complete under AD-3's Table-1'
        // variant).
        let mut f = ad();
        for s in [2u64, 1, 3, 1] {
            let d = f.offer(&alert1(&[s]));
            if s == 1 && !d.is_deliver() {
                // second ⟨1⟩ is an exact duplicate
                assert_eq!(d, Decision::Discard(DiscardReason::Duplicate));
            }
        }
    }

    #[test]
    fn reference_variant_agrees_on_the_paper_examples() {
        let mut fast = ad();
        let mut reference = Ad3::<BTreeConsistency>::with_state(VarId::new(0));
        for h in [&[3u64, 1][..], &[3, 2], &[2, 1], &[4, 3], &[3, 1], &[7, 4]] {
            let a = alert1(h);
            assert_eq!(fast.offer(&a), reference.offer(&a), "history {h:?}");
        }
        let f: Vec<u64> = fast.received().map(|s| s.get()).collect();
        let r: Vec<u64> = reference.received().map(|s| s.get()).collect();
        assert_eq!(f, r);
    }

    #[test]
    fn interval_state_memory_tracks_gaps_not_stream_length() {
        // A long gap-free stream must collapse to a single received run.
        let mut f = ad();
        for s in 1..=100u64 {
            f.offer(&alert1(&[s + 1, s]));
        }
        assert_eq!(f.state.num_runs(), (1, 0));
    }
}
