//! Algorithm AD-4: orderedness and consistency combined (paper
//! Fig. A-4).

use crate::alert::Alert;
use crate::var::VarId;

use super::ad2::Ad2;
use super::ad3::{Ad3, ConsistencyState, VarConsistency};
use super::{AlertFilter, Decision};

/// Algorithm AD-4: discards any alert that would be discarded by either
/// [`Ad2`] or [`Ad3`], guaranteeing both orderedness and consistency in
/// every single-variable system (Theorem 9: maximally "ordered and
/// consistent").
///
/// System properties under AD-4 match Table 2 except that the
/// aggressive-triggering row is also consistent.
///
/// Like [`Ad3`], the consistency bookkeeping is pluggable via the `W`
/// parameter; the default is the interval-backed [`VarConsistency`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Ad4<W = VarConsistency> {
    ordered: Ad2,
    consistent: Ad3<W>,
}

impl Ad4 {
    /// Creates the filter for the system's single variable.
    pub fn new(var: VarId) -> Self {
        Self::with_state(var)
    }
}

impl<W: ConsistencyState> Ad4<W> {
    /// Creates the filter with an explicit bookkeeping strategy for the
    /// AD-3 half.
    pub fn with_state(var: VarId) -> Self {
        Ad4 { ordered: Ad2::new(var), consistent: Ad3::with_state(var) }
    }
}

impl<W: ConsistencyState> AlertFilter for Ad4<W> {
    fn name(&self) -> &'static str {
        "AD-4"
    }

    fn offer(&mut self, alert: &Alert) -> Decision {
        // Check both components before committing either, so a discard
        // by one leaves the other's state untouched.
        let d2 = self.ordered.check(alert);
        if !d2.is_deliver() {
            return d2;
        }
        let d3 = self.consistent.check(alert);
        if !d3.is_deliver() {
            return d3;
        }
        self.ordered.commit(alert);
        self.consistent.commit(alert);
        Decision::Deliver
    }

    fn reset(&mut self) {
        self.ordered.reset();
        self.consistent.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::testutil::alert1;
    use crate::ad::DiscardReason;

    fn ad() -> Ad4 {
        Ad4::new(VarId::new(0))
    }

    #[test]
    fn drops_out_of_order_like_ad2() {
        let mut f = ad();
        assert!(f.offer(&alert1(&[3, 2])).is_deliver());
        assert_eq!(f.offer(&alert1(&[2, 1])), Decision::Discard(DiscardReason::OutOfOrder));
    }

    #[test]
    fn drops_conflicts_like_ad3() {
        let mut f = ad();
        assert!(f.offer(&alert1(&[3, 1])).is_deliver());
        assert_eq!(f.offer(&alert1(&[4, 3, 2])), Decision::Discard(DiscardReason::Conflict));
    }

    #[test]
    fn passes_ordered_consistent_streams() {
        let mut f = ad();
        assert!(f.offer(&alert1(&[2, 1])).is_deliver());
        assert!(f.offer(&alert1(&[3, 2])).is_deliver());
        assert!(f.offer(&alert1(&[5, 4])).is_deliver());
    }

    #[test]
    fn rejected_alert_does_not_pollute_state() {
        let mut f = ad();
        assert!(f.offer(&alert1(&[3, 1])).is_deliver()); // Missed = {2}
                                                         // Dropped by AD-2 (out of order); its history must NOT be recorded
                                                         // by the AD-3 half…
        assert!(!f.offer(&alert1(&[2, 1])).is_deliver());
        // …so an alert consistent with the FIRST alert still passes even
        // though it would conflict with the rejected one.
        assert!(f.offer(&alert1(&[4, 3])).is_deliver());
    }

    #[test]
    fn duplicate_detected() {
        let mut f = ad();
        f.offer(&alert1(&[3, 2]));
        assert_eq!(f.offer(&alert1(&[3, 2])), Decision::Discard(DiscardReason::Duplicate));
    }

    #[test]
    fn reset_clears_both_halves() {
        let mut f = ad();
        f.offer(&alert1(&[3, 1]));
        f.reset();
        assert!(f.offer(&alert1(&[2, 1])).is_deliver());
    }
}
