//! Alert Displayer filtering algorithms (paper Appendix A).
//!
//! The Alert Displayer merges the alert streams of the replicated CEs
//! into one arrival sequence and runs a *filtering algorithm* over it;
//! the survivors form the final sequence `A` shown to the user. The
//! choice of algorithm determines which of the paper's three properties
//! the replicated system has:
//!
//! | Algorithm | Guarantees | Paper |
//! |-----------|------------|-------|
//! | [`Ad1`] | removes exact duplicates only | Fig. A-1 |
//! | [`Ad2`] | orderedness, single variable (maximal, Thm 5) | Fig. A-2 |
//! | [`Ad3`] | consistency, single variable (maximal, Thm 7) | Fig. A-3 |
//! | [`Ad4`] | orderedness ∧ consistency (maximal, Thm 9) | Fig. A-4 |
//! | [`Ad5`] | orderedness, multi-variable | Fig. A-5 |
//! | [`Ad6`] | orderedness ∧ consistency, multi-variable | Fig. A-6 |
//!
//! [`PassThrough`] (no filtering) and [`DropAll`] (the trivially
//! ordered-and-consistent filter from §4.1 that displays nothing)
//! bracket the design space; [`PerCondition`] demultiplexes
//! multi-condition systems (Appendix D).
//!
//! Variants beyond the paper's pseudo-code:
//!
//! * [`Ad1Digest`] — AD-1 remembering only a checksum per alert (the
//!   paper's §2 wire-size remark);
//! * [`DelayedOrdered`] — the §4.2 "delayed displaying" alternative,
//!   implemented so its trade-off can be measured;
//! * [`Ad3Multi`] — AD-6 with its AD-5 half removed, an ablation
//!   showing per-variable consistency bookkeeping alone cannot exclude
//!   Theorem 10's interleaving cycles.
//!
//! All filters serialize with serde: a displayer can checkpoint its
//! state and restart without forgetting what it promised the user.
//!
//! The consistency filters (AD-3, AD-4, AD-6, the ablation) are generic
//! over their received/missed bookkeeping ([`ConsistencyState`]): the
//! default [`VarConsistency`] stores both sets as sorted interval runs
//! for O(log runs) offers and gap-proportional memory, while
//! [`BTreeConsistency`] retains the per-seqno reference logic for
//! validation and benchmarking.
//!
//! All filters implement [`AlertFilter`]; [`apply_filter`] runs one
//! over a merged arrival sequence.

mod ad1;
mod ad2;
mod ad3;
mod ad3multi;
mod ad4;
mod ad5;
mod ad6;
mod delayed;
mod demux;
mod digest;
mod reference;

pub use ad1::Ad1;
pub use ad2::Ad2;
pub use ad3::{Ad3, BTreeConsistency, ConsistencyState, VarConsistency};
pub use ad3multi::Ad3Multi;
pub use ad4::Ad4;
pub use ad5::Ad5;
pub use ad6::Ad6;
pub use delayed::{DelayedOrdered, LatePolicy};
pub use demux::PerCondition;
pub use digest::{Ad1Digest, HistoryDigest};
pub use reference::{DropAll, PassThrough};

use std::fmt;

use crate::alert::Alert;

/// Why a filter discarded an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiscardReason {
    /// An identical alert (same condition and histories) was already
    /// displayed.
    Duplicate,
    /// Displaying the alert would make the output unordered with
    /// respect to some variable.
    OutOfOrder,
    /// Displaying the alert would require an update to be in a
    /// conflicting received/missed state (AD-3's test).
    Conflict,
    /// The filter unconditionally discards (only [`DropAll`]).
    Policy,
}

impl fmt::Display for DiscardReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscardReason::Duplicate => write!(f, "duplicate"),
            DiscardReason::OutOfOrder => write!(f, "out of order"),
            DiscardReason::Conflict => write!(f, "conflicting state"),
            DiscardReason::Policy => write!(f, "policy"),
        }
    }
}

/// A filter's verdict on one arriving alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Append the alert to the output sequence `A`.
    Deliver,
    /// Discard the alert.
    Discard(DiscardReason),
}

impl Decision {
    /// Whether the alert should be displayed.
    pub fn is_deliver(self) -> bool {
        matches!(self, Decision::Deliver)
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Deliver => write!(f, "deliver"),
            Decision::Discard(r) => write!(f, "discard ({r})"),
        }
    }
}

/// An Alert Displayer filtering algorithm.
///
/// Filters are *online*: they see alerts one at a time in arrival order
/// and must decide immediately (the paper rules out "delayed
/// displaying" because unbounded system delays would make timeouts
/// unsound — §4.2).
pub trait AlertFilter: fmt::Debug + Send {
    /// Algorithm name for reports ("AD-1", "AD-2", …).
    fn name(&self) -> &'static str;

    /// Decides whether to display the arriving alert, updating internal
    /// state when the decision is [`Decision::Deliver`].
    fn offer(&mut self, alert: &Alert) -> Decision;

    /// Clears all internal state, as if freshly constructed.
    fn reset(&mut self);
}

impl<F: AlertFilter + ?Sized> AlertFilter for Box<F> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn offer(&mut self, alert: &Alert) -> Decision {
        (**self).offer(alert)
    }
    fn reset(&mut self) {
        (**self).reset()
    }
}

/// Runs `arrivals` (the merged alert streams, in arrival order at the
/// AD) through `filter`, returning the displayed sequence `A`.
pub fn apply_filter<F: AlertFilter + ?Sized>(filter: &mut F, arrivals: &[Alert]) -> Vec<Alert> {
    arrivals.iter().filter(|a| filter.offer(a).is_deliver()).cloned().collect()
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::alert::{Alert, AlertId, CeId, CondId, HistoryFingerprint};
    use crate::update::SeqNo;
    use crate::var::VarId;

    /// Single-variable alert on `v0` with the given newest-first seqnos.
    pub fn alert1(seqnos: &[u64]) -> Alert {
        Alert::new(
            CondId::SINGLE,
            HistoryFingerprint::single(
                VarId::new(0),
                seqnos.iter().map(|&s| SeqNo::new(s)).collect(),
            ),
            vec![],
            AlertId { ce: CeId::new(0), index: 0 },
        )
    }

    /// Two-variable alert with degree-1 histories `(x_seq, y_seq)`.
    pub fn alert2(x_seq: u64, y_seq: u64) -> Alert {
        Alert::new(
            CondId::SINGLE,
            HistoryFingerprint::new(vec![
                (VarId::new(0), vec![SeqNo::new(x_seq)]),
                (VarId::new(1), vec![SeqNo::new(y_seq)]),
            ]),
            vec![],
            AlertId { ce: CeId::new(0), index: 0 },
        )
    }

    /// Like [`alert1`] but for an explicit condition id.
    pub fn alert_cond(cond: u32, seqnos: &[u64]) -> Alert {
        let mut a = alert1(seqnos);
        a.cond = CondId::new(cond);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::alert1;
    use super::*;

    #[test]
    fn decision_helpers() {
        assert!(Decision::Deliver.is_deliver());
        assert!(!Decision::Discard(DiscardReason::Duplicate).is_deliver());
        assert_eq!(Decision::Deliver.to_string(), "deliver");
        assert_eq!(
            Decision::Discard(DiscardReason::OutOfOrder).to_string(),
            "discard (out of order)"
        );
    }

    #[test]
    fn apply_filter_threads_state() {
        let mut f = Ad1::new();
        let out = apply_filter(&mut f, &[alert1(&[1]), alert1(&[1]), alert1(&[2])]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn boxed_filters_forward() {
        let mut f: Box<dyn AlertFilter> = Box::new(Ad1::new());
        assert_eq!(f.name(), "AD-1");
        assert!(f.offer(&alert1(&[1])).is_deliver());
        assert!(!f.offer(&alert1(&[1])).is_deliver());
        f.reset();
        assert!(f.offer(&alert1(&[1])).is_deliver());
    }
}
