//! The multi-variable version of AD-3 on its own — an ablation of
//! AD-6.
//!
//! The paper builds AD-6 by combining AD-5 (orderedness) with "the
//! multi-variable version of Algorithm AD-3" (per-variable
//! `Received`/`Missed` bookkeeping). A natural question is whether the
//! AD-3 half alone would already guarantee consistency, making the
//! AD-5 half a pure orderedness add-on.
//!
//! **It would not.** Multi-variable inconsistency has a second source
//! that per-variable bookkeeping cannot see: *interleaving cycles*.
//! Theorem 10's counterexample — `a(2x,1y)` and `a(1x,2y)` with
//! degree-1 histories — has no per-variable conflict at all (no gaps,
//! nothing missed), yet no single sequence of arrivals can trigger
//! both alerts: the first needs `2x` before `2y`, the second `2y`
//! before `2x`. The proof of Lemma 5 shows it is exactly the
//! *orderedness* of AD-5's output that excludes such cycles; with the
//! AD-5 half removed the cycles come back.
//!
//! [`Ad3Multi`] implements the ablated filter so the gap is
//! measurable — see the `ablation_ad6` experiment binary.

use std::collections::{BTreeMap, HashSet};

use crate::alert::Alert;
use crate::var::VarId;

use super::ad3::{ConsistencyState, VarConsistency};
use super::{AlertFilter, Decision, DiscardReason};

/// Per-variable consistency filtering only (AD-6 without its AD-5
/// half). Guarantees that no two displayed alerts make conflicting
/// received/missed claims about any single variable — but does **not**
/// guarantee multi-variable consistency, because interleaving cycles
/// pass through untouched.
///
/// Like [`super::Ad3`], the per-variable bookkeeping is pluggable via
/// the `W` parameter; the default is the interval-backed
/// [`VarConsistency`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Ad3Multi<W = VarConsistency> {
    consistency: BTreeMap<VarId, W>,
    seen: HashSet<Alert>,
}

impl Ad3Multi {
    /// Creates the filter for the condition's variable set.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty or contains duplicates.
    pub fn new(vars: impl IntoIterator<Item = VarId>) -> Self {
        Self::with_state(vars)
    }
}

impl<W: ConsistencyState> Ad3Multi<W> {
    /// Creates the filter with an explicit bookkeeping strategy.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty or contains duplicates.
    pub fn with_state(vars: impl IntoIterator<Item = VarId>) -> Self {
        let mut consistency = BTreeMap::new();
        for v in vars {
            let prev = consistency.insert(v, W::default());
            assert!(prev.is_none(), "duplicate variable {v} in variable set");
        }
        assert!(!consistency.is_empty(), "needs at least one variable");
        Ad3Multi { consistency, seen: HashSet::new() }
    }
}

impl<W: ConsistencyState> AlertFilter for Ad3Multi<W> {
    fn name(&self) -> &'static str {
        "AD-3/multi"
    }

    fn offer(&mut self, alert: &Alert) -> Decision {
        if self.seen.contains(alert) {
            return Decision::Discard(DiscardReason::Duplicate);
        }
        let conflicts =
            self.consistency.iter().any(|(&var, state)| match alert.fingerprint.seqnos(var) {
                Some(seqnos) => state.conflicts(seqnos),
                None => true,
            });
        if conflicts {
            return Decision::Discard(DiscardReason::Conflict);
        }
        for (&var, state) in self.consistency.iter_mut() {
            if let Some(seqnos) = alert.fingerprint.seqnos(var) {
                state.record(seqnos);
            }
        }
        self.seen.insert(alert.clone());
        Decision::Deliver
    }

    fn reset(&mut self) {
        for state in self.consistency.values_mut() {
            state.clear();
        }
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::testutil::alert2;
    use crate::ad::Ad6;
    use crate::alert::{AlertId, CeId, CondId, HistoryFingerprint};
    use crate::update::SeqNo;

    fn x() -> VarId {
        VarId::new(0)
    }
    fn y() -> VarId {
        VarId::new(1)
    }

    #[test]
    fn per_variable_conflicts_still_caught() {
        let alert22 = |xs: &[u64], ys: &[u64]| {
            Alert::new(
                CondId::SINGLE,
                HistoryFingerprint::new(vec![
                    (x(), xs.iter().map(|&s| SeqNo::new(s)).collect()),
                    (y(), ys.iter().map(|&s| SeqNo::new(s)).collect()),
                ]),
                vec![],
                AlertId { ce: CeId::new(0), index: 0 },
            )
        };
        let mut f = Ad3Multi::new([x(), y()]);
        assert!(f.offer(&alert22(&[3, 1], &[1])).is_deliver()); // x: Missed = {2}
        assert_eq!(f.offer(&alert22(&[4, 3, 2], &[2])), Decision::Discard(DiscardReason::Conflict));
    }

    #[test]
    fn theorem_10_cycle_slips_through() {
        // The ablation's defining failure: both Theorem-10 alerts pass
        // (no per-variable conflict), though together they are
        // inconsistent. AD-6 (with the AD-5 half) drops the second.
        let mut ablated = Ad3Multi::new([x(), y()]);
        assert!(ablated.offer(&alert2(2, 1)).is_deliver());
        assert!(ablated.offer(&alert2(1, 2)).is_deliver(), "cycle undetected by design");

        let mut full = Ad6::new([x(), y()]);
        assert!(full.offer(&alert2(2, 1)).is_deliver());
        assert!(!full.offer(&alert2(1, 2)).is_deliver());
    }

    #[test]
    fn duplicates_removed() {
        let mut f = Ad3Multi::new([x(), y()]);
        assert!(f.offer(&alert2(1, 1)).is_deliver());
        assert_eq!(f.offer(&alert2(1, 1)), Decision::Discard(DiscardReason::Duplicate));
    }

    #[test]
    fn reset_clears() {
        let mut f = Ad3Multi::new([x(), y()]);
        f.offer(&alert2(3, 1));
        f.reset();
        assert!(f.offer(&alert2(1, 1)).is_deliver());
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn empty_vars_rejected() {
        Ad3Multi::new(Vec::<VarId>::new());
    }
}
