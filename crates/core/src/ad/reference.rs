//! Reference filters bracketing the design space.

use crate::alert::Alert;

use super::{AlertFilter, Decision, DiscardReason};

/// Displays every arriving alert unchanged.
///
/// This is the behaviour of an AD with no filtering at all — the
/// paper's corresponding non-replicated system `N` performs no
/// filtering, and `PassThrough` is the identity element of the
/// domination order: it dominates every filter.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassThrough;

impl PassThrough {
    /// Creates the filter.
    pub fn new() -> Self {
        PassThrough
    }
}

impl AlertFilter for PassThrough {
    fn name(&self) -> &'static str {
        "pass-through"
    }

    fn offer(&mut self, _alert: &Alert) -> Decision {
        Decision::Deliver
    }

    fn reset(&mut self) {}
}

/// Discards every arriving alert.
///
/// The paper's §4.1 observes that an AD algorithm that passes nothing
/// trivially guarantees orderedness and consistency (the empty sequence
/// is ordered and a subsequence of anything) — and is useless, which is
/// exactly why the *domination* relation exists. `DropAll` is the
/// bottom of that order and serves as a baseline in the domination
/// experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct DropAll;

impl DropAll {
    /// Creates the filter.
    pub fn new() -> Self {
        DropAll
    }
}

impl AlertFilter for DropAll {
    fn name(&self) -> &'static str {
        "drop-all"
    }

    fn offer(&mut self, _alert: &Alert) -> Decision {
        Decision::Discard(DiscardReason::Policy)
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::apply_filter;
    use crate::ad::testutil::alert1;

    #[test]
    fn pass_through_is_identity() {
        let arrivals = vec![alert1(&[2]), alert1(&[1]), alert1(&[2])];
        let out = apply_filter(&mut PassThrough::new(), &arrivals);
        assert_eq!(out, arrivals);
    }

    #[test]
    fn drop_all_outputs_nothing() {
        let arrivals = vec![alert1(&[1]), alert1(&[2])];
        let out = apply_filter(&mut DropAll::new(), &arrivals);
        assert!(out.is_empty());
    }
}
