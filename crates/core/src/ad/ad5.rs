//! Algorithm AD-5: orderedness for multi-variable systems (paper
//! Fig. A-5).

use std::collections::BTreeMap;

use crate::alert::Alert;
use crate::update::SeqNo;
use crate::var::VarId;

use super::{AlertFilter, Decision, DiscardReason};

/// Algorithm AD-5: the multi-variable generalization of [`Ad2`]
/// (paper §5.1).
///
/// For every displayed alert the filter records its seqno with respect
/// to each variable; an arriving alert is discarded if any of its
/// seqnos would *decrease* a recorded watermark (displaying it would
/// produce an output unordered in that variable), or if **all** its
/// seqnos equal the watermarks (a duplicate).
///
/// Lemma 4 proves the output is ordered; Lemma 5 shows AD-5 also makes
/// most systems consistent (all but aggressively triggered historical
/// conditions); Lemma 6 shows multi-variable systems under AD-5 remain
/// incomplete (Table 3). The paper's pseudo-code is for two variables;
/// this implementation generalizes to any number.
///
/// [`Ad2`]: super::Ad2
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Ad5 {
    last: BTreeMap<VarId, Option<SeqNo>>,
}

impl Ad5 {
    /// Creates the filter for the condition's variable set.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty or contains duplicates.
    pub fn new(vars: impl IntoIterator<Item = VarId>) -> Self {
        let mut last = BTreeMap::new();
        for v in vars {
            let prev = last.insert(v, None);
            assert!(prev.is_none(), "duplicate variable {v} in AD-5 variable set");
        }
        assert!(!last.is_empty(), "AD-5 needs at least one variable");
        Ad5 { last }
    }

    /// The recorded watermark for `var`.
    pub fn watermark(&self, var: VarId) -> Option<SeqNo> {
        self.last.get(&var).copied().flatten()
    }

    /// Decision without committing state (used by AD-6).
    pub(crate) fn check(&self, alert: &Alert) -> Decision {
        let mut all_equal = true;
        for (&var, &last) in &self.last {
            let Some(seq) = alert.seqno(var) else {
                return Decision::Discard(DiscardReason::Conflict);
            };
            match last {
                Some(l) if seq < l => return Decision::Discard(DiscardReason::OutOfOrder),
                Some(l) if seq == l => {}
                _ => all_equal = false,
            }
        }
        if all_equal {
            Decision::Discard(DiscardReason::Duplicate)
        } else {
            Decision::Deliver
        }
    }

    /// Records a delivered alert (used by AD-6).
    pub(crate) fn commit(&mut self, alert: &Alert) {
        for (&var, last) in self.last.iter_mut() {
            *last = alert.seqno(var);
        }
    }
}

impl AlertFilter for Ad5 {
    fn name(&self) -> &'static str {
        "AD-5"
    }

    fn offer(&mut self, alert: &Alert) -> Decision {
        let d = self.check(alert);
        if d.is_deliver() {
            self.commit(alert);
        }
        d
    }

    fn reset(&mut self) {
        for last in self.last.values_mut() {
            *last = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::testutil::alert2;

    fn ad() -> Ad5 {
        Ad5::new([VarId::new(0), VarId::new(1)])
    }

    #[test]
    fn theorem_10_counterexample_is_filtered() {
        // AD-1 passes both a(2x,1y) and a(1x,2y) (inconsistent, unordered);
        // AD-5 drops the second because x regresses 2 → 1.
        let mut f = ad();
        assert!(f.offer(&alert2(2, 1)).is_deliver());
        assert_eq!(f.offer(&alert2(1, 2)), Decision::Discard(DiscardReason::OutOfOrder));
    }

    #[test]
    fn progress_in_one_variable_suffices() {
        let mut f = ad();
        assert!(f.offer(&alert2(1, 1)).is_deliver());
        assert!(f.offer(&alert2(1, 2)).is_deliver()); // y advances, x equal
        assert!(f.offer(&alert2(2, 2)).is_deliver()); // x advances, y equal
    }

    #[test]
    fn all_equal_is_duplicate() {
        let mut f = ad();
        assert!(f.offer(&alert2(1, 1)).is_deliver());
        assert_eq!(f.offer(&alert2(1, 1)), Decision::Discard(DiscardReason::Duplicate));
    }

    #[test]
    fn regression_in_any_variable_discards() {
        let mut f = ad();
        assert!(f.offer(&alert2(3, 3)).is_deliver());
        assert!(!f.offer(&alert2(4, 2)).is_deliver()); // y regresses
        assert!(!f.offer(&alert2(2, 4)).is_deliver()); // x regresses
        assert!(f.offer(&alert2(4, 3)).is_deliver());
    }

    #[test]
    fn first_alert_always_passes() {
        let mut f = ad();
        assert!(f.offer(&alert2(7, 9)).is_deliver());
        assert_eq!(f.watermark(VarId::new(0)), Some(SeqNo::new(7)));
        assert_eq!(f.watermark(VarId::new(1)), Some(SeqNo::new(9)));
    }

    #[test]
    fn alert_missing_a_variable_is_rejected() {
        let mut f = Ad5::new([VarId::new(0), VarId::new(1), VarId::new(2)]);
        assert!(!f.offer(&alert2(1, 1)).is_deliver()); // no v2 entry
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn empty_variable_set_rejected() {
        Ad5::new(Vec::<VarId>::new());
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_variable_rejected() {
        Ad5::new([VarId::new(0), VarId::new(0)]);
    }

    #[test]
    fn reset_clears_watermarks() {
        let mut f = ad();
        f.offer(&alert2(5, 5));
        f.reset();
        assert!(f.offer(&alert2(1, 1)).is_deliver());
    }
}
