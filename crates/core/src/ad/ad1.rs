//! Algorithm AD-1: exact duplicate removal (paper Fig. A-1).

use std::collections::HashSet;

use crate::alert::Alert;

use super::{AlertFilter, Decision, DiscardReason};

/// Algorithm AD-1 (*Exact Duplicate Removal*): discards an alert iff an
/// identical one — same condition, same update histories — has already
/// been displayed.
///
/// This is the baseline replicated-AD behaviour studied in the paper's
/// §3 (Table 1): with lossless links it yields an ordered and complete
/// system (Theorem 1); with lossy links it preserves completeness for
/// non-historical conditions (Theorem 2) and consistency for
/// conservative ones (Theorem 3), but an aggressively triggered
/// historical condition can produce *inconsistent* output (Theorem 4).
///
/// ```rust
/// use rcm_core::ad::{Ad1, AlertFilter};
/// # use rcm_core::{Alert, AlertId, CeId, CondId, HistoryFingerprint, SeqNo, VarId};
/// # let fp = |s: &[u64]| HistoryFingerprint::single(
/// #     VarId::new(0), s.iter().map(|&n| SeqNo::new(n)).collect());
/// # let mk = |s: &[u64], ce| Alert::new(CondId::SINGLE, fp(s), vec![],
/// #     AlertId { ce: CeId::new(ce), index: 0 });
/// let mut ad = Ad1::new();
/// let a1 = mk(&[3, 2], 0); // CE1 triggered on 2x,3x
/// let a2 = mk(&[3, 1], 1); // CE2 missed 2x, triggered on 1x,3x
/// assert!(ad.offer(&a1).is_deliver());
/// assert!(ad.offer(&a2).is_deliver()); // histories differ: NOT a duplicate
/// assert!(!ad.offer(&a1).is_deliver()); // exact duplicate
/// ```
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Ad1 {
    seen: HashSet<Alert>,
}

impl Ad1 {
    /// Creates the filter with no alerts seen.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct alerts displayed so far.
    pub fn displayed(&self) -> usize {
        self.seen.len()
    }
}

impl AlertFilter for Ad1 {
    fn name(&self) -> &'static str {
        "AD-1"
    }

    fn offer(&mut self, alert: &Alert) -> Decision {
        if self.seen.contains(alert) {
            Decision::Discard(DiscardReason::Duplicate)
        } else {
            self.seen.insert(alert.clone());
            Decision::Deliver
        }
    }

    fn reset(&mut self) {
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::testutil::{alert1, alert_cond};

    #[test]
    fn removes_only_exact_duplicates() {
        let mut ad = Ad1::new();
        assert!(ad.offer(&alert1(&[3, 2])).is_deliver());
        assert!(ad.offer(&alert1(&[3, 1])).is_deliver()); // differing H passes
        assert_eq!(ad.offer(&alert1(&[3, 2])), Decision::Discard(DiscardReason::Duplicate));
        assert_eq!(ad.displayed(), 2);
    }

    #[test]
    fn out_of_order_alerts_pass() {
        // AD-1 enforces nothing about order (Theorem 2: not ordered).
        let mut ad = Ad1::new();
        assert!(ad.offer(&alert1(&[2])).is_deliver());
        assert!(ad.offer(&alert1(&[1])).is_deliver());
    }

    #[test]
    fn different_conditions_never_duplicate() {
        let mut ad = Ad1::new();
        assert!(ad.offer(&alert_cond(0, &[1])).is_deliver());
        assert!(ad.offer(&alert_cond(1, &[1])).is_deliver());
    }

    #[test]
    fn reset_forgets_history() {
        let mut ad = Ad1::new();
        ad.offer(&alert1(&[1]));
        ad.reset();
        assert!(ad.offer(&alert1(&[1])).is_deliver());
    }
}
