//! Algorithm AD-2: orderedness for single-variable systems (paper
//! Fig. A-2).

use crate::alert::Alert;
use crate::update::SeqNo;
use crate::var::VarId;

use super::{AlertFilter, Decision, DiscardReason};

/// Algorithm AD-2: discards any alert that arrives out of order,
/// guaranteeing the displayed sequence is ordered in *all* systems —
/// lossy or lossless links, conservative or aggressive conditions
/// (Table 2).
///
/// The filter keeps the highest displayed `a.seqno.x` and discards any
/// alert whose seqno is less than (*out of order*) or equal to
/// (*duplicate*) it. Theorem 5 proves AD-2 is **maximally ordered**: no
/// orderedness-guaranteeing filter passes strictly more alerts.
/// Theorem 6 records the price: `AD-1 > AD-2` — orderedness is bought
/// by dropping alerts a plain deduplicator would display.
///
/// ```rust
/// use rcm_core::ad::{Ad2, AlertFilter};
/// use rcm_core::VarId;
/// # use rcm_core::{Alert, AlertId, CeId, CondId, HistoryFingerprint, SeqNo};
/// # let mk = |s: u64| Alert::new(CondId::SINGLE,
/// #     HistoryFingerprint::single(VarId::new(0), vec![SeqNo::new(s)]), vec![],
/// #     AlertId { ce: CeId::new(0), index: 0 });
/// let mut ad = Ad2::new(VarId::new(0));
/// assert!(ad.offer(&mk(2)).is_deliver());
/// assert!(!ad.offer(&mk(1)).is_deliver()); // Example 2: late alert dropped
/// assert!(ad.offer(&mk(3)).is_deliver());
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Ad2 {
    var: VarId,
    last: Option<SeqNo>,
}

impl Ad2 {
    /// Creates the filter for the system's single variable.
    pub fn new(var: VarId) -> Self {
        Ad2 { var, last: None }
    }

    /// The highest displayed seqno, if any alert was displayed.
    pub fn last(&self) -> Option<SeqNo> {
        self.last
    }

    /// Decision without committing state (used by AD-4).
    pub(crate) fn check(&self, alert: &Alert) -> Decision {
        let Some(seq) = alert.seqno(self.var) else {
            // An alert not mentioning the variable cannot be ordered
            // against anything; single-variable systems never produce
            // one, so treat it as conflicting rather than guess.
            return Decision::Discard(DiscardReason::Conflict);
        };
        match self.last {
            Some(last) if seq < last => Decision::Discard(DiscardReason::OutOfOrder),
            Some(last) if seq == last => Decision::Discard(DiscardReason::Duplicate),
            _ => Decision::Deliver,
        }
    }

    /// Records a delivered alert (used by AD-4).
    pub(crate) fn commit(&mut self, alert: &Alert) {
        self.last = alert.seqno(self.var);
    }
}

impl AlertFilter for Ad2 {
    fn name(&self) -> &'static str {
        "AD-2"
    }

    fn offer(&mut self, alert: &Alert) -> Decision {
        let d = self.check(alert);
        if d.is_deliver() {
            self.commit(alert);
        }
        d
    }

    fn reset(&mut self) {
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::testutil::alert1;

    fn ad() -> Ad2 {
        Ad2::new(VarId::new(0))
    }

    #[test]
    fn example_2_incompleteness() {
        // U1 = ⟨1(3100)⟩, U2 = ⟨2(3200)⟩; a2 arrives before a1 → a1 dropped.
        let mut f = ad();
        assert!(f.offer(&alert1(&[2])).is_deliver());
        assert_eq!(f.offer(&alert1(&[1])), Decision::Discard(DiscardReason::OutOfOrder));
    }

    #[test]
    fn equal_seqno_is_duplicate() {
        let mut f = ad();
        f.offer(&alert1(&[2]));
        assert_eq!(f.offer(&alert1(&[2])), Decision::Discard(DiscardReason::Duplicate));
    }

    #[test]
    fn equal_seqno_different_history_also_dropped() {
        // AD-2 is cruder than AD-1: both alerts triggered at 3x but with
        // different histories; AD-2 still drops the second (seqno <= last).
        let mut f = ad();
        assert!(f.offer(&alert1(&[3, 2])).is_deliver());
        assert!(!f.offer(&alert1(&[3, 1])).is_deliver());
    }

    #[test]
    fn monotone_sequences_pass_entirely() {
        let mut f = ad();
        for s in 1..=10u64 {
            assert!(f.offer(&alert1(&[s])).is_deliver());
        }
        assert_eq!(f.last(), Some(SeqNo::new(10)));
    }

    #[test]
    fn alert_missing_variable_is_rejected() {
        let mut f = Ad2::new(VarId::new(9));
        assert!(!f.offer(&alert1(&[1])).is_deliver());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut f = ad();
        f.offer(&alert1(&[5]));
        f.reset();
        assert!(f.offer(&alert1(&[1])).is_deliver());
    }
}
