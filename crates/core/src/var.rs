//! Variable identifiers and the variable-name registry.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a real-world variable monitored by a Data Monitor.
///
/// The paper writes updates as `u(varname, seqno, value)`; `VarId` is the
/// `varname`. We use a compact integer id so updates stay `Copy` and
/// cheap to route in the simulator and runtime; human-readable names are
/// kept in a [`VarRegistry`].
///
/// ```rust
/// use rcm_core::VarId;
/// let x = VarId::new(0);
/// assert_eq!(x.index(), 0);
/// assert_eq!(x.to_string(), "v0");
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct VarId(u32);

impl VarId {
    /// Creates a variable id from a raw index.
    pub const fn new(index: u32) -> Self {
        VarId(index)
    }

    /// Returns the raw index backing this id.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VarId {
    fn from(index: u32) -> Self {
        VarId(index)
    }
}

/// Bidirectional mapping between human-readable variable names (e.g.
/// `"reactor_x_temp"`) and compact [`VarId`]s.
///
/// Names are assigned ids in registration order. Registering the same
/// name twice returns the existing id, so a registry can be rebuilt
/// idempotently from configuration.
///
/// ```rust
/// use rcm_core::VarRegistry;
/// let mut reg = VarRegistry::new();
/// let x = reg.register("reactor_x");
/// let y = reg.register("reactor_y");
/// assert_ne!(x, y);
/// assert_eq!(reg.register("reactor_x"), x);
/// assert_eq!(reg.name(x), Some("reactor_x"));
/// assert_eq!(reg.lookup("reactor_y"), Some(y));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarRegistry {
    names: Vec<String>,
    #[serde(skip)]
    by_name: HashMap<String, VarId>,
}

impl VarRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `name`, returning its id; returns the existing id if the
    /// name is already registered.
    pub fn register(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = VarId::new(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Returns the name registered for `id`, if any.
    pub fn name(&self, id: VarId) -> Option<&str> {
        self.names.get(id.index() as usize).map(String::as_str)
    }

    /// Returns the id registered for `name`, if any.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variables have been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (VarId::new(i as u32), n.as_str()))
    }

    /// Rebuilds the name-to-id index; needed after deserializing.
    pub fn rebuild_index(&mut self) {
        self.by_name =
            self.names.iter().enumerate().map(|(i, n)| (n.clone(), VarId::new(i as u32))).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut reg = VarRegistry::new();
        let a = reg.register("a");
        let b = reg.register("b");
        let c = reg.register("c");
        assert_eq!((a.index(), b.index(), c.index()), (0, 1, 2));
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn reregistration_is_idempotent() {
        let mut reg = VarRegistry::new();
        let a = reg.register("a");
        assert_eq!(reg.register("a"), a);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn lookup_misses_return_none() {
        let reg = VarRegistry::new();
        assert_eq!(reg.lookup("nope"), None);
        assert_eq!(reg.name(VarId::new(9)), None);
        assert!(reg.is_empty());
    }

    #[test]
    fn iter_yields_registration_order() {
        let mut reg = VarRegistry::new();
        reg.register("x");
        reg.register("y");
        let pairs: Vec<_> = reg.iter().map(|(id, n)| (id.index(), n.to_owned())).collect();
        assert_eq!(pairs, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut reg = VarRegistry::new();
        reg.register("x");
        let mut clone = VarRegistry { names: reg.names.clone(), by_name: HashMap::new() };
        assert_eq!(clone.lookup("x"), None);
        clone.rebuild_index();
        assert_eq!(clone.lookup("x"), Some(VarId::new(0)));
    }

    #[test]
    fn display_roundtrip() {
        assert_eq!(VarId::new(17).to_string(), "v17");
        assert_eq!(VarId::from(17u32), VarId::new(17));
    }
}
