//! A small-vector used on the alert hot path.
//!
//! Every alert carries a [`HistoryFingerprint`](crate::HistoryFingerprint)
//! — one newest-first seqno list per variable — and in every scenario
//! the paper considers, history degrees are 1–3 and conditions mention
//! 1–3 variables. Backing those lists with `Vec` costs two heap
//! allocations per alert plus one more per clone into an AD `seen`
//! set. [`InlineVec`] keeps up to `N` elements inline in the struct
//! itself and only spills to the heap beyond that, so the common case
//! allocates nothing.
//!
//! The inline storage is a `[MaybeUninit<T>; N]` block, so pushing
//! never writes `T::Default` fillers and the element type needs no
//! `Default` impl. This is the crate's **only** `unsafe` module (the
//! crate is otherwise `#![deny(unsafe_code)]`, and `cargo xtask lint`
//! pins the allowlist): every `unsafe` block cites the single
//! invariant below, and the drop-counter tests at the bottom pin
//! leak-freedom and double-drop-freedom through every storage
//! transition.
#![allow(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem::{ManuallyDrop, MaybeUninit};

use serde::{Deserialize, Serialize};

/// A growable sequence storing its first `N` elements inline.
///
/// # Invariant (load-bearing for every `unsafe` block here)
///
/// * `len <= N` (**inline regime**): `inline[..len]` are initialized
///   `T`s, `inline[len..]` are uninitialized, and `spill` is empty.
/// * `len > N` (**spill regime**): all `len` elements live in `spill`
///   (`spill.len() == len`) and *every* inline slot is uninitialized.
///
/// [`InlineVec::as_slice`] is contiguous in both regimes, so readers
/// never see the split.
///
/// Equality, ordering, hashing and serialization are all slice-based:
/// an `InlineVec` behaves exactly like the sequence of its elements,
/// regardless of where they are stored. In particular the serde wire
/// format is identical to `Vec<T>`'s.
///
/// ```rust
/// use rcm_core::inline::InlineVec;
/// let mut v: InlineVec<u64, 3> = [1u64, 2].into_iter().collect();
/// v.push(3); // still inline
/// v.push(4); // spills
/// assert_eq!(v.as_slice(), &[1, 2, 3, 4]);
/// assert_eq!(v, InlineVec::<u64, 3>::from(vec![1, 2, 3, 4]));
/// ```
pub struct InlineVec<T, const N: usize> {
    inline: [MaybeUninit<T>; N],
    len: usize,
    spill: Vec<T>,
}

impl<T, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        InlineVec { inline: [const { MaybeUninit::uninit() }; N], len: 0, spill: Vec::new() }
    }

    /// Appends an element, spilling to the heap when the inline
    /// capacity `N` is exceeded.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len].write(value);
        } else {
            if self.len == N {
                // Reserve up front so the moves below cannot panic
                // with elements duplicated between the two buffers.
                self.spill.reserve(N + 1);
                for slot in &mut self.inline {
                    // SAFETY: len == N, so by the invariant every
                    // inline slot is initialized; each is read exactly
                    // once and the regime flips to spill (len becomes
                    // N + 1 below), so the now-moved-out slots are
                    // never read or dropped again.
                    self.spill.push(unsafe { slot.assume_init_read() });
                }
            }
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Removes all elements, keeping any spill capacity.
    pub fn clear(&mut self) {
        if self.len <= N {
            // SAFETY: inline regime — `as_mut_slice` covers exactly
            // the initialized `inline[..len]`; dropping them in place
            // leaves every slot uninitialized, matching len = 0.
            unsafe { std::ptr::drop_in_place(self.as_mut_slice() as *mut [T]) };
        } else {
            // Spill regime: inline slots are already all uninitialized.
            self.spill.clear();
        }
        self.len = 0;
    }

    /// Number of elements held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no elements are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the elements currently live in the inline buffer (true
    /// for up to `N` elements).
    pub fn is_inline(&self) -> bool {
        self.len <= N
    }

    /// All elements as one contiguous slice.
    pub fn as_slice(&self) -> &[T] {
        if self.len <= N {
            // SAFETY: inline regime — the first `len` slots are
            // initialized, and `MaybeUninit<T>` has the same layout as
            // `T`, so the prefix reinterprets as a `[T]` slice.
            unsafe { std::slice::from_raw_parts(self.inline.as_ptr().cast::<T>(), self.len) }
        } else {
            &self.spill
        }
    }

    /// All elements as one contiguous mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.len <= N {
            // SAFETY: as in `as_slice`, plus `&mut self` guarantees
            // exclusivity.
            unsafe {
                std::slice::from_raw_parts_mut(self.inline.as_mut_ptr().cast::<T>(), self.len)
            }
        } else {
            &mut self.spill
        }
    }
}

impl<T, const N: usize> Drop for InlineVec<T, N> {
    fn drop(&mut self) {
        if self.len <= N {
            // SAFETY: inline regime — exactly `inline[..len]` are live
            // and nothing else owns them; `spill` (empty) drops itself
            // afterwards. In the spill regime `spill`'s own Drop frees
            // the elements and the inline slots hold nothing.
            unsafe { std::ptr::drop_in_place(self.as_mut_slice() as *mut [T]) };
        }
    }
}

impl<T: Clone, const N: usize> Clone for InlineVec<T, N> {
    fn clone(&self) -> Self {
        self.as_slice().iter().cloned().collect()
    }
}

impl<T, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(vec: Vec<T>) -> Self {
        if vec.len() > N {
            // Reuse the allocation instead of copying element-wise.
            InlineVec { inline: [const { MaybeUninit::uninit() }; N], len: vec.len(), spill: vec }
        } else {
            vec.into_iter().collect()
        }
    }
}

impl<T, const N: usize> From<InlineVec<T, N>> for Vec<T> {
    fn from(v: InlineVec<T, N>) -> Vec<T> {
        // Suppress InlineVec::drop: ownership of every element moves
        // out below, exactly once.
        let mut v = ManuallyDrop::new(v);
        if v.len > N {
            std::mem::take(&mut v.spill)
        } else {
            // `spill` is empty but may hold capacity from an earlier
            // spill/clear cycle; take it out so the allocation is
            // freed (ManuallyDrop won't run its Drop).
            drop(std::mem::take(&mut v.spill));
            let len = v.len;
            let mut out = Vec::with_capacity(len);
            for slot in &mut v.inline[..len] {
                // SAFETY: inline regime — each of the first `len`
                // slots is initialized and read exactly once; the
                // ManuallyDrop wrapper guarantees no drop runs on the
                // moved-out slots.
                out.push(unsafe { slot.assume_init_read() });
            }
            out
        }
    }
}

impl<T, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> std::ops::DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T, const N: usize> AsRef<[T]> for InlineVec<T, N> {
    fn as_ref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: PartialEq, const N: usize, const M: usize> PartialEq<InlineVec<T, M>> for InlineVec<T, N> {
    fn eq(&self, other: &InlineVec<T, M>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: PartialOrd, const N: usize> PartialOrd for InlineVec<T, N> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.as_slice().partial_cmp(other.as_slice())
    }
}

impl<T: Ord, const N: usize> Ord for InlineVec<T, N> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl<T: Hash, const N: usize> Hash for InlineVec<T, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Matches Vec<T> / [T]: length prefix then elements, so swapping
        // a Vec field for an InlineVec preserves hash values.
        self.as_slice().hash(state);
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Serialize, const N: usize> Serialize for InlineVec<T, N> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for InlineVec<T, N> {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(deserializer)?.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type V = InlineVec<u64, 3>;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v = V::new();
        assert!(v.is_empty() && v.is_inline());
        for i in 1..=3 {
            v.push(i);
        }
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn spills_and_stays_contiguous() {
        let mut v = V::new();
        for i in 1..=10 {
            v.push(i);
        }
        assert!(!v.is_inline());
        assert_eq!(v.len(), 10);
        assert_eq!(v.as_slice(), &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn clear_resets_both_regimes() {
        let mut v: V = (1..=10u64).collect();
        v.clear();
        assert!(v.is_empty());
        v.push(7);
        assert_eq!(v.as_slice(), &[7]);
        let mut w: V = (1..=2u64).collect();
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    fn equality_ignores_storage_regime() {
        let small: V = (1..=3u64).collect();
        let grown: InlineVec<u64, 2> = (1..=3u64).collect();
        assert!(!grown.is_inline());
        assert_eq!(small.as_slice(), grown.as_slice());
    }

    #[test]
    fn hash_matches_vec() {
        use std::collections::hash_map::DefaultHasher;
        fn h<T: Hash>(t: &T) -> u64 {
            let mut s = DefaultHasher::new();
            t.hash(&mut s);
            s.finish()
        }
        let v: V = (1..=5u64).collect();
        let vec: Vec<u64> = (1..=5).collect();
        assert_eq!(h(&v), h(&vec));
    }

    #[test]
    fn vec_roundtrip() {
        for n in [0usize, 2, 3, 4, 9] {
            let vec: Vec<u64> = (0..n as u64).collect();
            let iv = V::from(vec.clone());
            assert_eq!(Vec::from(iv.clone()), vec);
            assert_eq!(iv.len(), n);
        }
    }

    #[test]
    fn sort_via_mut_slice() {
        let mut v: V = [3u64, 1, 2].into_iter().collect();
        v.as_mut_slice().sort_unstable();
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        let mut w: V = [5u64, 3, 4, 1, 2].into_iter().collect();
        w.as_mut_slice().sort_unstable();
        assert_eq!(w.as_slice(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn serde_roundtrip_matches_vec_format() {
        let v: V = (1..=5u64).collect();
        let json = serde_json::to_string(&v).expect("serializes");
        assert_eq!(json, "[1,2,3,4,5]");
        let back: V = serde_json::from_str(&json).expect("parses back");
        assert_eq!(back, v);
        let inline: V = (1..=2u64).collect();
        let round = serde_json::to_string(&inline).expect("serializes");
        let back2: V = serde_json::from_str(&round).expect("parses back");
        assert_eq!(back2, inline);
    }

    #[test]
    fn deref_gives_slice_methods() {
        let v: V = [4u64, 2].into_iter().collect();
        assert_eq!(v.first(), Some(&4));
        assert_eq!(v.iter().copied().max(), Some(4));
        assert_eq!(v.windows(2).count(), 1);
    }

    #[test]
    fn works_without_default_impls() {
        // MaybeUninit storage means T needs no Default.
        #[derive(Clone, Debug, PartialEq)]
        struct NoDefault(u64);
        let v: InlineVec<NoDefault, 2> =
            [NoDefault(1), NoDefault(2), NoDefault(3)].into_iter().collect();
        assert_eq!(v.as_slice().last(), Some(&NoDefault(3)));
    }

    // ---- drop accounting: the unsafe audit's executable half -------

    use std::sync::atomic::{AtomicI64, Ordering};

    static LIVE: AtomicI64 = AtomicI64::new(0);

    /// An element that counts live instances; a double drop would send
    /// the counter negative, a leak leaves it positive.
    #[derive(Debug)]
    struct Counted(u64);
    impl Counted {
        fn new(v: u64) -> Self {
            LIVE.fetch_add(1, Ordering::SeqCst);
            Counted(v)
        }
    }
    impl Clone for Counted {
        fn clone(&self) -> Self {
            Counted::new(self.0)
        }
    }
    impl Drop for Counted {
        fn drop(&mut self) {
            LIVE.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn assert_balanced(f: impl FnOnce()) {
        let before = LIVE.load(Ordering::SeqCst);
        f();
        assert_eq!(LIVE.load(Ordering::SeqCst), before, "leak or double drop");
    }

    #[test]
    fn drop_accounting_inline_regime() {
        assert_balanced(|| {
            let mut v: InlineVec<Counted, 3> = InlineVec::new();
            v.push(Counted::new(1));
            v.push(Counted::new(2));
        });
    }

    #[test]
    fn drop_accounting_across_the_spill_transition() {
        assert_balanced(|| {
            let mut v: InlineVec<Counted, 3> = InlineVec::new();
            for i in 0..7 {
                v.push(Counted::new(i));
            }
            assert!(!v.is_inline());
        });
    }

    #[test]
    fn drop_accounting_clear_then_reuse() {
        assert_balanced(|| {
            let mut v: InlineVec<Counted, 2> = InlineVec::new();
            for i in 0..5 {
                v.push(Counted::new(i));
            }
            v.clear(); // spill regime clear
            for i in 0..2 {
                v.push(Counted::new(i));
            }
            v.clear(); // inline regime clear
            v.push(Counted::new(9));
        });
    }

    #[test]
    fn drop_accounting_clone_and_into_vec() {
        assert_balanced(|| {
            let mut v: InlineVec<Counted, 3> = InlineVec::new();
            for i in 0..2 {
                v.push(Counted::new(i));
            }
            let w = v.clone();
            let out: Vec<Counted> = v.into(); // inline-regime move-out
            assert_eq!(out.len(), 2);
            let mut big: InlineVec<Counted, 2> = w.as_slice().iter().cloned().collect();
            big.push(Counted::new(7));
            let spilled: Vec<Counted> = big.into(); // spill-regime move-out
            assert_eq!(spilled.len(), 3);
        });
    }

    #[test]
    fn drop_accounting_into_vec_after_spill_shrink() {
        assert_balanced(|| {
            // Regression: an inline-regime InlineVec whose spill Vec
            // still holds capacity from an earlier spill must free that
            // allocation on conversion, not leak it.
            let mut v: InlineVec<Counted, 2> = InlineVec::new();
            for i in 0..4 {
                v.push(Counted::new(i));
            }
            v.clear();
            v.push(Counted::new(8));
            let out: Vec<Counted> = v.into();
            assert_eq!(out.len(), 1);
        });
    }
}
