//! A no-`unsafe` small-vector used on the alert hot path.
//!
//! Every alert carries a [`HistoryFingerprint`](crate::HistoryFingerprint)
//! — one newest-first seqno list per variable — and in every scenario
//! the paper considers, history degrees are 1–3 and conditions mention
//! 1–3 variables. Backing those lists with `Vec` costs two heap
//! allocations per alert plus one more per clone into an AD `seen`
//! set. [`InlineVec`] keeps up to `N` elements inline in the struct
//! itself and only spills to the heap beyond that, so the common case
//! allocates nothing.
//!
//! The crate forbids `unsafe`, so the inline storage is a plain
//! `[T; N]` of `T::Default` fillers rather than a `MaybeUninit` block;
//! for the element types used here (`SeqNo`, small tuples) the filler
//! cost is a few zeroed words.

use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

/// A growable sequence storing its first `N` elements inline.
///
/// Invariant: when `len <= N` the elements live in `inline[..len]` and
/// `spill` is empty; once the length exceeds `N`, *all* elements live
/// in `spill` and the inline slots hold defaults. [`InlineVec::as_slice`]
/// is contiguous in both regimes, so readers never see the split.
///
/// Equality, ordering, hashing and serialization are all slice-based:
/// an `InlineVec` behaves exactly like the sequence of its elements,
/// regardless of where they are stored. In particular the serde wire
/// format is identical to `Vec<T>`'s.
///
/// ```rust
/// use rcm_core::inline::InlineVec;
/// let mut v: InlineVec<u64, 3> = [1u64, 2].into_iter().collect();
/// v.push(3); // still inline
/// v.push(4); // spills
/// assert_eq!(v.as_slice(), &[1, 2, 3, 4]);
/// assert_eq!(v, InlineVec::<u64, 3>::from(vec![1, 2, 3, 4]));
/// ```
#[derive(Clone)]
pub struct InlineVec<T, const N: usize> {
    inline: [T; N],
    len: usize,
    spill: Vec<T>,
}

impl<T: Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        InlineVec { inline: std::array::from_fn(|_| T::default()), len: 0, spill: Vec::new() }
    }

    /// Appends an element, spilling to the heap when the inline
    /// capacity `N` is exceeded.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = value;
        } else {
            if self.len == N {
                self.spill.reserve(N + 1);
                for slot in &mut self.inline {
                    self.spill.push(std::mem::take(slot));
                }
            }
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Removes all elements, keeping any spill capacity.
    pub fn clear(&mut self) {
        self.spill.clear();
        if self.len > 0 && self.len <= N {
            for slot in &mut self.inline[..self.len] {
                *slot = T::default();
            }
        }
        self.len = 0;
    }
}

impl<T, const N: usize> InlineVec<T, N> {
    /// Number of elements held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no elements are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the elements currently live in the inline buffer (true
    /// for up to `N` elements).
    pub fn is_inline(&self) -> bool {
        self.len <= N
    }

    /// All elements as one contiguous slice.
    pub fn as_slice(&self) -> &[T] {
        if self.len <= N {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// All elements as one contiguous mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.len <= N {
            &mut self.inline[..self.len]
        } else {
            &mut self.spill
        }
    }
}

impl<T: Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T: Default, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T: Default, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(vec: Vec<T>) -> Self {
        if vec.len() > N {
            // Reuse the allocation instead of copying element-wise.
            InlineVec { inline: std::array::from_fn(|_| T::default()), len: vec.len(), spill: vec }
        } else {
            vec.into_iter().collect()
        }
    }
}

impl<T: Clone, const N: usize> From<InlineVec<T, N>> for Vec<T> {
    fn from(v: InlineVec<T, N>) -> Vec<T> {
        if v.len > N {
            v.spill
        } else {
            v.inline[..v.len].to_vec()
        }
    }
}

impl<T, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> std::ops::DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T, const N: usize> AsRef<[T]> for InlineVec<T, N> {
    fn as_ref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: PartialEq, const N: usize, const M: usize> PartialEq<InlineVec<T, M>> for InlineVec<T, N> {
    fn eq(&self, other: &InlineVec<T, M>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: PartialOrd, const N: usize> PartialOrd for InlineVec<T, N> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.as_slice().partial_cmp(other.as_slice())
    }
}

impl<T: Ord, const N: usize> Ord for InlineVec<T, N> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl<T: Hash, const N: usize> Hash for InlineVec<T, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Matches Vec<T> / [T]: length prefix then elements, so swapping
        // a Vec field for an InlineVec preserves hash values.
        self.as_slice().hash(state);
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Serialize, const N: usize> Serialize for InlineVec<T, N> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de> + Default, const N: usize> Deserialize<'de> for InlineVec<T, N> {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(deserializer)?.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type V = InlineVec<u64, 3>;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v = V::new();
        assert!(v.is_empty() && v.is_inline());
        for i in 1..=3 {
            v.push(i);
        }
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn spills_and_stays_contiguous() {
        let mut v = V::new();
        for i in 1..=10 {
            v.push(i);
        }
        assert!(!v.is_inline());
        assert_eq!(v.len(), 10);
        assert_eq!(v.as_slice(), &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn clear_resets_both_regimes() {
        let mut v: V = (1..=10u64).collect();
        v.clear();
        assert!(v.is_empty());
        v.push(7);
        assert_eq!(v.as_slice(), &[7]);
        let mut w: V = (1..=2u64).collect();
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    fn equality_ignores_storage_regime() {
        let small: V = (1..=3u64).collect();
        let grown: InlineVec<u64, 2> = (1..=3u64).collect();
        assert!(!grown.is_inline());
        assert_eq!(small.as_slice(), grown.as_slice());
    }

    #[test]
    fn hash_matches_vec() {
        use std::collections::hash_map::DefaultHasher;
        fn h<T: Hash>(t: &T) -> u64 {
            let mut s = DefaultHasher::new();
            t.hash(&mut s);
            s.finish()
        }
        let v: V = (1..=5u64).collect();
        let vec: Vec<u64> = (1..=5).collect();
        assert_eq!(h(&v), h(&vec));
    }

    #[test]
    fn vec_roundtrip() {
        for n in [0usize, 2, 3, 4, 9] {
            let vec: Vec<u64> = (0..n as u64).collect();
            let iv = V::from(vec.clone());
            assert_eq!(Vec::from(iv.clone()), vec);
            assert_eq!(iv.len(), n);
        }
    }

    #[test]
    fn sort_via_mut_slice() {
        let mut v: V = [3u64, 1, 2].into_iter().collect();
        v.as_mut_slice().sort_unstable();
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        let mut w: V = [5u64, 3, 4, 1, 2].into_iter().collect();
        w.as_mut_slice().sort_unstable();
        assert_eq!(w.as_slice(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn serde_roundtrip_matches_vec_format() {
        let v: V = (1..=5u64).collect();
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3,4,5]");
        let back: V = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
        let inline: V = (1..=2u64).collect();
        let back2: V = serde_json::from_str(&serde_json::to_string(&inline).unwrap()).unwrap();
        assert_eq!(back2, inline);
    }

    #[test]
    fn deref_gives_slice_methods() {
        let v: V = [4u64, 2].into_iter().collect();
        assert_eq!(v.first(), Some(&4));
        assert_eq!(v.iter().copied().max(), Some(4));
        assert_eq!(v.windows(2).count(), 1);
    }
}
