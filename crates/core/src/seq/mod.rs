//! Sequence mathematics from the paper's §2.2.
//!
//! The paper reasons about sequences of natural numbers (update and
//! alert sequence numbers):
//!
//! * a sequence is **ordered** if its elements appear in non-decreasing
//!   order ([`is_ordered`]);
//! * `ΦS` is the unordered **set** of a sequence's elements ([`phi`]);
//! * `S1 ⊑ S2` is the **subsequence** relation ([`is_subsequence`]);
//! * `S1 ⊔ S2` is the **ordered union** of two ordered sequences, with
//!   duplicates removed ([`ordered_union`]);
//! * `Π_x U` projects the seqnos of `x`-updates out of a mixed update
//!   sequence ([`project_updates`]), and `Π_x A` the `a.seqno.x` values
//!   out of an alert sequence ([`project_alerts`]);
//! * `SpanningSet(s)` is the set of consecutive integers between the
//!   smallest and largest elements of `s` ([`spanning_set`]), used by
//!   Algorithm AD-3.
//!
//! [`interleavings`] enumerates all order-preserving merges of two
//! sequences; the property checkers use it as a brute-force oracle for
//! the multi-variable definitions (paper Appendix C).
//!
//! [`IntervalSet`] is the runtime counterpart of these set operations:
//! a seqno set stored as sorted inclusive runs, used by the AD-3/AD-6
//! consistency bookkeeping so long-running monitors don't accumulate
//! one tree node per update ever seen.

mod interleave;
mod intervals;
mod ops;
mod project;

pub use interleave::{interleavings, merge_by_schedule, Interleavings};
pub use intervals::IntervalSet;
pub use ops::{
    inversions, is_ordered, is_strictly_ordered, is_subsequence, ordered_union, phi, spanning_gaps,
    spanning_set,
};
pub use project::{alerts_ordered, is_ordered_wrt, project_alerts, project_updates};
