//! Projections `Π_x` from mixed update/alert sequences to per-variable
//! seqno sequences.

use crate::alert::Alert;
use crate::update::{SeqNo, Update};
use crate::var::VarId;

use super::ops::is_ordered;

/// The paper's `Π_x U`: the sequence of seqnos of `var`-updates in `U`,
/// in their order of appearance.
///
/// ```rust
/// use rcm_core::seq::project_updates;
/// use rcm_core::{Update, VarId, SeqNo};
/// let x = VarId::new(0);
/// let y = VarId::new(1);
/// let u = vec![
///     Update::new(x, 2, 0.0), Update::new(y, 6, 0.0),
///     Update::new(y, 1, 0.0), Update::new(x, 3, 0.0),
/// ];
/// assert_eq!(project_updates(&u, x), vec![SeqNo::new(2), SeqNo::new(3)]);
/// assert_eq!(project_updates(&u, y), vec![SeqNo::new(6), SeqNo::new(1)]);
/// ```
pub fn project_updates(updates: &[Update], var: VarId) -> Vec<SeqNo> {
    updates.iter().filter(|u| u.var == var).map(|u| u.seqno).collect()
}

/// The paper's `Π_x A`: the sequence `⟨a.seqno.x | a ∈ A⟩`.
///
/// Alerts whose condition does not involve `var` (possible only in
/// multi-condition systems) are skipped.
pub fn project_alerts(alerts: &[Alert], var: VarId) -> Vec<SeqNo> {
    alerts.iter().filter_map(|a| a.seqno(var)).collect()
}

/// Whether the alert sequence is ordered with respect to `var`
/// (`Π_var A` is non-decreasing).
pub fn is_ordered_wrt(alerts: &[Alert], var: VarId) -> bool {
    is_ordered(&project_alerts(alerts, var))
}

/// Whether the alert sequence is ordered with respect to *every*
/// variable in `vars` — the paper's "A is ordered".
pub fn alerts_ordered(alerts: &[Alert], vars: &[VarId]) -> bool {
    vars.iter().all(|&v| is_ordered_wrt(alerts, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::{AlertId, CeId, CondId, HistoryFingerprint};

    fn alert2(x_seq: u64, y_seq: u64) -> Alert {
        let x = VarId::new(0);
        let y = VarId::new(1);
        Alert::new(
            CondId::SINGLE,
            HistoryFingerprint::new(vec![
                (x, vec![SeqNo::new(x_seq)]),
                (y, vec![SeqNo::new(y_seq)]),
            ]),
            vec![],
            AlertId { ce: CeId::new(0), index: 0 },
        )
    }

    #[test]
    fn projection_preserves_appearance_order() {
        let x = VarId::new(0);
        let u = vec![
            Update::new(x, 5, 0.0),
            Update::new(VarId::new(1), 9, 0.0),
            Update::new(x, 2, 0.0),
        ];
        assert_eq!(project_updates(&u, x), vec![SeqNo::new(5), SeqNo::new(2)]);
    }

    #[test]
    fn empty_projection_for_unknown_var() {
        let u = vec![Update::new(VarId::new(0), 1, 0.0)];
        assert!(project_updates(&u, VarId::new(7)).is_empty());
    }

    #[test]
    fn multi_var_orderedness_checks_every_variable() {
        // Theorem 10's counterexample: A = ⟨a(2x,1y), a(1x,2y)⟩ is
        // unordered w.r.t. x even though it is ordered w.r.t. y.
        let a = vec![alert2(2, 1), alert2(1, 2)];
        let x = VarId::new(0);
        let y = VarId::new(1);
        assert!(!is_ordered_wrt(&a, x));
        assert!(is_ordered_wrt(&a, y));
        assert!(!alerts_ordered(&a, &[x, y]));
    }

    #[test]
    fn ordered_alert_sequence_passes() {
        let a = vec![alert2(1, 1), alert2(1, 2), alert2(3, 2)];
        assert!(alerts_ordered(&a, &[VarId::new(0), VarId::new(1)]));
    }

    #[test]
    fn empty_alert_sequence_is_ordered() {
        assert!(alerts_ordered(&[], &[VarId::new(0)]));
    }
}
