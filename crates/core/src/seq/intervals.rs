//! Compact sets of `u64` seqnos stored as sorted inclusive runs.
//!
//! The AD-3/AD-6 consistency filters track every seqno they have ever
//! delivered (`Received`) or skipped over (`Missed`). Histories march
//! forward, so both sets are unions of a few long runs of consecutive
//! integers — storing them per-element in a `BTreeSet` grows without
//! bound in a long-running deployment and costs a tree probe per
//! seqno. [`IntervalSet`] stores the same sets as sorted disjoint
//! inclusive `(lo, hi)` runs: membership and overlap queries are a
//! binary search over a handful of runs, and memory is proportional to
//! the number of *gaps* the monitor has seen, not the number of
//! updates.

use serde::{Deserialize, Serialize};

/// A set of `u64` values stored as sorted, disjoint, non-adjacent
/// inclusive intervals.
///
/// Adjacent and overlapping insertions coalesce, so the run list is
/// always minimal: inserting `3`, `5`, then `4` leaves the single run
/// `(3, 5)`.
///
/// ```rust
/// use rcm_core::seq::IntervalSet;
/// let mut s = IntervalSet::new();
/// s.insert(3);
/// s.insert(5);
/// assert_eq!(s.num_runs(), 2);
/// s.insert(4); // bridges the gap
/// assert_eq!(s.num_runs(), 1);
/// assert!(s.contains(4) && !s.contains(6));
/// assert!(s.intersects(0, 3) && !s.intersects(6, 9));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalSet {
    /// Sorted by `lo`; invariant: `runs[i].1 + 1 < runs[i + 1].0`.
    runs: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the set holds no values.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of stored runs (the memory footprint, up to a constant).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Number of values in the set.
    pub fn len(&self) -> u64 {
        self.runs.iter().map(|&(lo, hi)| hi - lo + 1).sum()
    }

    /// Removes all values.
    pub fn clear(&mut self) {
        self.runs.clear();
    }

    /// Inserts a single value.
    pub fn insert(&mut self, value: u64) {
        self.insert_range(value, value);
    }

    /// Inserts every value in the inclusive range `lo..=hi`, merging
    /// with any overlapping or adjacent runs.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn insert_range(&mut self, lo: u64, hi: u64) {
        assert!(lo <= hi, "insert_range: lo {lo} > hi {hi}");
        // First run that could merge with [lo, hi]: its end reaches at
        // least lo - 1 (adjacency counts as mergeable).
        let merge_from = lo.saturating_sub(1);
        let start = self.runs.partition_point(|&(_, e)| e < merge_from);
        // One past the last run that could merge: its start is at most
        // hi + 1.
        let merge_to = hi.saturating_add(1);
        let end = start + self.runs[start..].partition_point(|&(s, _)| s <= merge_to);
        if start == end {
            self.runs.insert(start, (lo, hi));
            return;
        }
        let new_lo = lo.min(self.runs[start].0);
        let new_hi = hi.max(self.runs[end - 1].1);
        self.runs[start] = (new_lo, new_hi);
        self.runs.drain(start + 1..end);
    }

    /// Whether `value` is in the set.
    pub fn contains(&self, value: u64) -> bool {
        // Last run starting at or before `value`.
        let idx = self.runs.partition_point(|&(s, _)| s <= value);
        idx > 0 && self.runs[idx - 1].1 >= value
    }

    /// Whether any value in the inclusive range `lo..=hi` is in the
    /// set.
    pub fn intersects(&self, lo: u64, hi: u64) -> bool {
        if lo > hi {
            return false;
        }
        // First run ending at or after `lo`; it intersects iff it
        // starts at or before `hi`.
        let idx = self.runs.partition_point(|&(_, e)| e < lo);
        idx < self.runs.len() && self.runs[idx].0 <= hi
    }

    /// The stored runs as sorted disjoint inclusive `(lo, hi)` pairs.
    pub fn runs(&self) -> &[(u64, u64)] {
        &self.runs
    }

    /// Iterates over every value in ascending order.
    ///
    /// Beware: the iterator yields `len()` items, which can dwarf
    /// `num_runs()`; use it for witnesses and tests, not bookkeeping.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().flat_map(|&(lo, hi)| lo..=hi)
    }
}

impl FromIterator<u64> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut s = Self::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl Extend<u64> for IntervalSet {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn coalesces_adjacent_and_overlapping() {
        let mut s = IntervalSet::new();
        s.insert_range(10, 12);
        s.insert_range(14, 16);
        assert_eq!(s.runs(), &[(10, 12), (14, 16)]);
        s.insert(13);
        assert_eq!(s.runs(), &[(10, 16)]);
        s.insert_range(5, 11);
        assert_eq!(s.runs(), &[(5, 16)]);
        s.insert_range(20, 20);
        s.insert_range(0, 100);
        assert_eq!(s.runs(), &[(0, 100)]);
    }

    #[test]
    fn duplicate_inserts_are_idempotent() {
        let mut s = IntervalSet::new();
        s.insert(7);
        s.insert(7);
        s.insert_range(5, 9);
        s.insert_range(5, 9);
        assert_eq!(s.runs(), &[(5, 9)]);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn contains_and_intersects() {
        let s: IntervalSet = [1u64, 2, 3, 10, 11, 30].into_iter().collect();
        assert_eq!(s.runs(), &[(1, 3), (10, 11), (30, 30)]);
        for v in [1, 3, 10, 30] {
            assert!(s.contains(v), "{v}");
        }
        for v in [0, 4, 9, 12, 29, 31] {
            assert!(!s.contains(v), "{v}");
        }
        assert!(s.intersects(4, 10));
        assert!(s.intersects(0, 1));
        assert!(s.intersects(30, 99));
        assert!(!s.intersects(4, 9));
        assert!(!s.intersects(12, 29));
        assert!(!s.intersects(31, u64::MAX));
        assert!(!s.intersects(9, 4));
    }

    #[test]
    fn boundary_values() {
        let mut s = IntervalSet::new();
        s.insert(0);
        s.insert(u64::MAX);
        assert_eq!(s.runs(), &[(0, 0), (u64::MAX, u64::MAX)]);
        s.insert(1);
        assert_eq!(s.runs(), &[(0, 1), (u64::MAX, u64::MAX)]);
        assert!(s.contains(u64::MAX));
        assert!(s.intersects(2, u64::MAX));
        assert!(!s.intersects(3, u64::MAX - 1));
    }

    #[test]
    fn iter_matches_btreeset_model() {
        // Pseudo-random cross-check against the per-element model.
        let mut model = BTreeSet::new();
        let mut s = IntervalSet::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let lo = x % 64;
            let hi = lo + (x >> 32) % 5;
            s.insert_range(lo, hi);
            model.extend(lo..=hi);
            assert_eq!(s.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
            assert_eq!(s.len(), model.len() as u64);
            let probe = (x >> 16) % 80;
            assert_eq!(s.contains(probe), model.contains(&probe));
            let (a, b) = (probe, probe + x % 7);
            assert_eq!(s.intersects(a, b), model.range(a..=b).next().is_some());
        }
        // Runs must stay minimal: disjoint, sorted, non-adjacent.
        for w in s.runs().windows(2) {
            assert!(w[0].1 + 1 < w[1].0, "runs not minimal: {:?}", s.runs());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let s: IntervalSet = [1u64, 2, 3, 9].into_iter().collect();
        let json = serde_json::to_string(&s).unwrap();
        let back: IntervalSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    #[should_panic(expected = "insert_range")]
    fn inverted_range_panics() {
        IntervalSet::new().insert_range(5, 4);
    }
}
