//! Core operations on sequences of ordered elements.

use std::collections::BTreeSet;

/// Whether the sequence's elements appear in non-decreasing order (the
/// paper's *ordered*).
///
/// ```rust
/// use rcm_core::seq::is_ordered;
/// assert!(is_ordered(&[3u64, 8, 100]));
/// assert!(is_ordered(&[2u64, 2]));
/// assert!(!is_ordered(&[2u64, 1, 6]));
/// assert!(is_ordered::<u64>(&[]));
/// ```
pub fn is_ordered<T: PartialOrd>(seq: &[T]) -> bool {
    seq.windows(2).all(|w| w[0] <= w[1])
}

/// Whether the sequence's elements appear in strictly increasing order.
///
/// Update sequences delivered over an in-order link are strictly ordered
/// (a link never delivers the same seqno twice); alert sequences are
/// merely ordered, since two alerts may share `a.seqno.x`.
pub fn is_strictly_ordered<T: PartialOrd>(seq: &[T]) -> bool {
    seq.windows(2).all(|w| w[0] < w[1])
}

/// The paper's `ΦS`: the set of elements of sequence `S`.
///
/// ```rust
/// use rcm_core::seq::phi;
/// let s = phi(&[2u64, 1, 2, 6]);
/// assert_eq!(s.into_iter().collect::<Vec<_>>(), vec![1, 2, 6]);
/// ```
pub fn phi<T: Ord + Clone>(seq: &[T]) -> BTreeSet<T> {
    seq.iter().cloned().collect()
}

/// The paper's `S1 ⊑ S2`: whether `sub` can be obtained from `sup` by
/// removing zero or more elements.
///
/// ```rust
/// use rcm_core::seq::is_subsequence;
/// assert!(is_subsequence(&[1u64, 4], &[1, 2, 4, 8]));
/// assert!(is_subsequence::<u64>(&[], &[1, 2]));
/// assert!(!is_subsequence(&[4u64, 1], &[1, 2, 4, 8]));
/// ```
pub fn is_subsequence<T: PartialEq>(sub: &[T], sup: &[T]) -> bool {
    let mut it = sup.iter();
    sub.iter().all(|s| it.any(|t| t == s))
}

/// The paper's `S1 ⊔ S2`: the ordered union of two ordered sequences.
///
/// The result is the ordered sequence whose element set is
/// `ΦS1 ∪ ΦS2`; duplicates (both across and within inputs) are removed.
///
/// # Panics
///
/// Panics (in debug builds) if either input is not ordered — the paper
/// defines `⊔` only for ordered sequences.
///
/// ```rust
/// use rcm_core::seq::ordered_union;
/// assert_eq!(ordered_union(&[1u64, 4, 8], &[2, 4, 5]), vec![1, 2, 4, 5, 8]);
/// ```
pub fn ordered_union<T: Ord + Clone>(s1: &[T], s2: &[T]) -> Vec<T> {
    debug_assert!(is_ordered(s1), "left operand of ⊔ must be ordered");
    debug_assert!(is_ordered(s2), "right operand of ⊔ must be ordered");
    let mut out: Vec<T> = Vec::with_capacity(s1.len() + s2.len());
    let (mut i, mut j) = (0, 0);
    while i < s1.len() || j < s2.len() {
        let pick_left = match (s1.get(i), s2.get(j)) {
            (Some(a), Some(b)) => a <= b,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!(),
        };
        let next = if pick_left {
            let v = s1[i].clone();
            i += 1;
            v
        } else {
            let v = s2[j].clone();
            j += 1;
            v
        };
        if out.last() != Some(&next) {
            out.push(next);
        }
    }
    out
}

/// Number of **inversions** in a sequence: pairs `(i, j)` with `i < j`
/// but `seq[i] > seq[j]`. Zero iff the sequence is ordered; the count
/// quantifies *how* unordered a displayed alert sequence is (used by
/// the delayed-display experiment to measure disorder, not just detect
/// it).
///
/// Runs in `O(n log n)` via merge counting.
///
/// ```rust
/// use rcm_core::seq::inversions;
/// assert_eq!(inversions(&[1u64, 2, 3]), 0);
/// assert_eq!(inversions(&[2u64, 1, 3]), 1);
/// assert_eq!(inversions(&[3u64, 2, 1]), 3);
/// ```
pub fn inversions<T: Ord + Clone>(seq: &[T]) -> u64 {
    fn sort_count<T: Ord + Clone>(buf: &mut Vec<T>) -> u64 {
        let n = buf.len();
        if n <= 1 {
            return 0;
        }
        let mut right = buf.split_off(n / 2);
        let mut count = sort_count(buf) + sort_count(&mut right);
        let left = std::mem::take(buf);
        let (mut i, mut j) = (0, 0);
        while i < left.len() || j < right.len() {
            let take_left = match (left.get(i), right.get(j)) {
                (Some(a), Some(b)) => a <= b,
                (Some(_), None) => true,
                _ => false,
            };
            if take_left {
                // Everything still pending in `right` was jumped over by
                // nothing; no inversions added.
                buf.push(left[i].clone());
                i += 1;
            } else {
                // right[j] jumps over all remaining left elements.
                count += (left.len() - i) as u64;
                buf.push(right[j].clone());
                j += 1;
            }
        }
        count
    }
    let mut buf = seq.to_vec();
    sort_count(&mut buf)
}

/// The paper's `SpanningSet(s)`: the set of consecutive integers between
/// the smallest and the biggest elements of `s`, inclusive.
///
/// Returns the empty set for an empty input.
///
/// ```rust
/// use rcm_core::seq::spanning_set;
/// use std::collections::BTreeSet;
/// let s: BTreeSet<u64> = [1, 2, 5].into_iter().collect();
/// let span: Vec<u64> = spanning_set(&s).into_iter().collect();
/// assert_eq!(span, vec![1, 2, 3, 4, 5]);
/// ```
pub fn spanning_set(s: &BTreeSet<u64>) -> BTreeSet<u64> {
    match (s.first(), s.last()) {
        (Some(&lo), Some(&hi)) => (lo..=hi).collect(),
        _ => BTreeSet::new(),
    }
}

/// `SpanningSet(s) - s`: the integers strictly inside `s`'s span that
/// are missing from `s`.
///
/// These are exactly the seqnos Algorithm AD-3 records as `Missed` when
/// an alert with history `s` is displayed.
///
/// ```rust
/// use rcm_core::seq::spanning_gaps;
/// use std::collections::BTreeSet;
/// let s: BTreeSet<u64> = [1, 3, 6].into_iter().collect();
/// let gaps: Vec<u64> = spanning_gaps(&s).into_iter().collect();
/// assert_eq!(gaps, vec![2, 4, 5]);
/// ```
pub fn spanning_gaps(s: &BTreeSet<u64>) -> BTreeSet<u64> {
    spanning_set(s).difference(s).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ordered_edge_cases() {
        assert!(is_ordered::<u64>(&[]));
        assert!(is_ordered(&[5u64]));
        assert!(is_strictly_ordered::<u64>(&[]));
        assert!(is_strictly_ordered(&[1u64, 2, 3]));
        assert!(!is_strictly_ordered(&[1u64, 1]));
    }

    #[test]
    fn phi_removes_duplicates_paper_example() {
        // Φ(⟨2,1,2,6⟩) = {1,2,6}
        let s = phi(&[2u64, 1, 2, 6]);
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec![1, 2, 6]);
    }

    #[test]
    fn subsequence_basics() {
        assert!(is_subsequence(&[1u64, 2], &[1, 2]));
        assert!(!is_subsequence(&[1u64, 2, 3], &[1, 2]));
        assert!(is_subsequence(&[2u64, 2], &[2, 1, 2]));
        assert!(!is_subsequence(&[2u64, 2], &[2, 1]));
    }

    #[test]
    fn ordered_union_paper_example() {
        // S1 = ⟨1,4,8⟩, S2 = ⟨2,4,5⟩ → ⟨1,2,4,5,8⟩
        assert_eq!(ordered_union(&[1u64, 4, 8], &[2, 4, 5]), vec![1, 2, 4, 5, 8]);
    }

    #[test]
    fn ordered_union_idempotent() {
        // Lemma 2: U ⊔ U = U for ordered U.
        let u = vec![1u64, 3, 7];
        assert_eq!(ordered_union(&u, &u), u);
    }

    #[test]
    fn ordered_union_with_empty() {
        assert_eq!(ordered_union(&[1u64, 2], &[]), vec![1, 2]);
        assert_eq!(ordered_union::<u64>(&[], &[]), Vec::<u64>::new());
    }

    #[test]
    fn ordered_union_dedups_within_input() {
        assert_eq!(ordered_union(&[2u64, 2], &[2]), vec![2]);
    }

    #[test]
    fn spanning_set_paper_example() {
        // SpanningSet({1,2,5}) = {1,2,3,4,5}
        let s: BTreeSet<u64> = [1, 2, 5].into_iter().collect();
        assert_eq!(spanning_set(&s).into_iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn spanning_set_empty_and_singleton() {
        assert!(spanning_set(&BTreeSet::new()).is_empty());
        let s: BTreeSet<u64> = [7].into_iter().collect();
        assert_eq!(spanning_set(&s).into_iter().collect::<Vec<_>>(), vec![7]);
        assert!(spanning_gaps(&s).is_empty());
    }

    #[test]
    fn inversion_edge_cases() {
        assert_eq!(inversions::<u64>(&[]), 0);
        assert_eq!(inversions(&[7u64]), 0);
        assert_eq!(inversions(&[1u64, 1, 1]), 0); // equal pairs are not inversions
        assert_eq!(inversions(&[2u64, 1, 2, 1]), 3);
    }

    proptest! {
        #[test]
        fn inversions_match_quadratic_reference(
            seq in proptest::collection::vec(0u64..30, 0..40)
        ) {
            let reference: u64 = (0..seq.len())
                .flat_map(|i| (i + 1..seq.len()).map(move |j| (i, j)))
                .filter(|&(i, j)| seq[i] > seq[j])
                .count() as u64;
            prop_assert_eq!(inversions(&seq), reference);
            prop_assert_eq!(inversions(&seq) == 0, is_ordered(&seq));
        }

        #[test]
        fn union_is_set_union(mut a in proptest::collection::vec(0u64..50, 0..20),
                              mut b in proptest::collection::vec(0u64..50, 0..20)) {
            a.sort_unstable();
            b.sort_unstable();
            let u = ordered_union(&a, &b);
            // Φ(S1 ⊔ S2) = ΦS1 ∪ ΦS2
            let expect: BTreeSet<u64> = phi(&a).union(&phi(&b)).copied().collect();
            prop_assert_eq!(phi(&u), expect);
            // result ordered, duplicate-free
            prop_assert!(is_strictly_ordered(&u));
            // both operands are subsequences of the union after dedup
            a.dedup();
            b.dedup();
            prop_assert!(is_subsequence(&a, &u));
            prop_assert!(is_subsequence(&b, &u));
        }

        #[test]
        fn union_commutative_associative(
            mut a in proptest::collection::vec(0u64..30, 0..12),
            mut b in proptest::collection::vec(0u64..30, 0..12),
            mut c in proptest::collection::vec(0u64..30, 0..12),
        ) {
            a.sort_unstable();
            b.sort_unstable();
            c.sort_unstable();
            prop_assert_eq!(ordered_union(&a, &b), ordered_union(&b, &a));
            let left = ordered_union(&ordered_union(&a, &b), &c);
            let right = ordered_union(&a, &ordered_union(&b, &c));
            prop_assert_eq!(left, right);
        }

        #[test]
        fn subsequence_reflexive_transitive(
            base in proptest::collection::vec(0u64..40, 0..15),
            mask1 in proptest::collection::vec(any::<bool>(), 15),
            mask2 in proptest::collection::vec(any::<bool>(), 15),
        ) {
            // carve sub2 ⊑ sub1 ⊑ base and check the chain
            let sub1: Vec<u64> = base.iter().zip(&mask1)
                .filter(|(_, &m)| m).map(|(v, _)| *v).collect();
            let sub2: Vec<u64> = sub1.iter().zip(&mask2)
                .filter(|(_, &m)| m).map(|(v, _)| *v).collect();
            prop_assert!(is_subsequence(&base, &base));
            prop_assert!(is_subsequence(&sub1, &base));
            prop_assert!(is_subsequence(&sub2, &sub1));
            prop_assert!(is_subsequence(&sub2, &base));
        }

        #[test]
        fn spanning_gaps_disjoint_and_complete(
            set in proptest::collection::btree_set(0u64..60, 0..15)
        ) {
            let span = spanning_set(&set);
            let gaps = spanning_gaps(&set);
            prop_assert!(gaps.is_disjoint(&set));
            let rebuilt: BTreeSet<u64> = gaps.union(&set).copied().collect();
            prop_assert_eq!(rebuilt, span);
        }
    }
}
