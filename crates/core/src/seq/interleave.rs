//! Enumeration of order-preserving interleavings of two sequences.
//!
//! The multi-variable definitions of completeness and consistency (paper
//! Appendix C) quantify over *interleavings* `U_V` of the per-variable
//! update sequences. [`interleavings`] enumerates them all, which the
//! property checkers use as an exhaustive oracle on small traces, and
//! [`merge_by_schedule`] materializes a single interleaving from a
//! left/right choice mask.

/// Merges `left` and `right` into one sequence according to `schedule`:
/// `true` takes the next element of `left`, `false` of `right`.
///
/// Leftover elements (when the schedule is shorter than the combined
/// length, or one side is exhausted) are appended in order.
///
/// ```rust
/// use rcm_core::seq::merge_by_schedule;
/// let merged = merge_by_schedule(&[1, 2], &[10, 20], &[false, true, true]);
/// assert_eq!(merged, vec![10, 1, 2, 20]);
/// ```
pub fn merge_by_schedule<T: Clone>(left: &[T], right: &[T], schedule: &[bool]) -> Vec<T> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0, 0);
    for &take_left in schedule {
        if i == left.len() && j == right.len() {
            break;
        }
        if take_left && i < left.len() {
            out.push(left[i].clone());
            i += 1;
        } else if j < right.len() {
            out.push(right[j].clone());
            j += 1;
        } else {
            out.push(left[i].clone());
            i += 1;
        }
    }
    out.extend_from_slice(&left[i..]);
    out.extend_from_slice(&right[j..]);
    out
}

/// Iterator over every order-preserving interleaving of two sequences.
///
/// Produces `C(n+m, n)` sequences; callers are expected to keep inputs
/// small (the property checkers cap trace lengths before enumerating).
#[derive(Debug)]
pub struct Interleavings<T> {
    left: Vec<T>,
    right: Vec<T>,
    // Bitmask over n+m positions: bit set = take from `left`. Only masks
    // with exactly `left.len()` set bits are yielded.
    mask: u64,
    done: bool,
}

/// Enumerates all order-preserving interleavings of `left` and `right`.
///
/// # Panics
///
/// Panics if the combined length exceeds 63 elements (the enumeration
/// would not terminate in any reasonable time long before that anyway).
///
/// ```rust
/// use rcm_core::seq::interleavings;
/// let all: Vec<Vec<u32>> = interleavings(&[1, 2], &[9]).collect();
/// assert_eq!(all.len(), 3); // C(3,2)
/// assert!(all.contains(&vec![1, 2, 9]));
/// assert!(all.contains(&vec![1, 9, 2]));
/// assert!(all.contains(&vec![9, 1, 2]));
/// ```
pub fn interleavings<T: Clone>(left: &[T], right: &[T]) -> Interleavings<T> {
    let total = left.len() + right.len();
    assert!(total <= 63, "interleaving enumeration capped at 63 combined elements");
    Interleavings { left: left.to_vec(), right: right.to_vec(), mask: 0, done: false }
}

impl<T: Clone> Iterator for Interleavings<T> {
    type Item = Vec<T>;

    fn next(&mut self) -> Option<Self::Item> {
        let total = self.left.len() + self.right.len();
        let limit: u64 = 1u64 << total;
        while !self.done {
            let mask = self.mask;
            if self.mask + 1 == limit || total == 0 {
                self.done = true;
            } else {
                self.mask += 1;
            }
            if mask.count_ones() as usize == self.left.len() {
                let schedule: Vec<bool> = (0..total).map(|b| mask >> b & 1 == 1).collect();
                return Some(merge_by_schedule(&self.left, &self.right, &schedule));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{is_subsequence, phi};
    use proptest::prelude::*;

    #[test]
    fn counts_match_binomial() {
        fn count(n: usize, m: usize) -> usize {
            let left: Vec<u32> = (0..n as u32).collect();
            let right: Vec<u32> = (100..100 + m as u32).collect();
            interleavings(&left, &right).count()
        }
        assert_eq!(count(0, 0), 1); // the empty interleaving
        assert_eq!(count(1, 0), 1);
        assert_eq!(count(2, 2), 6);
        assert_eq!(count(3, 3), 20);
        assert_eq!(count(4, 2), 15);
    }

    #[test]
    fn empty_sides() {
        let all: Vec<Vec<u32>> = interleavings(&[], &[1, 2]).collect();
        assert_eq!(all, vec![vec![1, 2]]);
        let all: Vec<Vec<u32>> = interleavings::<u32>(&[], &[]).collect();
        assert_eq!(all, vec![Vec::<u32>::new()]);
    }

    #[test]
    fn schedule_merge_exhaustion() {
        assert_eq!(merge_by_schedule(&[1], &[2], &[]), vec![1, 2]);
        assert_eq!(merge_by_schedule(&[1], &[2], &[true]), vec![1, 2]);
        assert_eq!(merge_by_schedule::<u32>(&[], &[], &[true, false]), Vec::<u32>::new());
        // schedule asks for right first but right is empty: falls back to left
        assert_eq!(merge_by_schedule(&[1, 2], &[], &[false, false]), vec![1, 2]);
    }

    proptest! {
        #[test]
        fn every_interleaving_preserves_both_orders(
            left in proptest::collection::vec(0u32..100, 0..5),
            right in proptest::collection::vec(100u32..200, 0..5),
        ) {
            for merged in interleavings(&left, &right) {
                prop_assert_eq!(merged.len(), left.len() + right.len());
                prop_assert!(is_subsequence(&left, &merged));
                prop_assert!(is_subsequence(&right, &merged));
                let expect: std::collections::BTreeSet<u32> =
                    phi(&left).union(&phi(&right)).copied().collect();
                prop_assert_eq!(phi(&merged), expect);
            }
        }

        #[test]
        fn interleavings_are_distinct(
            n in 0usize..5, m in 0usize..5,
        ) {
            // Use disjoint element pools so each schedule gives a unique merge.
            let left: Vec<u32> = (0..n as u32).collect();
            let right: Vec<u32> = (100..100 + m as u32).collect();
            let all: Vec<Vec<u32>> = interleavings(&left, &right).collect();
            let set: std::collections::BTreeSet<Vec<u32>> = all.iter().cloned().collect();
            prop_assert_eq!(set.len(), all.len());
        }
    }
}
