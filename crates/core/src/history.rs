//! Per-variable update histories maintained by a Condition Evaluator.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use crate::alert::{HistoryFingerprint, SeqBuf};
use crate::error::{Error, Result};
use crate::update::{SeqNo, Update};
use crate::var::VarId;

/// The update history `H_x` for one variable: the `N` most recently
/// received updates, where `N` is the history's *degree* (paper §2).
///
/// Index 0 is the most recent update (`H_x[0]`), index `i` the `i`-th
/// most recent (`H_x[-i]` in the paper's notation). The history is
/// *defined* only once `N` updates have been received; conditions are
/// not evaluated before that.
///
/// ```rust
/// use rcm_core::{History, Update, VarId, SeqNo};
/// let x = VarId::new(0);
/// let mut h = History::new(x, 2);
/// h.push(Update::new(x, 5, 100.0)).unwrap();
/// assert!(!h.is_defined());
/// h.push(Update::new(x, 7, 300.0)).unwrap(); // update 6 was lost
/// assert!(h.is_defined());
/// assert_eq!(h.get(0).unwrap().seqno, SeqNo::new(7)); // H[0]
/// assert_eq!(h.get(1).unwrap().seqno, SeqNo::new(5)); // H[-1]
/// assert!(!h.is_consecutive()); // 6 is missing
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct History {
    var: VarId,
    degree: usize,
    /// Front = newest.
    buf: VecDeque<Update>,
}

impl History {
    /// Creates an empty history of the given degree for `var`.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero; every condition needs at least the
    /// current update of each variable it mentions.
    pub fn new(var: VarId, degree: usize) -> Self {
        assert!(degree >= 1, "history degree must be at least 1");
        History { var, degree, buf: VecDeque::with_capacity(degree) }
    }

    /// The variable this history tracks.
    pub fn var(&self) -> VarId {
        self.var
    }

    /// The history's degree `N`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of updates currently held (at most the degree).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no updates have been received yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the history is defined, i.e. `N` updates have been
    /// received.
    pub fn is_defined(&self) -> bool {
        self.buf.len() == self.degree
    }

    /// Incorporates a newly received update.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] if the update is for another
    /// variable, and [`Error::OutOfOrderUpdate`] if its seqno does not
    /// exceed the newest one already held (front links deliver in
    /// order, so this indicates a wiring bug).
    pub fn push(&mut self, update: Update) -> Result<()> {
        if update.var != self.var {
            return Err(Error::UnknownVariable(update.var));
        }
        if let Some(newest) = self.buf.front() {
            if update.seqno <= newest.seqno {
                return Err(Error::OutOfOrderUpdate {
                    var: self.var,
                    got: update.seqno.get(),
                    newest: newest.seqno.get(),
                });
            }
        }
        self.buf.push_front(update);
        self.buf.truncate(self.degree);
        Ok(())
    }

    /// The `i`-th most recent update: `get(0)` is `H[0]`, `get(1)` is
    /// `H[-1]`, and so on. `None` if fewer than `i + 1` updates held.
    pub fn get(&self, i: usize) -> Option<&Update> {
        self.buf.get(i)
    }

    /// The most recent update, `H[0]`.
    pub fn newest(&self) -> Option<&Update> {
        self.buf.front()
    }

    /// Whether the held seqnos are consecutive (no update in the span
    /// was lost). Vacuously true with fewer than two updates.
    pub fn is_consecutive(&self) -> bool {
        self.buf
            .iter()
            .zip(self.buf.iter().skip(1))
            .all(|(newer, older)| older.seqno.precedes(newer.seqno))
    }

    /// Seqnos newest-first, for building a [`HistoryFingerprint`].
    ///
    /// Returns an inline buffer: for degrees up to 3 (every paper
    /// scenario) this performs no heap allocation.
    pub fn seqnos(&self) -> SeqBuf {
        self.buf.iter().map(|u| u.seqno).collect()
    }

    /// Updates newest-first.
    pub fn updates(&self) -> impl Iterator<Item = &Update> {
        self.buf.iter()
    }

    /// Discards all held updates (used when a CE restarts after a
    /// crash: its in-memory history is gone).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H{}⟨", self.var)?;
        for (i, u) in self.buf.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{u}")?;
        }
        write!(f, "⟩")
    }
}

/// The set `H` of update histories a condition is defined on: one
/// [`History`] per variable in the condition's variable set `V`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistorySet {
    histories: BTreeMap<VarId, History>,
}

impl HistorySet {
    /// Creates a history set from `(variable, degree)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a variable is listed twice or any degree is zero.
    pub fn new(spec: impl IntoIterator<Item = (VarId, usize)>) -> Self {
        let mut histories = BTreeMap::new();
        for (var, degree) in spec {
            let prev = histories.insert(var, History::new(var, degree));
            assert!(prev.is_none(), "variable {var} listed twice in history spec");
        }
        HistorySet { histories }
    }

    /// Incorporates an update into the matching history.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] if no history tracks the
    /// update's variable, or forwards the history's ordering error.
    pub fn push(&mut self, update: Update) -> Result<()> {
        match self.histories.get_mut(&update.var) {
            Some(h) => h.push(update),
            None => Err(Error::UnknownVariable(update.var)),
        }
    }

    /// The history for `var`, if tracked.
    pub fn history(&self, var: VarId) -> Option<&History> {
        self.histories.get(&var)
    }

    /// Whether every history is defined (the CE may evaluate the
    /// condition only then).
    pub fn is_defined(&self) -> bool {
        self.histories.values().all(History::is_defined)
    }

    /// Whether every history's seqnos are consecutive.
    pub fn is_consecutive(&self) -> bool {
        self.histories.values().all(History::is_consecutive)
    }

    /// Variables tracked, in ascending order.
    pub fn variables(&self) -> impl Iterator<Item = VarId> + '_ {
        self.histories.keys().copied()
    }

    /// Iterates over the histories in ascending variable order.
    pub fn iter(&self) -> impl Iterator<Item = &History> {
        self.histories.values()
    }

    /// Convenience accessor: the value of `H_var[-i]`, i.e. `get(i)` on
    /// the variable's history. `None` when out of range or untracked.
    pub fn value(&self, var: VarId, i: usize) -> Option<f64> {
        self.histories.get(&var)?.get(i).map(|u| u.value)
    }

    /// Convenience accessor: the seqno of `H_var[-i]`.
    pub fn seqno(&self, var: VarId, i: usize) -> Option<SeqNo> {
        self.histories.get(&var)?.get(i).map(|u| u.seqno)
    }

    /// Builds the alert fingerprint for the current histories.
    ///
    /// # Panics
    ///
    /// Panics if some history is not yet defined — the evaluator only
    /// triggers alerts on defined history sets.
    pub fn fingerprint(&self) -> HistoryFingerprint {
        assert!(self.is_defined(), "fingerprint of an undefined history set");
        HistoryFingerprint::from_entries(self.histories.iter().map(|(&v, h)| (v, h.seqnos())))
    }

    /// Flat snapshot of all held updates, per variable newest-first.
    pub fn snapshot(&self) -> Vec<Update> {
        self.histories.values().flat_map(|h| h.updates().copied()).collect()
    }

    /// Clears every history (CE restart).
    pub fn clear(&mut self) {
        for h in self.histories.values_mut() {
            h.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> VarId {
        VarId::new(0)
    }
    fn y() -> VarId {
        VarId::new(1)
    }

    #[test]
    fn ring_keeps_newest_n() {
        let mut h = History::new(x(), 2);
        for s in 1..=5u64 {
            h.push(Update::new(x(), s, s as f64)).unwrap();
        }
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(0).unwrap().seqno, SeqNo::new(5));
        assert_eq!(h.get(1).unwrap().seqno, SeqNo::new(4));
        assert_eq!(h.get(2), None);
    }

    #[test]
    fn undefined_until_degree_updates() {
        let mut h = History::new(x(), 3);
        h.push(Update::new(x(), 1, 0.0)).unwrap();
        h.push(Update::new(x(), 2, 0.0)).unwrap();
        assert!(!h.is_defined());
        h.push(Update::new(x(), 3, 0.0)).unwrap();
        assert!(h.is_defined());
    }

    #[test]
    fn paper_loss_example_indices() {
        // §2: 5x received, 6x lost, 7x received → H[0]=7x, H[-1]=5x.
        let mut h = History::new(x(), 2);
        h.push(Update::new(x(), 5, 0.0)).unwrap();
        h.push(Update::new(x(), 7, 0.0)).unwrap();
        assert_eq!(h.get(0).unwrap().seqno, SeqNo::new(7));
        assert_eq!(h.get(1).unwrap().seqno, SeqNo::new(5));
        assert!(!h.is_consecutive());
    }

    #[test]
    fn rejects_wrong_variable_and_stale_seqno() {
        let mut h = History::new(x(), 2);
        assert!(matches!(h.push(Update::new(y(), 1, 0.0)), Err(Error::UnknownVariable(_))));
        h.push(Update::new(x(), 4, 0.0)).unwrap();
        assert!(matches!(
            h.push(Update::new(x(), 4, 0.0)),
            Err(Error::OutOfOrderUpdate { got: 4, newest: 4, .. })
        ));
        assert!(matches!(h.push(Update::new(x(), 2, 0.0)), Err(Error::OutOfOrderUpdate { .. })));
    }

    #[test]
    #[should_panic(expected = "degree must be at least 1")]
    fn zero_degree_panics() {
        History::new(x(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut h = History::new(x(), 1);
        h.push(Update::new(x(), 1, 0.0)).unwrap();
        h.clear();
        assert!(h.is_empty());
        // After a restart the DM's stream continues; any seqno is fine.
        h.push(Update::new(x(), 1, 0.0)).unwrap();
        assert!(h.is_defined());
    }

    #[test]
    fn set_routes_and_fingerprints() {
        let mut hs = HistorySet::new([(x(), 2), (y(), 1)]);
        hs.push(Update::new(x(), 1, 10.0)).unwrap();
        hs.push(Update::new(y(), 1, 20.0)).unwrap();
        assert!(!hs.is_defined());
        hs.push(Update::new(x(), 2, 11.0)).unwrap();
        assert!(hs.is_defined());
        let fp = hs.fingerprint();
        assert_eq!(fp.seqnos(x()).unwrap(), &[SeqNo::new(2), SeqNo::new(1)]);
        assert_eq!(fp.seqnos(y()).unwrap(), &[SeqNo::new(1)]);
        assert_eq!(hs.value(x(), 0), Some(11.0));
        assert_eq!(hs.value(x(), 1), Some(10.0));
        assert_eq!(hs.seqno(y(), 0), Some(SeqNo::new(1)));
        assert_eq!(hs.value(VarId::new(9), 0), None);
    }

    #[test]
    fn set_rejects_untracked_variable() {
        let mut hs = HistorySet::new([(x(), 1)]);
        assert!(matches!(hs.push(Update::new(y(), 1, 0.0)), Err(Error::UnknownVariable(_))));
    }

    #[test]
    fn set_consecutiveness_covers_all_vars() {
        let mut hs = HistorySet::new([(x(), 2), (y(), 2)]);
        hs.push(Update::new(x(), 1, 0.0)).unwrap();
        hs.push(Update::new(x(), 2, 0.0)).unwrap();
        hs.push(Update::new(y(), 1, 0.0)).unwrap();
        hs.push(Update::new(y(), 3, 0.0)).unwrap();
        assert!(!hs.is_consecutive()); // y has a gap
    }

    #[test]
    #[should_panic(expected = "undefined history set")]
    fn fingerprint_requires_defined() {
        let hs = HistorySet::new([(x(), 1)]);
        let _ = hs.fingerprint();
    }

    #[test]
    fn display_shows_updates() {
        let mut h = History::new(x(), 2);
        h.push(Update::new(x(), 1, 5.0)).unwrap();
        h.push(Update::new(x(), 2, 6.0)).unwrap();
        assert_eq!(h.to_string(), "Hv0⟨2v0(6), 1v0(5)⟩");
    }
}
