//! The Condition Evaluator: the paper's `T` transducer from update
//! sequences to alert sequences.

use crate::alert::{Alert, AlertId, CeId, CondId};
use crate::condition::{Condition, ConditionExt};
use crate::error::{Error, Result};
use crate::history::HistorySet;
use crate::update::Update;
use crate::var::VarId;

/// A Condition Evaluator replica.
///
/// On every received update the evaluator incorporates it into the
/// per-variable histories and re-evaluates the condition; if the
/// condition is satisfied (and every history is defined — the paper's
/// `H` is undefined until `N` updates have been received), an alert is
/// emitted carrying the full history fingerprint.
///
/// The paper's `T` is the *sequence-level* view of this process:
/// [`transduce`] folds a whole update sequence through a fresh
/// evaluator.
///
/// ```rust
/// use rcm_core::{Evaluator, Update, VarId, SeqNo};
/// use rcm_core::condition::DeltaRise;
/// let x = VarId::new(0);
/// // c2: rose more than 200 since last reading received.
/// let mut ce = Evaluator::new(DeltaRise::new(x, 200.0));
/// assert!(ce.ingest(Update::new(x, 1, 400.0)).is_none()); // H undefined
/// let alert = ce.ingest(Update::new(x, 2, 700.0)).unwrap();
/// assert_eq!(alert.seqno(x), Some(SeqNo::new(2)));
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Evaluator<C> {
    cond: C,
    cond_id: CondId,
    ce: CeId,
    histories: HistorySet,
    emitted: u64,
    ingested: u64,
    dropped_stale: u64,
}

impl<C: Condition> Evaluator<C> {
    /// Creates an evaluator for a single-condition system (condition id
    /// [`CondId::SINGLE`], replica id 0).
    pub fn new(cond: C) -> Self {
        Self::with_ids(cond, CondId::SINGLE, CeId::new(0))
    }

    /// Creates an evaluator with explicit condition and replica ids
    /// (used by replicated and multi-condition systems).
    pub fn with_ids(cond: C, cond_id: CondId, ce: CeId) -> Self {
        let histories = HistorySet::new(cond.history_spec());
        Evaluator { cond, cond_id, ce, histories, emitted: 0, ingested: 0, dropped_stale: 0 }
    }

    /// The monitored condition.
    pub fn condition(&self) -> &C {
        &self.cond
    }

    /// This replica's id.
    pub fn ce_id(&self) -> CeId {
        self.ce
    }

    /// The current history set.
    pub fn histories(&self) -> &HistorySet {
        &self.histories
    }

    /// Number of alerts emitted so far.
    pub fn alerts_emitted(&self) -> u64 {
        self.emitted
    }

    /// Number of updates incorporated so far.
    pub fn updates_ingested(&self) -> u64 {
        self.ingested
    }

    /// Number of stale (out-of-order or duplicate) updates discarded.
    pub fn stale_dropped(&self) -> u64 {
        self.dropped_stale
    }

    /// Incorporates an update and re-evaluates the condition.
    ///
    /// Stale updates (seqno not newer than the history head) are
    /// silently discarded — the paper's in-order links discard them at
    /// the receiver, and a defensive evaluator does the same; the
    /// [`Evaluator::stale_dropped`] counter records how many.
    ///
    /// Returns the alert if the condition triggered.
    ///
    /// # Panics
    ///
    /// Panics if the update's variable is not in the condition's
    /// variable set: the CE subscribes only to `V`, so this is a wiring
    /// bug. Use [`Evaluator::try_ingest`] to handle it as an error.
    pub fn ingest(&mut self, update: Update) -> Option<Alert> {
        match self.try_ingest(update) {
            Ok(alert) => alert,
            Err(Error::UnknownVariable(v)) => {
                panic!("update for variable {v} not in condition's variable set")
            }
            Err(_) => None,
        }
    }

    /// Like [`Evaluator::ingest`] but surfaces routing problems.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] for updates outside the
    /// condition's variable set. Stale updates are *not* errors; they
    /// are discarded and counted, returning `Ok(None)`.
    pub fn try_ingest(&mut self, update: Update) -> Result<Option<Alert>> {
        match self.histories.push(update) {
            Ok(()) => {}
            Err(Error::OutOfOrderUpdate { .. }) => {
                self.dropped_stale += 1;
                return Ok(None);
            }
            Err(e) => return Err(e),
        }
        self.ingested += 1;
        if !self.histories.is_defined() || !self.cond.eval(&self.histories) {
            return Ok(None);
        }
        let alert = Alert::new(
            self.cond_id,
            self.histories.fingerprint(),
            self.histories.snapshot(),
            AlertId { ce: self.ce, index: self.emitted },
        );
        self.emitted += 1;
        Ok(Some(alert))
    }

    /// Simulates a crash-restart: all in-memory histories are lost.
    ///
    /// Alert numbering continues (the paper's back links are lossless
    /// and stateful, so a restarted CE does not reuse alert positions).
    pub fn restart(&mut self) {
        self.histories.clear();
    }
}

/// The paper's `T`: runs `updates` through a fresh evaluator and
/// returns the resulting alert sequence.
///
/// ```rust
/// use rcm_core::{transduce, Update, VarId, CeId};
/// use rcm_core::condition::{Threshold, Cmp};
/// let x = VarId::new(0);
/// let c1 = Threshold::new(x, Cmp::Gt, 3000.0);
/// // Example 1: U = ⟨1x(2900), 2x(3100), 3x(3200)⟩ → two alerts.
/// let u = vec![
///     Update::new(x, 1, 2900.0),
///     Update::new(x, 2, 3100.0),
///     Update::new(x, 3, 3200.0),
/// ];
/// let alerts = transduce(&c1, CeId::new(0), &u);
/// assert_eq!(alerts.len(), 2);
/// ```
pub fn transduce<C: Condition>(cond: &C, ce: CeId, updates: &[Update]) -> Vec<Alert> {
    let mut ev = Evaluator::with_ids(cond, CondId::SINGLE, ce);
    updates.iter().filter_map(|&u| ev.ingest(u)).collect()
}

/// `T(U1 ⊔ U2)` for a **single-variable** system: merges the two
/// replicas' received update sequences with the ordered union and runs
/// `T` over the result — the behaviour of the paper's corresponding
/// non-replicated system `N` given the combined inputs.
///
/// When the same seqno appears in both inputs the first occurrence is
/// kept; updates are full snapshots, so both carry the same value.
///
/// # Panics
///
/// Panics if the updates span more than one variable (multi-variable
/// systems need an interleaving, not a union — see the paper's
/// Appendix C and the `rcm-props` crate).
pub fn transduce_merged<C: Condition>(
    cond: &C,
    ce: CeId,
    u1: &[Update],
    u2: &[Update],
) -> Vec<Alert> {
    let mut var: Option<VarId> = None;
    for u in u1.iter().chain(u2) {
        match var {
            None => var = Some(u.var),
            Some(v) => {
                assert!(v == u.var, "transduce_merged is single-variable; found {v} and {}", u.var)
            }
        }
    }
    let mut merged: Vec<Update> = Vec::with_capacity(u1.len() + u2.len());
    let (mut i, mut j) = (0, 0);
    while i < u1.len() || j < u2.len() {
        let next = match (u1.get(i), u2.get(j)) {
            (Some(a), Some(b)) => {
                if a.seqno <= b.seqno {
                    i += 1;
                    *a
                } else {
                    j += 1;
                    *b
                }
            }
            (Some(a), None) => {
                i += 1;
                *a
            }
            (None, Some(b)) => {
                j += 1;
                *b
            }
            (None, None) => unreachable!(),
        };
        if merged.last().map(|u: &Update| u.seqno) != Some(next.seqno) {
            merged.push(next);
        }
    }
    transduce(cond, ce, &merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Cmp, Conservative, DeltaRise, Threshold};
    use crate::update::SeqNo;

    fn x() -> VarId {
        VarId::new(0)
    }

    fn u(s: u64, v: f64) -> Update {
        Update::new(x(), s, v)
    }

    #[test]
    fn example_1_replicated_trace() {
        // Example 1: c1 over U = ⟨1(2900), 2(3100), 3(3200)⟩;
        // CE1 receives all, CE2 misses 2.
        let c1 = Threshold::new(x(), Cmp::Gt, 3000.0);
        let a1 = transduce(&c1, CeId::new(1), &[u(1, 2900.0), u(2, 3100.0), u(3, 3200.0)]);
        let a2 = transduce(&c1, CeId::new(2), &[u(1, 2900.0), u(3, 3200.0)]);
        assert_eq!(a1.len(), 2);
        assert_eq!(a1[0].seqno(x()), Some(SeqNo::new(2)));
        assert_eq!(a1[1].seqno(x()), Some(SeqNo::new(3)));
        assert_eq!(a2.len(), 1);
        assert_eq!(a2[0].seqno(x()), Some(SeqNo::new(3)));
        // a2 (from CE1, on 3x) and a3 (from CE2, on 3x) are identical.
        assert_eq!(a1[1], a2[0]);
    }

    #[test]
    fn no_alert_until_history_defined() {
        let c = DeltaRise::new(x(), -1e9); // effectively "always true" once defined
        let mut ev = Evaluator::new(c);
        assert!(ev.ingest(u(1, 0.0)).is_none()); // degree 2, only 1 update
        assert!(ev.ingest(u(2, 0.0)).is_some());
        assert_eq!(ev.alerts_emitted(), 1);
        assert_eq!(ev.updates_ingested(), 2);
    }

    #[test]
    fn stale_updates_discarded_and_counted() {
        let c = Threshold::new(x(), Cmp::Gt, 0.0);
        let mut ev = Evaluator::new(c);
        ev.ingest(u(5, 1.0));
        assert!(ev.ingest(u(5, 1.0)).is_none());
        assert!(ev.ingest(u(3, 1.0)).is_none());
        assert_eq!(ev.stale_dropped(), 2);
        assert_eq!(ev.updates_ingested(), 1);
    }

    #[test]
    #[should_panic(expected = "not in condition's variable set")]
    fn unknown_variable_panics_on_ingest() {
        let c = Threshold::new(x(), Cmp::Gt, 0.0);
        let mut ev = Evaluator::new(c);
        ev.ingest(Update::new(VarId::new(9), 1, 1.0));
    }

    #[test]
    fn try_ingest_surfaces_unknown_variable() {
        let c = Threshold::new(x(), Cmp::Gt, 0.0);
        let mut ev = Evaluator::new(c);
        assert!(matches!(
            ev.try_ingest(Update::new(VarId::new(9), 1, 1.0)),
            Err(Error::UnknownVariable(_))
        ));
    }

    #[test]
    fn restart_clears_history_but_keeps_numbering() {
        let c = Threshold::new(x(), Cmp::Gt, 0.0);
        let mut ev = Evaluator::new(c);
        let a0 = ev.ingest(u(1, 1.0)).unwrap();
        assert_eq!(a0.id.index, 0);
        ev.restart();
        assert!(ev.histories().history(x()).unwrap().is_empty());
        let a1 = ev.ingest(u(5, 1.0)).unwrap();
        assert_eq!(a1.id.index, 1);
    }

    #[test]
    fn transduce_merged_matches_union() {
        // Theorem 3's counterexample inputs: U1 = ⟨1(1000), 2(1500)⟩,
        // U2 = ⟨3(2000), 4(2500)⟩ under c3.
        let c3 = Conservative::new(DeltaRise::new(x(), 200.0));
        let u1 = vec![u(1, 1000.0), u(2, 1500.0)];
        let u2 = vec![u(3, 2000.0), u(4, 2500.0)];
        let merged = transduce_merged(&c3, CeId::new(0), &u1, &u2);
        // T(⟨1,2,3,4⟩) = ⟨2,3,4⟩ (each adjacent rise is 500 > 200).
        let seqs: Vec<u64> = merged.iter().map(|a| a.seqno(x()).unwrap().get()).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn transduce_merged_dedups_common_seqnos() {
        let c = Threshold::new(x(), Cmp::Gt, 0.0);
        let u1 = vec![u(1, 1.0), u(2, 1.0)];
        let u2 = vec![u(2, 1.0), u(3, 1.0)];
        let merged = transduce_merged(&c, CeId::new(0), &u1, &u2);
        assert_eq!(merged.len(), 3);
    }

    #[test]
    #[should_panic(expected = "single-variable")]
    fn transduce_merged_rejects_multi_var() {
        let c = Threshold::new(x(), Cmp::Gt, 0.0);
        transduce_merged(&c, CeId::new(0), &[u(1, 1.0)], &[Update::new(VarId::new(1), 1, 1.0)]);
    }

    #[test]
    fn alert_provenance_is_recorded() {
        let c = Threshold::new(x(), Cmp::Gt, 0.0);
        let alerts = transduce(&c, CeId::new(7), &[u(1, 1.0), u(2, 1.0)]);
        assert_eq!(alerts[0].id.ce, CeId::new(7));
        assert_eq!(alerts[0].id.index, 0);
        assert_eq!(alerts[1].id.index, 1);
    }
}
