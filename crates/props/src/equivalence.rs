//! The paper's §3.1 summary claim, as a checkable predicate:
//!
//! > "an ordered and complete replicated system displays exactly the
//! > same alerts as its corresponding non-replicated system, and in
//! > the same order."
//!
//! [`check_equivalent_single`] decides *sequence-level* equality with
//! the corresponding non-replicated system `N` (a single CE fed
//! `U1 ⊔ U2`, no filtering) and the tests establish the summary's
//! equivalence: ordered ∧ complete ⟺ display-equivalent, for
//! duplicate-free displays.

use rcm_core::{transduce, Alert, CeId, Condition, Update};

use crate::util::merge_all_single;

/// Outcome of a display-equivalence check.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivalenceReport {
    /// Whether the displayed sequence equals `T(U1 ⊔ U2)` element for
    /// element, in order.
    pub ok: bool,
    /// First position where the sequences diverge.
    pub first_divergence: Option<usize>,
    /// Length of the reference sequence.
    pub reference_len: usize,
}

/// Checks whether `displayed` is *exactly* what the corresponding
/// non-replicated system would display: same alerts, same order.
///
/// # Panics
///
/// Panics if the inputs span more than one variable.
pub fn check_equivalent_single<C: Condition>(
    cond: &C,
    inputs: &[Vec<Update>],
    displayed: &[Alert],
) -> EquivalenceReport {
    let merged = merge_all_single(inputs);
    let reference = transduce(cond, CeId::new(u32::MAX), &merged);
    let first_divergence =
        reference.iter().zip(displayed.iter()).position(|(a, b)| a != b).or_else(|| {
            if reference.len() != displayed.len() {
                Some(reference.len().min(displayed.len()))
            } else {
                None
            }
        });
    EquivalenceReport {
        ok: first_divergence.is_none(),
        first_divergence,
        reference_len: reference.len(),
    }
}

/// Multi-variable display equivalence (the Appendix C analogue): does
/// some interleaving `U_V` of the per-variable ordered unions satisfy
/// `displayed == T(U_V)` **as a sequence** (same alerts, same order)?
///
/// Like [`check_complete_multi`](crate::check_complete_multi) this
/// enumerates interleavings, capped at
/// [`MULTI_ENUM_CAP`](crate::MULTI_ENUM_CAP) combined updates.
///
/// # Panics
///
/// Panics if the combined update count exceeds the cap.
pub fn check_equivalent_multi<C: Condition>(
    cond: &C,
    inputs: &[Vec<Update>],
    displayed: &[Alert],
) -> EquivalenceReport {
    let merged = crate::merge_per_var(inputs);
    let lists: Vec<Vec<Update>> = merged.into_values().collect();
    let total: usize = lists.iter().map(Vec::len).sum();
    assert!(
        total <= crate::MULTI_ENUM_CAP,
        "equivalence enumeration capped at {} combined updates, got {total}",
        crate::MULTI_ENUM_CAP
    );
    let mut best: Option<(usize, usize)> = None; // (divergence pos, ref len)
    let mut found = false;
    crate::multi::enumerate_merges_pub(&lists, &mut |candidate| {
        let reference = transduce(cond, CeId::new(u32::MAX), candidate);
        let divergence =
            reference.iter().zip(displayed.iter()).position(|(a, b)| a != b).or_else(|| {
                if reference.len() != displayed.len() {
                    Some(reference.len().min(displayed.len()))
                } else {
                    None
                }
            });
        match divergence {
            None => {
                found = true;
                true // stop: witness interleaving found
            }
            Some(pos) => {
                if best.is_none_or(|(b, _)| pos > b) {
                    best = Some((pos, reference.len()));
                }
                false
            }
        }
    });
    if found {
        EquivalenceReport { ok: true, first_divergence: None, reference_len: displayed.len() }
    } else {
        let (pos, reference_len) = best.unwrap_or((0, 0));
        EquivalenceReport { ok: false, first_divergence: Some(pos), reference_len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maximality::duplicate_free;
    use crate::{check_complete_single, check_ordered};
    use rcm_core::ad::{apply_filter, Ad1};
    use rcm_core::condition::{Cmp, DeltaRise, Threshold};
    use rcm_core::VarId;

    fn x() -> VarId {
        VarId::new(0)
    }

    fn u(s: u64, v: f64) -> Update {
        Update::new(x(), s, v)
    }

    #[test]
    fn lossless_ad1_is_display_equivalent() {
        // Theorem 1 + the §3.1 summary: ordered and complete ⇒ exactly N.
        let c = DeltaRise::new(x(), 5.0);
        let uu: Vec<Update> = (1..=10).map(|s| u(s, (s as f64) * 10.0)).collect();
        let a1 = rcm_core::transduce(&c, CeId::new(1), &uu);
        let a2 = rcm_core::transduce(&c, CeId::new(2), &uu);
        // Interleave the two identical streams pairwise.
        let arrivals: Vec<Alert> =
            a1.iter().zip(a2.iter()).flat_map(|(a, b)| [a.clone(), b.clone()]).collect();
        let shown = apply_filter(&mut Ad1::new(), &arrivals);
        let eq = check_equivalent_single(&c, &[uu.clone(), uu], &shown);
        assert!(eq.ok, "diverged at {:?}", eq.first_divergence);
    }

    #[test]
    fn summary_claim_equivalence_on_random_subsets() {
        // For duplicate-free displayed sequences:
        //   ordered ∧ complete ⟺ display-equivalent.
        use rand::{Rng, SeedableRng};
        let c = Threshold::new(x(), Cmp::Gt, 50.0);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        for _ in 0..200 {
            let uu: Vec<Update> = (1..=8).map(|s| u(s, rng.random_range(0.0..100.0))).collect();
            let keep1: Vec<Update> = uu.iter().filter(|_| rng.random_bool(0.8)).copied().collect();
            let keep2: Vec<Update> = uu.iter().filter(|_| rng.random_bool(0.8)).copied().collect();
            let mut alerts: Vec<Alert> = rcm_core::transduce(&c, CeId::new(1), &keep1)
                .into_iter()
                .chain(rcm_core::transduce(&c, CeId::new(2), &keep2))
                .collect();
            // Random permutation as a hypothetical display order.
            for i in (1..alerts.len()).rev() {
                let j = rng.random_range(0..=i);
                alerts.swap(i, j);
            }
            let displayed = apply_filter(&mut Ad1::new(), &alerts);
            assert!(duplicate_free(&displayed));
            let inputs = vec![keep1, keep2];
            let lhs = check_ordered(&displayed, &[x()]).ok
                && check_complete_single(&c, &inputs, &displayed).ok;
            let rhs = check_equivalent_single(&c, &inputs, &displayed).ok;
            assert_eq!(lhs, rhs, "summary claim violated for {displayed:?}");
        }
    }

    #[test]
    fn divergence_position_reported() {
        let c = Threshold::new(x(), Cmp::Gt, 0.0);
        let uu = vec![u(1, 1.0), u(2, 1.0)];
        let alerts = rcm_core::transduce(&c, CeId::new(1), &uu);
        // Reversed order: diverges at position 0.
        let reversed: Vec<Alert> = alerts.iter().rev().cloned().collect();
        let eq = check_equivalent_single(&c, std::slice::from_ref(&uu), &reversed);
        assert!(!eq.ok);
        assert_eq!(eq.first_divergence, Some(0));
        // Truncated: diverges at the missing tail.
        let eq = check_equivalent_single(&c, &[uu], &alerts[..1]);
        assert!(!eq.ok);
        assert_eq!(eq.first_divergence, Some(1));
        assert_eq!(eq.reference_len, 2);
    }

    #[test]
    fn empty_against_empty_is_equivalent() {
        let c = Threshold::new(x(), Cmp::Gt, 0.0);
        assert!(check_equivalent_single(&c, &[vec![]], &[]).ok);
    }

    #[test]
    fn multi_var_equivalence_on_theorem_10_traces() {
        use rcm_core::condition::AbsDifference;
        let y = rcm_core::VarId::new(1);
        let cm = AbsDifference::new(x(), y, 100.0);
        let ux = |s, v| Update::new(x(), s, v);
        let uy = |s, v| Update::new(y, s, v);
        let u1 = vec![ux(1, 1000.0), ux(2, 1200.0), uy(1, 1050.0), uy(2, 1150.0)];
        let u2 = vec![uy(1, 1050.0), uy(2, 1150.0), ux(1, 1000.0), ux(2, 1200.0)];
        let a1 = rcm_core::transduce(&cm, CeId::new(1), &u1);
        let a2 = rcm_core::transduce(&cm, CeId::new(2), &u2);
        // Each replica's own output matches its own interleaving of the
        // unions exactly (equivalent)…
        assert!(check_equivalent_multi(&cm, &[u1.clone(), u2.clone()], &a1).ok);
        assert!(check_equivalent_multi(&cm, &[u1.clone(), u2.clone()], &a2).ok);
        // …but the merged pair matches no interleaving (Theorem 10).
        let both: Vec<Alert> = a1.iter().chain(a2.iter()).cloned().collect();
        let eq = check_equivalent_multi(&cm, &[u1, u2], &both);
        assert!(!eq.ok);
        assert!(eq.first_divergence.is_some());
    }

    #[test]
    fn multi_var_equivalence_empty_case() {
        use rcm_core::condition::AbsDifference;
        let y = rcm_core::VarId::new(1);
        let cm = AbsDifference::new(x(), y, 1e12); // never satisfied
        let u = vec![Update::new(x(), 1, 1.0), Update::new(y, 1, 2.0)];
        assert!(check_equivalent_multi(&cm, &[u], &[]).ok);
    }
}
