//! Shared helpers and report types for the property checkers.

use std::collections::BTreeMap;

use rcm_core::{Alert, Update, VarId};

/// Outcome of a completeness check.
#[derive(Debug, Clone, PartialEq)]
pub struct CompleteReport {
    /// Whether `ΦA` equals the expected alert set.
    pub ok: bool,
    /// Alerts the non-replicated reference would display but `A` lacks.
    pub missing: Vec<Alert>,
    /// Alerts in `A` the non-replicated reference would never display.
    pub extraneous: Vec<Alert>,
}

impl CompleteReport {
    pub(crate) fn from_sets(missing: Vec<Alert>, extraneous: Vec<Alert>) -> Self {
        CompleteReport { ok: missing.is_empty() && extraneous.is_empty(), missing, extraneous }
    }
}

/// Outcome of a consistency check.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsistentReport {
    /// Whether some `U' ⊑ U1 ⊔ U2` explains every displayed alert.
    pub ok: bool,
    /// A witness `U'` (per-variable received seqno sets as updates),
    /// present when `ok`.
    pub witness: Option<Vec<Update>>,
    /// Human-readable explanation of the first conflict found, when
    /// not consistent.
    pub conflict: Option<String>,
}

impl ConsistentReport {
    pub(crate) fn consistent(witness: Vec<Update>) -> Self {
        ConsistentReport { ok: true, witness: Some(witness), conflict: None }
    }

    pub(crate) fn inconsistent(conflict: String) -> Self {
        ConsistentReport { ok: false, witness: None, conflict: Some(conflict) }
    }
}

/// Merges what every replica received into the per-variable ordered
/// unions (Appendix C: "the update sequence for variable x is the
/// ordered union of x-updates received by all the CEs").
///
/// Duplicated seqnos keep their first occurrence — updates are full
/// snapshots, so replicas hold identical values for the same seqno.
pub fn merge_per_var(inputs: &[Vec<Update>]) -> BTreeMap<VarId, Vec<Update>> {
    let mut merged: BTreeMap<VarId, BTreeMap<u64, Update>> = BTreeMap::new();
    for input in inputs {
        for &u in input {
            merged.entry(u.var).or_default().entry(u.seqno.get()).or_insert(u);
        }
    }
    merged.into_iter().map(|(var, by_seq)| (var, by_seq.into_values().collect())).collect()
}

/// `U1 ⊔ U2 ⊔ …` for a **single-variable** system: the ordered union of
/// all replicas' received updates.
///
/// # Panics
///
/// Panics if the inputs span more than one variable.
pub fn merge_all_single(inputs: &[Vec<Update>]) -> Vec<Update> {
    let merged = merge_per_var(inputs);
    assert!(
        merged.len() <= 1,
        "merge_all_single is single-variable; found {} variables",
        merged.len()
    );
    merged.into_values().next().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::SeqNo;

    fn u(var: u32, s: u64, v: f64) -> Update {
        Update::new(VarId::new(var), s, v)
    }

    #[test]
    fn merge_all_single_unions_by_seqno() {
        let u1 = vec![u(0, 1, 10.0), u(0, 3, 30.0)];
        let u2 = vec![u(0, 2, 20.0), u(0, 3, 30.0)];
        let merged = merge_all_single(&[u1, u2]);
        let seqs: Vec<u64> = merged.iter().map(|x| x.seqno.get()).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn merge_per_var_separates_streams() {
        let u1 = vec![u(0, 1, 0.0), u(1, 1, 0.0)];
        let u2 = vec![u(0, 2, 0.0)];
        let merged = merge_per_var(&[u1, u2]);
        assert_eq!(merged[&VarId::new(0)].len(), 2);
        assert_eq!(merged[&VarId::new(1)].len(), 1);
        assert_eq!(merged[&VarId::new(0)][1].seqno, SeqNo::new(2));
    }

    #[test]
    fn empty_inputs_merge_to_empty() {
        assert!(merge_all_single(&[]).is_empty());
        assert!(merge_per_var(&[vec![], vec![]]).is_empty());
    }

    #[test]
    #[should_panic(expected = "single-variable")]
    fn merge_all_single_rejects_two_vars() {
        merge_all_single(&[vec![u(0, 1, 0.0)], vec![u(1, 1, 0.0)]]);
    }
}
