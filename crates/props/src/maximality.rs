//! Empirical probe for the maximality theorems (5, 7 and 9).
//!
//! AD-2 is *maximally ordered*: no filter that guarantees orderedness
//! passes strictly more alerts. The paper proves this by contradiction:
//! any filter whose output strictly contains AD-2's must, at the first
//! extra alert, have displayed something AD-2 dropped — and displaying
//! that alert on top of AD-2's output breaks orderedness. (The same
//! structure proves Theorems 7 and 9 for AD-3 and AD-4.)
//!
//! [`probe_one_extra`] replays that argument on concrete traces: for
//! every alert the filter discards, it forms the hypothetical output of
//! a dominating filter that additionally displays it (the filter's
//! deliveries with the discarded alert spliced in at its arrival
//! position) and checks the property on the result. Maximality predicts
//! **every** such mutant violates the property — orderedness and
//! consistency violations are preserved under supersequences, so a
//! violating splice condemns all dominating filters that pass that
//! alert.

use std::collections::HashSet;

use rcm_core::ad::AlertFilter;
use rcm_core::Alert;

/// Whether no two displayed alerts are identical (same condition and
/// histories).
///
/// The paper's framework takes duplicate elimination as the baseline
/// duty of every AD (Algorithm AD-1 *is* duplicate removal, and
/// Theorems 6/8 presuppose AD-2/AD-3 drop at least what AD-1 drops),
/// so the maximality theorems are about duplicate-free filters:
/// splicing an exact duplicate back into an output never breaks
/// orderedness or consistency, but it does break this predicate. Probe
/// properties should therefore be conjoined with `duplicate_free`.
pub fn duplicate_free(alerts: &[Alert]) -> bool {
    let mut seen: HashSet<&Alert> = HashSet::with_capacity(alerts.len());
    alerts.iter().all(|a| seen.insert(a))
}

/// Whether no two displayed alerts share all their `a.seqno.x` values.
///
/// The paper's orderedness proofs represent each alert by its sequence
/// number(s) (footnote 1: "each update/alert is represented by its
/// sequence number"), so at that abstraction two alerts with equal
/// seqnos in every variable *are* duplicates even when their deeper
/// histories differ — which is exactly what AD-2/AD-5 discard on
/// equality. Probes of the orderedness-maximality theorems (5 and 9)
/// should conjoin this predicate.
pub fn seqno_duplicate_free(alerts: &[Alert], vars: &[rcm_core::VarId]) -> bool {
    let mut seen: HashSet<Vec<u64>> = HashSet::with_capacity(alerts.len());
    alerts.iter().all(|a| {
        let heads: Vec<u64> =
            vars.iter().map(|&v| a.seqno(v).map_or(u64::MAX, |s| s.get())).collect();
        seen.insert(heads)
    })
}

/// Outcome of a one-extra-alert maximality probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeReport {
    /// How many discarded alerts were probed.
    pub probed: usize,
    /// How many spliced outputs violated the property (maximality
    /// predicts `violations == probed`).
    pub violations: usize,
    /// Arrival positions whose splice *kept* the property — evidence
    /// against maximality of the filter/property pair.
    pub survivors: Vec<usize>,
}

impl ProbeReport {
    /// Whether every probed splice violated the property.
    pub fn all_violate(&self) -> bool {
        self.survivors.is_empty()
    }
}

/// Probes maximality of `filter` with respect to the property decided
/// by `property_holds`, on one arrival sequence.
///
/// `property_holds` receives a candidate displayed sequence and returns
/// whether the property (orderedness, consistency, …) holds for it.
pub fn probe_one_extra<F: AlertFilter>(
    mut make_filter: impl FnMut() -> F,
    arrivals: &[Alert],
    mut property_holds: impl FnMut(&[Alert]) -> bool,
) -> ProbeReport {
    // Base run: record per-arrival decisions.
    let mut base = make_filter();
    let decisions: Vec<bool> = arrivals.iter().map(|a| base.offer(a).is_deliver()).collect();

    let mut probed = 0;
    let mut violations = 0;
    let mut survivors = Vec::new();
    for (k, delivered) in decisions.iter().enumerate() {
        if *delivered {
            continue;
        }
        probed += 1;
        // Hypothetical dominating output: the base deliveries plus the
        // k-th arrival, in arrival order.
        let spliced: Vec<Alert> = arrivals
            .iter()
            .enumerate()
            .filter(|(i, _)| decisions[*i] || *i == k)
            .map(|(_, a)| a.clone())
            .collect();
        if property_holds(&spliced) {
            survivors.push(k);
        } else {
            violations += 1;
        }
    }
    ProbeReport { probed, violations, survivors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_ordered;
    use crate::single::check_consistent_single;
    use rcm_core::ad::{Ad1, Ad2, Ad3, Ad4};
    use rcm_core::condition::DeltaRise;
    use rcm_core::{transduce, CeId, Update, VarId};

    fn x() -> VarId {
        VarId::new(0)
    }

    fn u(s: u64, v: f64) -> Update {
        Update::new(x(), s, v)
    }

    /// Theorem 4's scenario: c2 aggressive, CE2 misses update 2.
    fn conflicting_arrivals() -> (DeltaRise, Vec<Vec<Update>>, Vec<Alert>) {
        let c2 = DeltaRise::new(x(), 200.0);
        let u1 = vec![u(1, 400.0), u(2, 700.0), u(3, 720.0)];
        let u2 = vec![u(1, 400.0), u(3, 720.0)];
        let a1 = transduce(&c2, CeId::new(1), &u1);
        let a2 = transduce(&c2, CeId::new(2), &u2);
        let arrivals: Vec<Alert> = a2.iter().chain(a1.iter()).cloned().collect();
        (c2, vec![u1, u2], arrivals)
    }

    #[test]
    fn ad2_probe_confirms_theorem_5() {
        let (_, _, arrivals) = conflicting_arrivals();
        let r = probe_one_extra(
            || Ad2::new(x()),
            &arrivals,
            |a| seqno_duplicate_free(a, &[x()]) && check_ordered(a, &[x()]).ok,
        );
        assert!(r.probed > 0);
        assert!(r.all_violate(), "survivors at {:?}", r.survivors);
    }

    #[test]
    fn ad3_probe_confirms_theorem_7() {
        let (c2, inputs, arrivals) = conflicting_arrivals();
        let r = probe_one_extra(
            || Ad3::new(x()),
            &arrivals,
            |a| duplicate_free(a) && check_consistent_single(&c2, &inputs, a).ok,
        );
        assert!(r.probed > 0);
        assert!(r.all_violate(), "survivors at {:?}", r.survivors);
    }

    #[test]
    fn ad4_probe_confirms_theorem_9() {
        let (c2, inputs, arrivals) = conflicting_arrivals();
        let r = probe_one_extra(
            || Ad4::new(x()),
            &arrivals,
            |a| {
                seqno_duplicate_free(a, &[x()])
                    && check_ordered(a, &[x()]).ok
                    && check_consistent_single(&c2, &inputs, a).ok
            },
        );
        assert!(r.probed > 0);
        assert!(r.all_violate(), "survivors at {:?}", r.survivors);
    }

    #[test]
    fn duplicate_free_detects_duplicates() {
        let (_, _, arrivals) = conflicting_arrivals();
        assert!(duplicate_free(&arrivals));
        let doubled: Vec<Alert> = arrivals.iter().chain(arrivals.iter()).cloned().collect();
        assert!(!duplicate_free(&doubled));
        assert!(duplicate_free(&[]));
    }

    #[test]
    fn ad1_is_not_maximally_ordered() {
        // AD-1 only drops duplicates; splicing a duplicate back in does
        // not break orderedness when the stream is monotone — evidence
        // that "maximal" is about the property, not about dropping less.
        let mk = |s: u64| {
            transduce(&DeltaRise::new(x(), -1e18), CeId::new(0), &[u(s - 1, 0.0), u(s, 0.0)])
                .remove(0)
        };
        let a1 = mk(2);
        let arrivals = vec![a1.clone(), a1.clone()];
        let r = probe_one_extra(Ad1::new, &arrivals, |a| check_ordered(a, &[x()]).ok);
        assert_eq!(r.probed, 1);
        assert_eq!(r.survivors, vec![1]); // the duplicate splice stays ordered
    }

    #[test]
    fn no_discards_means_nothing_probed() {
        let (_, _, mut arrivals) = conflicting_arrivals();
        arrivals.truncate(1);
        let r = probe_one_extra(|| Ad2::new(x()), &arrivals, |a| check_ordered(a, &[x()]).ok);
        assert_eq!(r.probed, 0);
        assert!(r.all_violate());
    }
}
