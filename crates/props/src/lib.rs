//! # rcm-props — property checkers for replicated condition monitoring
//!
//! Exact decision procedures for the three correctness properties of
//! *Replicated condition monitoring* (Huang & Garcia-Molina, PODC 2001,
//! §3.1 and Appendix C), evaluated against concrete executions:
//!
//! * **Orderedness** — the displayed alert sequence `A` is ordered with
//!   respect to every variable ([`check_ordered`]);
//! * **Completeness** — `ΦA = ΦT(U1 ⊔ U2)` (single variable,
//!   [`check_complete_single`]) or `ΦA = ΦT(U_V)` for some interleaving
//!   `U_V` of the per-variable ordered unions (multi-variable,
//!   [`check_complete_multi`]);
//! * **Consistency** — `∃ U' ⊑ U1 ⊔ U2` with `ΦA ⊆ ΦT(U')`
//!   ([`check_consistent_single`], [`check_consistent_multi`]).
//!
//! The single-variable consistency checker uses the `Received`/`Missed`
//! construction from the proof of Theorem 7; the multi-variable one
//! adds the precedence-graph acyclicity argument of Lemma 5. Both are
//! cross-validated in the test suite against the brute-force oracles in
//! [`brute`], which literally enumerate `U' ⊑ U1 ⊔ U2` (and, for
//! multi-variable systems, all interleavings).
//!
//! The crate also implements the paper's §4.1 *domination* relation
//! between AD algorithms ([`domination`]) and an empirical probe for
//! the maximality theorems 5, 7 and 9 ([`maximality`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod brute;
pub mod domination;
mod equivalence;
pub mod maximality;
mod multi;
mod ordered;
mod single;
mod util;

pub use equivalence::{check_equivalent_multi, check_equivalent_single, EquivalenceReport};
pub use multi::{check_complete_multi, check_consistent_multi, MULTI_ENUM_CAP};
pub use ordered::{check_ordered, OrderedReport};
pub use single::{check_complete_single, check_consistent_single};
pub use util::{merge_all_single, merge_per_var, CompleteReport, ConsistentReport};
