//! Brute-force oracles for the property definitions.
//!
//! These literally quantify over the definitions of §3.1 / Appendix C:
//! consistency enumerates every `U' ⊑ U1 ⊔ U2` (all 2^n subsets of the
//! merged pool), and the multi-variable variants additionally enumerate
//! every interleaving. They are exponential and exist purely to
//! cross-validate the polynomial checkers in the crate root — the test
//! suites compare both on randomized small traces.

use std::collections::HashSet;

use rcm_core::{transduce, Alert, CeId, Condition, Update};

use crate::multi::enumerate_merges;
use crate::util::{merge_all_single, merge_per_var};

/// Maximum pool size accepted by the subset-enumerating oracles.
pub const BRUTE_CAP: usize = 16;

fn explains(cond: &impl Condition, candidate: &[Update], displayed: &[Alert]) -> bool {
    let reference = transduce(cond, CeId::new(u32::MAX), candidate);
    let set: HashSet<&Alert> = reference.iter().collect();
    displayed.iter().all(|a| set.contains(a))
}

/// Brute-force single-variable **consistency**: tries every subset of
/// the merged pool as `U'`.
///
/// # Panics
///
/// Panics if the merged pool exceeds [`BRUTE_CAP`] updates or spans
/// more than one variable.
pub fn brute_consistent_single<C: Condition>(
    cond: &C,
    inputs: &[Vec<Update>],
    displayed: &[Alert],
) -> bool {
    let pool = merge_all_single(inputs);
    assert!(pool.len() <= BRUTE_CAP, "brute-force oracle capped at {BRUTE_CAP} updates");
    if displayed.is_empty() {
        return true;
    }
    // Iterate subsets from largest to smallest is unnecessary; any hit
    // suffices.
    for mask in 0..(1u32 << pool.len()) {
        let candidate: Vec<Update> =
            pool.iter().enumerate().filter(|(i, _)| mask >> i & 1 == 1).map(|(_, u)| *u).collect();
        if explains(cond, &candidate, displayed) {
            return true;
        }
    }
    false
}

/// Brute-force multi-variable **consistency**: tries every per-variable
/// subset and every interleaving of the chosen subsets.
///
/// # Panics
///
/// Panics if the merged pool exceeds [`BRUTE_CAP`] combined updates.
pub fn brute_consistent_multi<C: Condition>(
    cond: &C,
    inputs: &[Vec<Update>],
    displayed: &[Alert],
) -> bool {
    let merged = merge_per_var(inputs);
    let lists: Vec<Vec<Update>> = merged.into_values().collect();
    let total: usize = lists.iter().map(Vec::len).sum();
    assert!(total <= BRUTE_CAP, "brute-force oracle capped at {BRUTE_CAP} updates");
    if displayed.is_empty() {
        return true;
    }
    // Enumerate per-variable subsets via one global mask over the
    // concatenation, then every interleaving of the kept updates.
    let flat_lens: Vec<usize> = lists.iter().map(Vec::len).collect();
    for mask in 0..(1u32 << total) {
        let mut offset = 0;
        let mut kept: Vec<Vec<Update>> = Vec::with_capacity(lists.len());
        for (li, list) in lists.iter().enumerate() {
            kept.push(
                list.iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> (offset + i) & 1 == 1)
                    .map(|(_, u)| *u)
                    .collect(),
            );
            offset += flat_lens[li];
        }
        let hit = enumerate_merges(&kept, &mut |candidate| explains(cond, candidate, displayed));
        if hit {
            return true;
        }
    }
    false
}

/// Brute-force multi-variable **completeness**: tries every
/// interleaving of the *full* per-variable unions, looking for one with
/// `ΦA = ΦT(U_V)`.
///
/// # Panics
///
/// Panics if the merged pool exceeds [`BRUTE_CAP`] combined updates.
pub fn brute_complete_multi<C: Condition>(
    cond: &C,
    inputs: &[Vec<Update>],
    displayed: &[Alert],
) -> bool {
    let merged = merge_per_var(inputs);
    let lists: Vec<Vec<Update>> = merged.into_values().collect();
    let total: usize = lists.iter().map(Vec::len).sum();
    assert!(total <= BRUTE_CAP, "brute-force oracle capped at {BRUTE_CAP} updates");
    let displayed_set: HashSet<&Alert> = displayed.iter().collect();
    enumerate_merges(&lists, &mut |candidate| {
        let reference = transduce(cond, CeId::new(u32::MAX), candidate);
        let set: HashSet<&Alert> = reference.iter().collect();
        set == displayed_set
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::condition::{AbsDifference, DeltaRise};
    use rcm_core::VarId;

    fn x() -> VarId {
        VarId::new(0)
    }
    fn y() -> VarId {
        VarId::new(1)
    }

    fn u(s: u64, v: f64) -> Update {
        Update::new(x(), s, v)
    }

    #[test]
    fn brute_matches_theorem_4_counterexample() {
        let c2 = DeltaRise::new(x(), 200.0);
        let u1 = vec![u(1, 400.0), u(2, 700.0), u(3, 720.0)];
        let u2 = vec![u(1, 400.0), u(3, 720.0)];
        let a1 = transduce(&c2, CeId::new(1), &u1);
        let a2 = transduce(&c2, CeId::new(2), &u2);
        let both: Vec<Alert> = a1.iter().chain(a2.iter()).cloned().collect();
        assert!(!brute_consistent_single(&c2, &[u1.clone(), u2.clone()], &both));
        // Each alone is consistent.
        assert!(brute_consistent_single(&c2, &[u1.clone(), u2.clone()], &a1));
        assert!(brute_consistent_single(&c2, &[u1, u2], &a2));
    }

    #[test]
    fn brute_multi_matches_theorem_10() {
        let cm = AbsDifference::new(x(), y(), 100.0);
        let ux = |s, v| Update::new(x(), s, v);
        let uy = |s, v| Update::new(y(), s, v);
        let u1 = vec![ux(1, 1000.0), ux(2, 1200.0), uy(1, 1050.0), uy(2, 1150.0)];
        let u2 = vec![uy(1, 1050.0), uy(2, 1150.0), ux(1, 1000.0), ux(2, 1200.0)];
        let a1 = transduce(&cm, CeId::new(1), &u1);
        let a2 = transduce(&cm, CeId::new(2), &u2);
        let both: Vec<Alert> = a1.iter().chain(a2.iter()).cloned().collect();
        assert!(!brute_consistent_multi(&cm, &[u1.clone(), u2.clone()], &both));
        assert!(brute_consistent_multi(&cm, &[u1.clone(), u2.clone()], &a1));
        assert!(brute_complete_multi(&cm, &[u1, u2], &a1));
    }

    #[test]
    fn empty_displayed_is_trivially_consistent() {
        let c2 = DeltaRise::new(x(), 200.0);
        assert!(brute_consistent_single(&c2, &[vec![u(1, 0.0)]], &[]));
        let cm = AbsDifference::new(x(), y(), 100.0);
        assert!(brute_consistent_multi(&cm, &[vec![u(1, 0.0)]], &[]));
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn cap_enforced() {
        let c2 = DeltaRise::new(x(), 200.0);
        let long: Vec<Update> = (1..=BRUTE_CAP as u64 + 1).map(|s| u(s, 0.0)).collect();
        brute_consistent_single(&c2, &[long], &[]);
    }
}
