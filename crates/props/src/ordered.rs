//! The orderedness checker.

use rcm_core::seq::project_alerts;
use rcm_core::{Alert, SeqNo, VarId};

/// Outcome of an orderedness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedReport {
    /// Whether `A` is ordered with respect to every variable.
    pub ok: bool,
    /// First inversion found: `(variable, position, earlier seqno,
    /// later-but-smaller seqno)`.
    pub violation: Option<(VarId, usize, SeqNo, SeqNo)>,
}

/// Checks the paper's **orderedness** property: `Π_v A` is
/// non-decreasing for every variable `v` in `vars`.
///
/// ```rust
/// use rcm_props::check_ordered;
/// use rcm_core::{Alert, AlertId, CeId, CondId, HistoryFingerprint, SeqNo, VarId};
/// let x = VarId::new(0);
/// let mk = |s: u64| Alert::new(CondId::SINGLE,
///     HistoryFingerprint::single(x, vec![SeqNo::new(s)]), vec![],
///     AlertId { ce: CeId::new(0), index: 0 });
/// assert!(check_ordered(&[mk(1), mk(2), mk(2)], &[x]).ok);
/// let bad = check_ordered(&[mk(2), mk(1)], &[x]);
/// assert!(!bad.ok);
/// assert_eq!(bad.violation.unwrap().1, 1); // inversion at position 1
/// ```
pub fn check_ordered(alerts: &[Alert], vars: &[VarId]) -> OrderedReport {
    for &var in vars {
        let proj = project_alerts(alerts, var);
        for (i, w) in proj.windows(2).enumerate() {
            if w[0] > w[1] {
                return OrderedReport { ok: false, violation: Some((var, i + 1, w[0], w[1])) };
            }
        }
    }
    OrderedReport { ok: true, violation: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::{AlertId, CeId, CondId, HistoryFingerprint};

    fn alert2(x_seq: u64, y_seq: u64) -> Alert {
        Alert::new(
            CondId::SINGLE,
            HistoryFingerprint::new(vec![
                (VarId::new(0), vec![SeqNo::new(x_seq)]),
                (VarId::new(1), vec![SeqNo::new(y_seq)]),
            ]),
            vec![],
            AlertId { ce: CeId::new(0), index: 0 },
        )
    }

    #[test]
    fn multi_var_violation_names_the_variable() {
        let a = vec![alert2(1, 2), alert2(2, 1)];
        let r = check_ordered(&a, &[VarId::new(0), VarId::new(1)]);
        assert!(!r.ok);
        let (var, pos, hi, lo) = r.violation.unwrap();
        assert_eq!(var, VarId::new(1));
        assert_eq!(pos, 1);
        assert_eq!((hi, lo), (SeqNo::new(2), SeqNo::new(1)));
    }

    #[test]
    fn empty_and_singleton_are_ordered() {
        assert!(check_ordered(&[], &[VarId::new(0)]).ok);
        assert!(check_ordered(&[alert2(5, 5)], &[VarId::new(0), VarId::new(1)]).ok);
    }

    #[test]
    fn equal_seqnos_are_ordered() {
        let a = vec![alert2(1, 1), alert2(1, 2)];
        assert!(check_ordered(&a, &[VarId::new(0), VarId::new(1)]).ok);
    }
}
