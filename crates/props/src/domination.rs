//! The domination relation between AD algorithms (paper §4.1).
//!
//! `G1` **dominates** `G2` (`G1 ≥ G2`) if, for every input (merged
//! alert arrival sequence), `G1`'s output is a supersequence of `G2`'s;
//! `G1 > G2` additionally requires some input where the supersequence
//! is strict. A dominant algorithm filters fewer alerts — all else
//! equal it is the "better" algorithm.
//!
//! [`check_domination`] evaluates the relation empirically over a given
//! set of arrival sequences (exhaustive proof is impossible for
//! arbitrary filters; the paper's Theorems 6 and 8 prove it for
//! AD-1 vs AD-2/AD-3, and the bench harness demonstrates it over large
//! randomized workloads).

use rcm_core::ad::{apply_filter, AlertFilter};
use rcm_core::seq::is_subsequence;
use rcm_core::Alert;

/// Outcome of an empirical domination check of `G1` over `G2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominationReport {
    /// `G1 ≥ G2` held on every tested arrival sequence.
    pub holds: bool,
    /// Some tested sequence produced a *strict* supersequence
    /// (`G1 > G2` evidence, meaningful only when `holds`).
    pub strict: bool,
    /// Number of arrival sequences tested.
    pub trials: usize,
    /// First arrival sequence on which `G2`'s output was *not* a
    /// subsequence of `G1`'s (present iff `!holds`).
    pub counterexample: Option<Vec<Alert>>,
    /// Total alerts passed by `G1` across all trials.
    pub passed_g1: usize,
    /// Total alerts passed by `G2` across all trials.
    pub passed_g2: usize,
}

/// Empirically checks whether `G1 ≥ G2` over the given arrival
/// sequences; fresh filter instances are created per sequence.
pub fn check_domination<F1, F2>(
    mut make_g1: impl FnMut() -> F1,
    mut make_g2: impl FnMut() -> F2,
    arrival_sequences: &[Vec<Alert>],
) -> DominationReport
where
    F1: AlertFilter,
    F2: AlertFilter,
{
    let mut holds = true;
    let mut strict = false;
    let mut counterexample = None;
    let (mut passed_g1, mut passed_g2) = (0, 0);
    for arrivals in arrival_sequences {
        let mut g1 = make_g1();
        let mut g2 = make_g2();
        let out1 = apply_filter(&mut g1, arrivals);
        let out2 = apply_filter(&mut g2, arrivals);
        passed_g1 += out1.len();
        passed_g2 += out2.len();
        if !is_subsequence(&out2, &out1) {
            if holds {
                counterexample = Some(arrivals.clone());
            }
            holds = false;
        } else if out1.len() > out2.len() {
            strict = true;
        }
    }
    DominationReport {
        holds,
        strict: holds && strict,
        trials: arrival_sequences.len(),
        counterexample,
        passed_g1,
        passed_g2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::ad::{Ad1, Ad2, Ad3, Ad4, DropAll, PassThrough};
    use rcm_core::{AlertId, CeId, CondId, HistoryFingerprint, SeqNo, VarId};

    fn alert(seqnos: &[u64]) -> Alert {
        Alert::new(
            CondId::SINGLE,
            HistoryFingerprint::single(
                VarId::new(0),
                seqnos.iter().map(|&s| SeqNo::new(s)).collect(),
            ),
            vec![],
            AlertId { ce: CeId::new(0), index: 0 },
        )
    }

    fn workloads() -> Vec<Vec<Alert>> {
        vec![
            vec![alert(&[1]), alert(&[2]), alert(&[3])],
            vec![alert(&[2]), alert(&[1]), alert(&[3])], // out of order
            vec![alert(&[3, 1]), alert(&[3, 2])],        // AD-3 conflict
            vec![alert(&[1]), alert(&[1])],              // duplicate
            vec![],
        ]
    }

    #[test]
    fn ad1_strictly_dominates_ad2() {
        // Theorem 6.
        let r = check_domination(Ad1::new, || Ad2::new(VarId::new(0)), &workloads());
        assert!(r.holds && r.strict);
        assert!(r.passed_g1 > r.passed_g2);
    }

    #[test]
    fn ad1_strictly_dominates_ad3() {
        // Theorem 8.
        let r = check_domination(Ad1::new, || Ad3::new(VarId::new(0)), &workloads());
        assert!(r.holds && r.strict);
    }

    #[test]
    fn ad2_and_ad3_dominate_ad4() {
        let r =
            check_domination(|| Ad2::new(VarId::new(0)), || Ad4::new(VarId::new(0)), &workloads());
        assert!(r.holds);
        let r =
            check_domination(|| Ad3::new(VarId::new(0)), || Ad4::new(VarId::new(0)), &workloads());
        assert!(r.holds);
    }

    #[test]
    fn pass_through_dominates_everything() {
        let r = check_domination(PassThrough::new, Ad1::new, &workloads());
        assert!(r.holds);
        let r = check_domination(PassThrough::new, DropAll::new, &workloads());
        assert!(r.holds && r.strict);
    }

    #[test]
    fn domination_fails_the_other_way() {
        // AD-2 does not dominate AD-1: on the out-of-order workload AD-1
        // passes an alert AD-2 drops.
        let r = check_domination(|| Ad2::new(VarId::new(0)), Ad1::new, &workloads());
        assert!(!r.holds);
        assert!(r.counterexample.is_some());
        assert!(!r.strict); // strict only meaningful when holds
    }

    #[test]
    fn empty_trials_hold_vacuously() {
        let r = check_domination(Ad1::new, Ad1::new, &[]);
        assert!(r.holds && !r.strict);
        assert_eq!(r.trials, 0);
    }
}
