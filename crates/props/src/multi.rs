//! Completeness and consistency checkers for multi-variable systems
//! (paper §5 and Appendix C).

use std::collections::{BTreeMap, BTreeSet, HashSet};

use rcm_core::seq::spanning_gaps;
use rcm_core::{transduce, Alert, CeId, Condition, Update, VarId};

use crate::util::{merge_per_var, CompleteReport, ConsistentReport};

/// Maximum combined update count the interleaving-enumerating
/// completeness checker accepts (the enumeration is exponential).
pub const MULTI_ENUM_CAP: usize = 18;

/// Checks multi-variable **completeness** (Appendix C): does some
/// interleaving `U_V` of the per-variable ordered unions satisfy
/// `ΦA = ΦT(U_V)`?
///
/// The checker enumerates interleavings exhaustively, so it is exact
/// but exponential; inputs are capped at [`MULTI_ENUM_CAP`] combined
/// updates.
///
/// # Panics
///
/// Panics if the combined update count exceeds [`MULTI_ENUM_CAP`].
pub fn check_complete_multi<C: Condition>(
    cond: &C,
    inputs: &[Vec<Update>],
    displayed: &[Alert],
) -> CompleteReport {
    let merged = merge_per_var(inputs);
    let lists: Vec<Vec<Update>> = merged.into_values().collect();
    let total: usize = lists.iter().map(Vec::len).sum();
    assert!(
        total <= MULTI_ENUM_CAP,
        "completeness enumeration capped at {MULTI_ENUM_CAP} combined updates, got {total}"
    );
    let displayed_set: HashSet<&Alert> = displayed.iter().collect();

    // Track the interleaving with the smallest symmetric difference for
    // the failure report.
    let mut best: Option<(usize, Vec<Alert>)> = None;
    let mut found = false;
    enumerate_merges(&lists, &mut |candidate| {
        let expected = transduce(cond, CeId::new(u32::MAX), candidate);
        let expected_set: HashSet<&Alert> = expected.iter().collect();
        let missing = expected.iter().filter(|a| !displayed_set.contains(*a)).count();
        let extraneous = displayed.iter().filter(|a| !expected_set.contains(a)).count();
        let diff = missing + extraneous;
        if best.as_ref().is_none_or(|(d, _)| diff < *d) {
            best = Some((diff, expected));
        }
        if diff == 0 {
            found = true;
        }
        found // stop once a witness interleaving is found
    });
    if found {
        return CompleteReport::from_sets(vec![], vec![]);
    }
    let (_, expected) = best.expect("at least one interleaving exists");
    let expected_set: HashSet<&Alert> = expected.iter().collect();
    let missing = expected.iter().filter(|a| !displayed_set.contains(*a)).cloned().collect();
    let extraneous = displayed.iter().filter(|a| !expected_set.contains(a)).cloned().collect();
    CompleteReport::from_sets(missing, extraneous)
}

/// Enumerates every order-preserving merge of `lists`, invoking the
/// visitor on each; the visitor returns `true` to stop early. Returns
/// whether the enumeration was stopped.
pub(crate) fn enumerate_merges_pub(
    lists: &[Vec<Update>],
    visit: &mut impl FnMut(&[Update]) -> bool,
) -> bool {
    enumerate_merges(lists, visit)
}

pub(crate) fn enumerate_merges(
    lists: &[Vec<Update>],
    visit: &mut impl FnMut(&[Update]) -> bool,
) -> bool {
    let total: usize = lists.iter().map(Vec::len).sum();
    let mut cursor = vec![0usize; lists.len()];
    let mut buf: Vec<Update> = Vec::with_capacity(total);
    dfs(lists, &mut cursor, &mut buf, total, visit)
}

fn dfs(
    lists: &[Vec<Update>],
    cursor: &mut [usize],
    buf: &mut Vec<Update>,
    total: usize,
    visit: &mut impl FnMut(&[Update]) -> bool,
) -> bool {
    if buf.len() == total {
        return visit(buf);
    }
    for i in 0..lists.len() {
        if cursor[i] < lists[i].len() {
            buf.push(lists[i][cursor[i]]);
            cursor[i] += 1;
            let stop = dfs(lists, cursor, buf, total, visit);
            cursor[i] -= 1;
            buf.pop();
            if stop {
                return true;
            }
        }
    }
    false
}

/// Checks multi-variable **consistency** (Appendix C): does some
/// `U' ⊑ U_V` (for some interleaving `U_V`) satisfy `ΦA ⊆ ΦT(U')`?
///
/// Decision procedure (following the proof of Lemma 5):
///
/// 1. per variable, accumulate `Received`/`Missed` requirements from
///    every displayed alert exactly as in AD-3; a received/missed clash
///    is inconsistent;
/// 2. build the per-variable witness sequences (the received updates)
///    and a precedence graph: per-variable stream order, plus, for each
///    alert and each ordered variable pair `(v, w)`, an edge from the
///    alert's head update of `v` to the witness successor of its head
///    update of `w` (the alert must trigger after all its heads and
///    before any variable advances past them);
/// 3. `A` is consistent iff the graph is acyclic. On success the
///    topological order materializes a witness interleaving, which is
///    verified by running `T` over it.
pub fn check_consistent_multi<C: Condition>(
    cond: &C,
    inputs: &[Vec<Update>],
    displayed: &[Alert],
) -> ConsistentReport {
    let pool = merge_per_var(inputs);
    if displayed.is_empty() {
        return ConsistentReport::consistent(vec![]);
    }

    // Step 1: per-variable received/missed accumulation.
    let mut received: BTreeMap<VarId, BTreeSet<u64>> = BTreeMap::new();
    let mut missed: BTreeMap<VarId, BTreeSet<u64>> = BTreeMap::new();
    let vars: Vec<VarId> = match displayed.first() {
        Some(a) => a.fingerprint.variables().collect(),
        None => vec![],
    };
    for alert in displayed {
        for var in &vars {
            let Some(seqnos) = alert.fingerprint.seqnos(*var) else {
                return ConsistentReport::inconsistent(format!(
                    "alert {alert} does not mention variable {var}"
                ));
            };
            let hx: BTreeSet<u64> = seqnos.iter().map(|s| s.get()).collect();
            missed.entry(*var).or_default().extend(spanning_gaps(&hx));
            received.entry(*var).or_default().extend(hx);
        }
    }
    for var in &vars {
        let r = received.get(var).cloned().unwrap_or_default();
        let m = missed.get(var).cloned().unwrap_or_default();
        if let Some(&clash) = r.intersection(&m).next() {
            return ConsistentReport::inconsistent(format!(
                "update {clash} of {var} must be both received and missed by U'"
            ));
        }
    }

    // Step 2: witness streams and node indexing.
    let mut witness: BTreeMap<VarId, Vec<Update>> = BTreeMap::new();
    for var in &vars {
        let want = received.get(var).cloned().unwrap_or_default();
        let have: Vec<Update> = pool
            .get(var)
            .map(|us| us.iter().filter(|u| want.contains(&u.seqno.get())).copied().collect())
            .unwrap_or_default();
        if have.len() != want.len() {
            return ConsistentReport::inconsistent(format!(
                "some displayed alert references a seqno of {var} no replica ever received"
            ));
        }
        witness.insert(*var, have);
    }
    let mut index: BTreeMap<(VarId, u64), usize> = BTreeMap::new();
    let mut nodes: Vec<Update> = Vec::new();
    for (var, stream) in &witness {
        for u in stream {
            index.insert((*var, u.seqno.get()), nodes.len());
            nodes.push(*u);
        }
    }

    // Edges: per-variable stream order…
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (var, stream) in &witness {
        for w in stream.windows(2) {
            adj[index[&(*var, w[0].seqno.get())]].push(index[&(*var, w[1].seqno.get())]);
        }
    }
    // …plus per-alert trigger-window constraints.
    for alert in displayed {
        for v in &vars {
            let hv = alert.seqno(*v).expect("checked above").get();
            let from = index[&(*v, hv)];
            for w in &vars {
                if v == w {
                    continue;
                }
                let hw = alert.seqno(*w).expect("checked above").get();
                // Successor of h_w in the witness stream of w.
                let succ = witness[w].iter().find(|u| u.seqno.get() > hw);
                if let Some(succ) = succ {
                    adj[from].push(index[&(*w, succ.seqno.get())]);
                }
            }
        }
    }

    // Step 3: cycle detection + topological order (Kahn).
    let mut indeg = vec![0usize; nodes.len()];
    for outs in &adj {
        for &t in outs {
            indeg[t] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..nodes.len()).filter(|&i| indeg[i] == 0).collect();
    let mut topo: Vec<Update> = Vec::with_capacity(nodes.len());
    while let Some(i) = queue.pop() {
        topo.push(nodes[i]);
        for &t in &adj[i] {
            indeg[t] -= 1;
            if indeg[t] == 0 {
                queue.push(t);
            }
        }
    }
    if topo.len() != nodes.len() {
        return ConsistentReport::inconsistent(
            "precedence cycle: no interleaving satisfies all displayed alerts".into(),
        );
    }

    // Belt and braces: the topological order is a concrete U'; verify
    // ΦA ⊆ ΦT(U').
    let reference = transduce(cond, CeId::new(u32::MAX), &topo);
    let reference_set: HashSet<&Alert> = reference.iter().collect();
    for alert in displayed {
        if !reference_set.contains(alert) {
            return ConsistentReport::inconsistent(format!(
                "alert {alert} not generated by T over the topological witness"
            ));
        }
    }
    ConsistentReport::consistent(topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::ad::{apply_filter, Ad1, Ad5};
    use rcm_core::condition::AbsDifference;
    use rcm_core::seq::alerts_ordered;

    fn x() -> VarId {
        VarId::new(0)
    }
    fn y() -> VarId {
        VarId::new(1)
    }

    fn ux(s: u64, v: f64) -> Update {
        Update::new(x(), s, v)
    }
    fn uy(s: u64, v: f64) -> Update {
        Update::new(y(), s, v)
    }

    /// The Theorem 10 scenario: lossless links, cm = |x−y| > 100,
    /// different interleavings at the two CEs.
    fn theorem_10() -> (AbsDifference, Vec<Update>, Vec<Update>, Vec<Alert>, Vec<Alert>) {
        let cm = AbsDifference::new(x(), y(), 100.0);
        let u1 = vec![ux(1, 1000.0), ux(2, 1200.0), uy(1, 1050.0), uy(2, 1150.0)];
        let u2 = vec![uy(1, 1050.0), uy(2, 1150.0), ux(1, 1000.0), ux(2, 1200.0)];
        let a1 = transduce(&cm, CeId::new(1), &u1);
        let a2 = transduce(&cm, CeId::new(2), &u2);
        (cm, u1, u2, a1, a2)
    }

    #[test]
    fn theorem_10_ce_outputs_match_paper() {
        let (_, _, _, a1, a2) = theorem_10();
        // A1 = ⟨a(2x,1y)⟩: CE1 triggers when 1y arrives (|1200−1050|=150).
        assert_eq!(a1.len(), 1);
        assert_eq!(a1[0].seqno(x()).unwrap().get(), 2);
        assert_eq!(a1[0].seqno(y()).unwrap().get(), 1);
        // A2 = ⟨a(1x,2y)⟩: CE2 triggers when 1x arrives (|1000−1150|=150).
        assert_eq!(a2.len(), 1);
        assert_eq!(a2[0].seqno(x()).unwrap().get(), 1);
        assert_eq!(a2[0].seqno(y()).unwrap().get(), 2);
    }

    #[test]
    fn theorem_10_ad1_inconsistent_and_unordered() {
        let (cm, u1, u2, a1, a2) = theorem_10();
        let arrivals: Vec<Alert> = a1.iter().chain(a2.iter()).cloned().collect();
        let a = apply_filter(&mut Ad1::new(), &arrivals);
        assert_eq!(a.len(), 2);
        assert!(!alerts_ordered(&a, &[x(), y()]));
        let cons = check_consistent_multi(&cm, &[u1, u2], &a);
        assert!(!cons.ok);
        assert!(cons.conflict.unwrap().contains("cycle"));
    }

    #[test]
    fn theorem_10_single_alert_is_consistent() {
        let (cm, u1, u2, a1, _) = theorem_10();
        let cons = check_consistent_multi(&cm, &[u1, u2], &a1);
        assert!(cons.ok, "{:?}", cons.conflict);
        // Witness contains exactly the received updates: 2x and 1y.
        let w = cons.witness.unwrap();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn ad5_restores_consistency_on_theorem_10() {
        let (cm, u1, u2, a1, a2) = theorem_10();
        let arrivals: Vec<Alert> = a1.iter().chain(a2.iter()).cloned().collect();
        let a = apply_filter(&mut Ad5::new([x(), y()]), &arrivals);
        assert_eq!(a.len(), 1);
        assert!(alerts_ordered(&a, &[x(), y()]));
        assert!(check_consistent_multi(&cm, &[u1, u2], &a).ok);
    }

    /// Lemma 6's synthetic condition: satisfied by exactly the update
    /// pairs (8x, 2y), (8x, 3y), (8x, 4y).
    #[derive(Debug)]
    struct Lemma6Cond;

    impl Condition for Lemma6Cond {
        fn name(&self) -> String {
            "lemma-6".into()
        }
        fn variables(&self) -> Vec<VarId> {
            vec![x(), y()]
        }
        fn degree(&self, var: VarId) -> usize {
            usize::from(var == x() || var == y())
        }
        fn triggering(&self) -> rcm_core::Triggering {
            rcm_core::Triggering::Conservative
        }
        fn eval(&self, h: &rcm_core::HistorySet) -> bool {
            let (Some(sx), Some(sy)) = (h.seqno(x(), 0), h.seqno(y(), 0)) else {
                return false;
            };
            sx.get() == 8 && (2..=4).contains(&sy.get())
        }
    }

    #[test]
    fn lemma_6_incompleteness() {
        // CE1 sees ⟨8x, 2y, 9x, 3y, 4y⟩ → a(8x, 2y);
        // CE2 sees ⟨2y, 3y, 7x, 4y, 8x⟩ → a(8x, 4y).
        let c = Lemma6Cond;
        let u1 = vec![ux(8, 0.0), uy(2, 0.0), ux(9, 0.0), uy(3, 0.0), uy(4, 0.0)];
        let u2 = vec![uy(2, 0.0), uy(3, 0.0), ux(7, 0.0), uy(4, 0.0), ux(8, 0.0)];
        let a1 = transduce(&c, CeId::new(1), &u1);
        let a2 = transduce(&c, CeId::new(2), &u2);
        assert_eq!(a1.len(), 1);
        assert_eq!(a2.len(), 1);
        let arrivals: Vec<Alert> = a1.iter().chain(a2.iter()).cloned().collect();
        let a = apply_filter(&mut Ad5::new([x(), y()]), &arrivals);
        assert_eq!(a.len(), 2); // AD-5 passes both (y advances 2 → 4)
                                // No interleaving yields exactly {a(8x,2y), a(8x,4y)} without
                                // also yielding a(8x,3y): the system is incomplete (Lemma 6)…
        let comp = check_complete_multi(&c, &[u1.clone(), u2.clone()], &a);
        assert!(!comp.ok);
        // The best interleaving either misses one displayed alert or
        // additionally produces a(8x, 3y); either way the diff is real.
        assert!(!comp.missing.is_empty() || !comp.extraneous.is_empty());
        // …yet consistent (Lemma 5): some U' ⊑ U_V explains both alerts.
        let cons = check_consistent_multi(&c, &[u1, u2], &a);
        assert!(cons.ok, "{:?}", cons.conflict);
    }

    #[test]
    fn complete_when_displayed_matches_some_interleaving() {
        let (cm, u1, u2, a1, _) = theorem_10();
        // A = A1 exactly matches T of CE1's own interleaving.
        let comp = check_complete_multi(&cm, &[u1, u2], &a1);
        assert!(comp.ok, "missing={:?} extra={:?}", comp.missing, comp.extraneous);
    }

    #[test]
    fn empty_execution_consistent_and_complete() {
        let cm = AbsDifference::new(x(), y(), 100.0);
        assert!(check_consistent_multi(&cm, &[vec![], vec![]], &[]).ok);
        assert!(check_complete_multi(&cm, &[vec![], vec![]], &[]).ok);
    }

    #[test]
    fn enumerate_merges_counts() {
        let lists = vec![vec![ux(1, 0.0), ux(2, 0.0)], vec![uy(1, 0.0)]];
        let mut n = 0;
        enumerate_merges(&lists, &mut |_| {
            n += 1;
            false
        });
        assert_eq!(n, 3); // C(3,1)
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn completeness_cap_enforced() {
        let cm = AbsDifference::new(x(), y(), 100.0);
        let long: Vec<Update> = (1..=MULTI_ENUM_CAP as u64 + 1).map(|s| ux(s, 0.0)).collect();
        check_complete_multi(&cm, &[long], &[]);
    }

    #[test]
    fn per_var_conflict_detected_before_graph() {
        // Two alerts with clashing x histories (received vs missed).
        let cm = AbsDifference::new(x(), y(), 100.0);
        let mk = |xs: Vec<u64>, ys: Vec<u64>| {
            Alert::new(
                rcm_core::CondId::SINGLE,
                rcm_core::HistoryFingerprint::new(vec![
                    (x(), xs.into_iter().map(rcm_core::SeqNo::new).collect()),
                    (y(), ys.into_iter().map(rcm_core::SeqNo::new).collect()),
                ]),
                vec![],
                rcm_core::AlertId { ce: CeId::new(0), index: 0 },
            )
        };
        // Degree-2 x histories: {1,3} (2 missed) vs {2,3} (2 received).
        let a = vec![mk(vec![3, 1], vec![1]), mk(vec![3, 2], vec![1])];
        let pool = vec![ux(1, 0.0), ux(2, 0.0), ux(3, 0.0), uy(1, 0.0)];
        let cons = check_consistent_multi(&cm, &[pool], &a);
        assert!(!cons.ok);
        assert!(cons.conflict.unwrap().contains("received and missed"));
    }
}
