//! Property-based cross-validation: the polynomial-time consistency and
//! completeness checkers must agree with the brute-force oracles that
//! literally enumerate the paper's definitions.

use proptest::prelude::*;

use rcm_core::condition::{AbsDifference, Cmp, Conservative, DeltaRise, Threshold};
use rcm_core::seq::merge_by_schedule;
use rcm_core::{transduce, Alert, CeId, Condition, Update, VarId};
use rcm_props::brute::{brute_complete_multi, brute_consistent_multi, brute_consistent_single};
use rcm_props::{check_complete_multi, check_consistent_multi, check_consistent_single};

fn x() -> VarId {
    VarId::new(0)
}
fn y() -> VarId {
    VarId::new(1)
}

/// Applies a loss mask to a full update stream (in-order, lossy link).
fn lossy(full: &[Update], mask: &[bool]) -> Vec<Update> {
    full.iter().zip(mask).filter(|(_, &keep)| keep).map(|(u, _)| *u).collect()
}

/// Selects a subsequence of alerts by mask — an arbitrary hypothetical
/// AD output.
fn subset(alerts: &[Alert], mask: &[bool]) -> Vec<Alert> {
    alerts
        .iter()
        .zip(mask.iter().cycle())
        .filter(|(_, &keep)| keep)
        .map(|(a, _)| a.clone())
        .collect()
}

/// Single-variable scenario: full stream of n updates with given
/// values; two replicas with independent loss masks.
fn single_var_updates(values: &[f64]) -> Vec<Update> {
    values.iter().enumerate().map(|(i, &v)| Update::new(x(), i as u64 + 1, v)).collect()
}

fn run_single<C: Condition>(
    cond: &C,
    values: &[f64],
    keep1: &[bool],
    keep2: &[bool],
    pick: &[bool],
) -> (Vec<Vec<Update>>, Vec<Alert>) {
    let full = single_var_updates(values);
    let u1 = lossy(&full, keep1);
    let u2 = lossy(&full, keep2);
    let a1 = transduce(cond, CeId::new(1), &u1);
    let a2 = transduce(cond, CeId::new(2), &u2);
    let all: Vec<Alert> = a1.into_iter().chain(a2).collect();
    let displayed = subset(&all, pick);
    (vec![u1, u2], displayed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn single_var_consistency_matches_brute_force_c2(
        values in proptest::collection::vec(0.0f64..1000.0, 2..7),
        keep1 in proptest::collection::vec(any::<bool>(), 7),
        keep2 in proptest::collection::vec(any::<bool>(), 7),
        pick in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let c2 = DeltaRise::new(x(), 200.0);
        let (inputs, displayed) = run_single(&c2, &values, &keep1, &keep2, &pick);
        let fast = check_consistent_single(&c2, &inputs, &displayed).ok;
        let slow = brute_consistent_single(&c2, &inputs, &displayed);
        prop_assert_eq!(fast, slow, "displayed = {:?}", displayed);
    }

    #[test]
    fn single_var_consistency_matches_brute_force_c3(
        values in proptest::collection::vec(0.0f64..1000.0, 2..7),
        keep1 in proptest::collection::vec(any::<bool>(), 7),
        keep2 in proptest::collection::vec(any::<bool>(), 7),
        pick in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let c3 = Conservative::new(DeltaRise::new(x(), 200.0));
        let (inputs, displayed) = run_single(&c3, &values, &keep1, &keep2, &pick);
        let fast = check_consistent_single(&c3, &inputs, &displayed).ok;
        let slow = brute_consistent_single(&c3, &inputs, &displayed);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn single_var_consistency_matches_brute_force_c1(
        values in proptest::collection::vec(0.0f64..1000.0, 1..7),
        keep1 in proptest::collection::vec(any::<bool>(), 7),
        keep2 in proptest::collection::vec(any::<bool>(), 7),
        pick in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let c1 = Threshold::new(x(), Cmp::Gt, 500.0);
        let (inputs, displayed) = run_single(&c1, &values, &keep1, &keep2, &pick);
        let fast = check_consistent_single(&c1, &inputs, &displayed).ok;
        let slow = brute_consistent_single(&c1, &inputs, &displayed);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn multi_var_checkers_match_brute_force(
        xvals in proptest::collection::vec(0.0f64..400.0, 1..4),
        yvals in proptest::collection::vec(0.0f64..400.0, 1..4),
        sched1 in proptest::collection::vec(any::<bool>(), 8),
        sched2 in proptest::collection::vec(any::<bool>(), 8),
        pick in proptest::collection::vec(any::<bool>(), 6),
    ) {
        let cm = AbsDifference::new(x(), y(), 100.0);
        let xs: Vec<Update> = xvals.iter().enumerate()
            .map(|(i, &v)| Update::new(x(), i as u64 + 1, v)).collect();
        let ys: Vec<Update> = yvals.iter().enumerate()
            .map(|(i, &v)| Update::new(y(), i as u64 + 1, v)).collect();
        // Lossless links, different interleavings per CE (Theorem 10's
        // setting generalized).
        let u1 = merge_by_schedule(&xs, &ys, &sched1);
        let u2 = merge_by_schedule(&xs, &ys, &sched2);
        let a1 = transduce(&cm, CeId::new(1), &u1);
        let a2 = transduce(&cm, CeId::new(2), &u2);
        let all: Vec<Alert> = a1.into_iter().chain(a2).collect();
        let displayed = subset(&all, &pick);
        let inputs = vec![u1, u2];

        let fast = check_consistent_multi(&cm, &inputs, &displayed).ok;
        let slow = brute_consistent_multi(&cm, &inputs, &displayed);
        prop_assert_eq!(fast, slow, "consistency mismatch: displayed = {:?}", displayed);

        let fastc = check_complete_multi(&cm, &inputs, &displayed).ok;
        let slowc = brute_complete_multi(&cm, &inputs, &displayed);
        prop_assert_eq!(fastc, slowc, "completeness mismatch: displayed = {:?}", displayed);
    }

    #[test]
    fn three_var_checkers_match_brute_force(
        xvals in proptest::collection::vec(0.0f64..400.0, 1..3),
        yvals in proptest::collection::vec(0.0f64..400.0, 1..3),
        zvals in proptest::collection::vec(0.0f64..400.0, 1..3),
        sched1 in proptest::collection::vec(any::<bool>(), 9),
        sched2 in proptest::collection::vec(any::<bool>(), 9),
        pick in proptest::collection::vec(any::<bool>(), 6),
    ) {
        use rcm_core::condition::Or;
        let z = VarId::new(2);
        let cm = Or::new(
            AbsDifference::new(x(), y(), 100.0),
            AbsDifference::new(y(), z, 100.0),
        );
        let mk = |var: VarId, vals: &[f64]| -> Vec<Update> {
            vals.iter().enumerate()
                .map(|(i, &v)| Update::new(var, i as u64 + 1, v)).collect()
        };
        let xs = mk(x(), &xvals);
        let ys = mk(y(), &yvals);
        let zs = mk(z, &zvals);
        // Two CEs with different three-way interleavings (lossless).
        let xy1 = merge_by_schedule(&xs, &ys, &sched1);
        let u1 = merge_by_schedule(&xy1, &zs, &sched2);
        let xy2 = merge_by_schedule(&ys, &xs, &sched2);
        let u2 = merge_by_schedule(&zs, &xy2, &sched1);
        let a1 = transduce(&cm, CeId::new(1), &u1);
        let a2 = transduce(&cm, CeId::new(2), &u2);
        let all: Vec<Alert> = a1.into_iter().chain(a2).collect();
        let displayed = subset(&all, &pick);
        let inputs = vec![u1, u2];

        let fast = check_consistent_multi(&cm, &inputs, &displayed).ok;
        let slow = brute_consistent_multi(&cm, &inputs, &displayed);
        prop_assert_eq!(fast, slow, "3-var consistency mismatch: {:?}", displayed);

        let fastc = check_complete_multi(&cm, &inputs, &displayed).ok;
        let slowc = brute_complete_multi(&cm, &inputs, &displayed);
        prop_assert_eq!(fastc, slowc, "3-var completeness mismatch: {:?}", displayed);
    }

    #[test]
    fn consistency_witness_always_verifies(
        values in proptest::collection::vec(0.0f64..1000.0, 2..7),
        keep1 in proptest::collection::vec(any::<bool>(), 7),
        keep2 in proptest::collection::vec(any::<bool>(), 7),
    ) {
        // The AD-3 filter's output must always be consistent (Theorem 7),
        // and the checker's witness must explain it.
        use rcm_core::ad::{apply_filter, Ad3};
        let c2 = DeltaRise::new(x(), 200.0);
        let full = single_var_updates(&values);
        let u1 = lossy(&full, &keep1);
        let u2 = lossy(&full, &keep2);
        let a1 = transduce(&c2, CeId::new(1), &u1);
        let a2 = transduce(&c2, CeId::new(2), &u2);
        let arrivals: Vec<Alert> = a1.into_iter().chain(a2).collect();
        let displayed = apply_filter(&mut Ad3::new(x()), &arrivals);
        let rep = check_consistent_single(&c2, &[u1, u2], &displayed);
        prop_assert!(rep.ok, "AD-3 output inconsistent: {:?}", rep.conflict);
        prop_assert!(rep.witness.is_some());
    }
}
