//! Sharded multi-condition evaluation: a
//! [`ConditionRegistry`](rcm_core::ConditionRegistry) split across
//! worker threads, bit-identical to the unsharded engine.
//!
//! A CE hosting thousands of conditions spends its time in per-arrival
//! re-evaluation, which parallelizes naturally: conditions are
//! independent state machines, so any partition of the condition set
//! evaluates correctly in isolation. [`ShardedRegistry`] partitions by
//! condition id — rcm-core's [`ShardSlices`] seam: shard `s` of `n`
//! hosts every condition with `id % n == s`, keeping the *global* id
//! space — and runs a batch through all shards on the deterministic
//! harness in [`par`]. (The runtime's streaming evaluation pipeline in
//! `rcm-runtime` builds on the same seam, so both engines share one
//! partition function and one merge.)
//!
//! The determinism contract mirrors [`par::map_indexed`]'s:
//!
//! > For any shard count and any worker-thread count,
//! > [`ShardedRegistry::ingest_batch`] emits byte-identical alerts (same
//! > order, same fingerprints, snapshots, and `AlertId` numbering) as a
//! > single unsharded [`ConditionRegistry`](rcm_core::ConditionRegistry)
//! > hosting the same conditions in ascending-id order.
//!
//! It holds because the unsharded registry emits, per update, in
//! ascending condition-id order; each shard tags its alerts with the
//! producing update's batch index, and the merge sorts by
//! `(update index, condition id)` — reconstructing exactly that order
//! ([`ShardSlices::merge_tagged`]).

use rcm_core::condition::expr::CompiledCondition;
use rcm_core::condition::DynCondition;
use rcm_core::{Alert, CeId, CondId, RegistryStats, ShardSlices, Update};

use crate::par;

/// A condition registry partitioned over `n` shards by `cond_id % n`
/// (rcm-core's [`ShardSlices`] seam), evaluated in parallel per batch
/// on the deterministic [`par`] harness.
#[derive(Debug)]
pub struct ShardedRegistry {
    slices: ShardSlices,
}

impl ShardedRegistry {
    /// Creates an empty registry for replica `ce` with `shards` empty
    /// shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(ce: CeId, shards: usize) -> Self {
        ShardedRegistry { slices: ShardSlices::new(ce, shards) }
    }

    /// Builds a sharded registry hosting `conds`, assigning condition
    /// `i` the global id `CondId::new(i)` with incremental
    /// re-evaluation enabled — the sharded equivalent of calling
    /// [`rcm_core::ConditionRegistry::add_compiled`] for each.
    pub fn from_compiled(
        ce: CeId,
        conds: impl IntoIterator<Item = CompiledCondition>,
        shards: usize,
    ) -> Self {
        let mut reg = Self::new(ce, shards);
        for (i, c) in conds.into_iter().enumerate() {
            reg.insert_compiled(CondId::new(i as u32), c);
        }
        reg
    }

    /// Builds a sharded registry hosting type-erased `conds` (full
    /// re-evaluation per arrival), assigning condition `i` the global
    /// id `CondId::new(i)`.
    pub fn from_conditions(
        ce: CeId,
        conds: impl IntoIterator<Item = DynCondition>,
        shards: usize,
    ) -> Self {
        let mut reg = Self::new(ce, shards);
        for (i, c) in conds.into_iter().enumerate() {
            reg.insert(CondId::new(i as u32), c);
        }
        reg
    }

    /// Registers a condition under its global id on the owning shard.
    ///
    /// # Panics
    ///
    /// Panics if `cond_id` is already registered.
    pub fn insert(&mut self, cond_id: CondId, cond: DynCondition) {
        self.slices.insert(cond_id, cond);
    }

    /// Registers a compiled condition (incremental re-evaluation) under
    /// its global id on the owning shard.
    ///
    /// # Panics
    ///
    /// Panics if `cond_id` is already registered.
    pub fn insert_compiled(&mut self, cond_id: CondId, cond: CompiledCondition) {
        self.slices.insert_compiled(cond_id, cond);
    }

    /// Number of hosted conditions across all shards.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Whether no conditions are hosted.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.slices.shard_count()
    }

    /// Runs a batch of updates through every shard (in parallel, on
    /// [`par::harness_threads`] workers) and appends the merged alerts
    /// to `out` in exactly the unsharded emission order (the seam's
    /// [`ShardSlices::merge_tagged`]).
    pub fn ingest_batch(&mut self, updates: &[Update], out: &mut Vec<Alert>) {
        let parts: Vec<Vec<(u64, Alert)>> =
            par::map_slice_mut(self.slices.shards_mut(), |_, shard| {
                let mut tagged = Vec::new();
                shard.ingest_batch_tagged(updates, &mut tagged);
                tagged
            });
        ShardSlices::merge_tagged(parts, out);
    }

    /// Aggregate counters summed over shards (see
    /// [`ShardSlices::stats`] for the `unrouted` caveat).
    pub fn stats(&self) -> RegistryStats {
        self.slices.stats()
    }

    /// Crash-restart of the hosting CE: every shard loses its
    /// histories and incremental caches; alert numbering continues per
    /// condition (see [`rcm_core::ConditionRegistry::restart`]).
    pub fn restart(&mut self) {
        self.slices.restart();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::with_threads;
    use rcm_core::{ConditionRegistry, VarRegistry};

    /// A small family of mixed conditions over x and y.
    fn conds(n: usize, vars: &mut VarRegistry) -> Vec<CompiledCondition> {
        (0..n)
            .map(|i| {
                let src = match i % 4 {
                    0 => format!("x[0].value > {i}"),
                    1 => format!("x[0].value - x[-1].value > {} && consecutive(x)", i % 7),
                    2 => format!("y[0].value < {}", 50 - i as i64),
                    _ => format!("x[0].value + y[0].value > {i}"),
                };
                CompiledCondition::compile(&src, vars).unwrap()
            })
            .collect()
    }

    fn stream(vars: &mut VarRegistry, n: u64) -> Vec<Update> {
        let x = vars.register("x");
        let y = vars.register("y");
        let mut out = Vec::new();
        let (mut sx, mut sy) = (0u64, 0u64);
        for i in 0..n {
            // Interleave x and y, with occasional gaps and stale resends.
            if i % 3 == 0 {
                sy += 1 + u64::from(i % 11 == 0);
                out.push(Update::new(y, sy, (i as f64 * 1.37).sin() * 60.0));
            } else {
                sx += 1 + u64::from(i % 7 == 0);
                out.push(Update::new(x, sx, (i % 100) as f64 - 30.0));
                if i % 13 == 0 {
                    out.push(Update::new(x, sx, 0.0)); // stale duplicate
                }
            }
        }
        out
    }

    #[test]
    fn sharded_is_bit_identical_to_unsharded() {
        let mut vars = VarRegistry::new();
        let family = conds(23, &mut vars);
        let updates = stream(&mut vars, 200);
        let ce = CeId::new(1);

        let mut plain = ConditionRegistry::new(ce);
        for c in &family {
            plain.add_compiled(c.clone());
        }
        let mut want = Vec::new();
        plain.ingest_batch(&updates, &mut want);
        assert!(!want.is_empty(), "test stream should produce alerts");

        for shards in [1, 2, 4, 7, 23, 64] {
            let mut sharded = ShardedRegistry::from_compiled(ce, family.iter().cloned(), shards);
            let mut got = Vec::new();
            sharded.ingest_batch(&updates, &mut got);
            assert_eq!(got.len(), want.len(), "shards = {shards}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g, w, "shards = {shards}");
                assert_eq!(g.id, w.id, "shards = {shards}");
                assert_eq!(g.snapshot[..], w.snapshot[..], "shards = {shards}");
            }
            let (ps, ss) = (plain.stats(), sharded.stats());
            assert_eq!(ps.ingested, ss.ingested, "shards = {shards}");
            assert_eq!(ps.dropped_stale, ss.dropped_stale, "shards = {shards}");
            assert_eq!(ps.emitted, ss.emitted, "shards = {shards}");
        }
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let mut vars = VarRegistry::new();
        let family = conds(16, &mut vars);
        let updates = stream(&mut vars, 120);
        let ce = CeId::new(0);
        let runs: Vec<Vec<Alert>> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                with_threads(threads, || {
                    let mut reg = ShardedRegistry::from_compiled(ce, family.iter().cloned(), 8);
                    let mut out = Vec::new();
                    reg.ingest_batch(&updates, &mut out);
                    out
                })
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
        for (a, b) in runs[0].iter().zip(&runs[2]) {
            assert_eq!(a.id, b.id);
        }
    }

    #[test]
    fn restart_spans_all_shards() {
        let mut vars = VarRegistry::new();
        let family = conds(6, &mut vars);
        let updates = stream(&mut vars, 60);
        let ce = CeId::new(2);

        let mut reference = ConditionRegistry::new(ce);
        for c in &family {
            reference.add_compiled(c.clone());
        }
        let mut sharded = ShardedRegistry::from_compiled(ce, family.iter().cloned(), 3);

        let (first, second) = updates.split_at(updates.len() / 2);
        let (mut want, mut got) = (Vec::new(), Vec::new());
        reference.ingest_batch(first, &mut want);
        reference.restart();
        reference.ingest_batch(second, &mut want);
        sharded.ingest_batch(first, &mut got);
        sharded.restart();
        sharded.ingest_batch(second, &mut got);
        assert_eq!(got, want);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.id, w.id);
        }
    }

    #[test]
    fn mixed_dyn_and_sharding_accessors() {
        use rcm_core::condition::{Cmp, Threshold};
        use rcm_core::VarId;
        use std::sync::Arc;
        let x = VarId::new(0);
        let mut reg = ShardedRegistry::from_conditions(
            CeId::new(0),
            (0..5).map(|i| Arc::new(Threshold::new(x, Cmp::Gt, f64::from(i))) as DynCondition),
            2,
        );
        assert_eq!(reg.len(), 5);
        assert_eq!(reg.shards(), 2);
        assert!(!reg.is_empty());
        let mut out = Vec::new();
        reg.ingest_batch(&[Update::new(x, 1, 10.0)], &mut out);
        assert_eq!(out.len(), 5);
        // Global ids survive sharding, in ascending order per update.
        let ids: Vec<u32> = out.iter().map(|a| a.cond.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedRegistry::new(CeId::new(0), 0);
    }
}
