//! Fully serializable scenario descriptions.
//!
//! [`Scenario`] holds live objects (a compiled condition, stateful
//! value models), so it cannot itself be serialized. [`ScenarioSpec`]
//! is the JSON-able counterpart: the condition is expression-language
//! *source text* and the workloads are [`ValueSpec`]s; [`build`]
//! compiles everything into a runnable [`Scenario`] plus the variable
//! registry mapping names to ids. This is what configuration files and
//! the `simulate` CLI use.
//!
//! [`build`]: ScenarioSpec::build

use std::sync::Arc;

use rcm_core::condition::expr::CompiledCondition;
use rcm_core::condition::Condition;
use rcm_core::{Error, VarRegistry};
use serde::{Deserialize, Serialize};

use crate::event::SimTime;
use crate::scenario::{DelaySpec, LossSpec, Outage, Scenario, VarWorkload};
use crate::workload::ValueSpec;

/// One Data Monitor in a [`ScenarioSpec`], referencing its variable by
/// name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Variable name as used in the condition source.
    pub var: String,
    /// Number of updates emitted.
    pub updates: u64,
    /// Ticks between emissions.
    pub period: SimTime,
    /// Tick of the first emission.
    #[serde(default)]
    pub offset: SimTime,
    /// Value process.
    pub values: ValueSpec,
}

fn default_replicas() -> usize {
    2
}

/// A complete scenario as plain data: JSON in, simulation out.
///
/// ```rust
/// let json = r#"{
///     "condition": "temp[0].value > 3000",
///     "workloads": [{
///         "var": "temp", "updates": 10, "period": 10,
///         "values": { "Spikes": { "base": 2900.0, "noise": 10.0,
///                                   "magnitude": 400.0, "spike_p": 0.3 } }
///     }],
///     "front_loss": [{ "Bernoulli": 0.1 }],
///     "seed": 7
/// }"#;
/// let spec: rcm_sim::ScenarioSpec = serde_json::from_str(json)?;
/// let (scenario, registry) = spec.build()?;
/// let result = rcm_sim::run(scenario);
/// assert_eq!(result.stats.updates_emitted, 10);
/// assert!(registry.lookup("temp").is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Condition source in the expression language.
    pub condition: String,
    /// Replica count (default 2).
    #[serde(default = "default_replicas")]
    pub replicas: usize,
    /// Data Monitors, one per condition variable.
    pub workloads: Vec<WorkloadSpec>,
    /// Front-link loss specs (default lossless). Same per-link indexing
    /// as [`Scenario`].
    #[serde(default)]
    pub front_loss: Vec<LossSpec>,
    /// Front-link delay specs (default constant 1).
    #[serde(default)]
    pub front_delay: Vec<DelaySpec>,
    /// Back-link delay specs (default constant 1).
    #[serde(default)]
    pub back_delay: Vec<DelaySpec>,
    /// Replica outages.
    #[serde(default)]
    pub outages: Vec<Outage>,
    /// Alert Displayer outages.
    #[serde(default)]
    pub ad_outages: Vec<(SimTime, SimTime)>,
    /// Master seed.
    #[serde(default)]
    pub seed: u64,
}

impl ScenarioSpec {
    /// Compiles the condition, resolves variable names and assembles a
    /// runnable [`Scenario`].
    ///
    /// # Errors
    ///
    /// Returns the expression compiler's error for a bad condition, or
    /// [`Error::UnknownVariable`] if a workload names a variable the
    /// condition does not mention. (A condition variable with *no*
    /// workload is reported by the engine when the scenario runs.)
    pub fn build(&self) -> Result<(Scenario, VarRegistry), Error> {
        let mut registry = VarRegistry::new();
        let condition = CompiledCondition::compile(&self.condition, &mut registry)?;
        let vars = condition.variables();
        let mut workloads = Vec::with_capacity(self.workloads.len());
        for w in &self.workloads {
            let var = registry.lookup(&w.var).filter(|v| vars.contains(v)).ok_or_else(|| {
                // Register to obtain an id for the error message.
                Error::UnknownVariable(registry.register(&w.var))
            })?;
            workloads.push(VarWorkload {
                var,
                updates: w.updates,
                period: w.period,
                offset: w.offset,
                model: w.values.build(),
            });
        }
        let or_default = |list: &[_], d: DelaySpec| -> Vec<DelaySpec> {
            if list.is_empty() {
                vec![d]
            } else {
                list.to_vec()
            }
        };
        let scenario = Scenario {
            condition: Arc::new(condition),
            replicas: self.replicas,
            workloads,
            front_loss: if self.front_loss.is_empty() {
                vec![LossSpec::Lossless]
            } else {
                self.front_loss.clone()
            },
            front_delay: or_default(&self.front_delay, DelaySpec::Constant(1)),
            back_delay: or_default(&self.back_delay, DelaySpec::Constant(1)),
            outages: self.outages.clone(),
            ad_outages: self.ad_outages.clone(),
            seed: self.seed,
            link_salt: 0,
        };
        Ok((scenario, registry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;

    fn minimal(condition: &str) -> ScenarioSpec {
        ScenarioSpec {
            condition: condition.to_owned(),
            replicas: 2,
            workloads: vec![WorkloadSpec {
                var: "temp".into(),
                updates: 12,
                period: 10,
                offset: 0,
                values: ValueSpec::RandomWalk { start: 100.0, step: 30.0, lo: 0.0, hi: 200.0 },
            }],
            front_loss: vec![],
            front_delay: vec![],
            back_delay: vec![],
            outages: vec![],
            ad_outages: vec![],
            seed: 3,
        }
    }

    #[test]
    fn builds_and_runs() {
        let (scenario, registry) = minimal("temp[0].value > 110").build().unwrap();
        assert_eq!(registry.lookup("temp"), Some(rcm_core::VarId::new(0)));
        let result = run(scenario);
        assert_eq!(result.stats.updates_emitted, 12);
        assert_eq!(result.inputs.len(), 2);
    }

    #[test]
    fn json_roundtrip() {
        let spec = minimal("temp[0].value - temp[-1].value > 20 && consecutive(temp)");
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn defaults_fill_in() {
        let json = r#"{
            "condition": "x[0].value > 0",
            "workloads": [{ "var": "x", "updates": 3, "period": 5,
                            "values": { "Scripted": [1.0, 2.0, 3.0] } }]
        }"#;
        let spec: ScenarioSpec = serde_json::from_str(json).unwrap();
        assert_eq!(spec.replicas, 2);
        assert_eq!(spec.seed, 0);
        let (scenario, _) = spec.build().unwrap();
        let result = run(scenario);
        assert_eq!(result.stats.updates_lost, 0); // default lossless
        assert_eq!(result.arrivals.len(), 6); // 3 alerts × 2 replicas
    }

    #[test]
    fn bad_condition_reports_parse_error() {
        let err = minimal("temp[0].value >").build().unwrap_err();
        assert!(matches!(err, Error::Parse(_)));
    }

    #[test]
    fn workload_for_unknown_variable_rejected() {
        let mut spec = minimal("temp[0].value > 0");
        spec.workloads[0].var = "pressure".into();
        let err = spec.build().unwrap_err();
        assert!(matches!(err, Error::UnknownVariable(_)));
    }
}
