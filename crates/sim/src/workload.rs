//! Synthetic value generators driving the Data Monitors.
//!
//! The paper's experiments are framed around reactor temperatures,
//! stock quotes and battlefield sensors. We have no physical sensors,
//! so Data Monitors are driven by seeded synthetic processes that
//! exercise the same code paths: the paper's results depend only on
//! sequence numbers, loss and interleavings, never on sensor physics
//! (see DESIGN.md's substitution notes).

use std::fmt;

use rand::RngCore;

/// Generates the value snapshot for each successive update of one
/// variable.
pub trait ValueModel: fmt::Debug + Send {
    /// Produces the next reading.
    fn next(&mut self, rng: &mut dyn RngCore) -> f64;
}

fn uniform(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// A bounded random walk: each reading moves by a uniform step in
/// `[-step, step]`, clamped to `[lo, hi]`.
///
/// Tuned so delta conditions (`c2`/`c3`) trigger on a healthy fraction
/// of updates: a walk with `step = 2δ` crosses a `δ` rise roughly a
/// quarter of the time.
#[derive(Debug, Clone, Copy)]
pub struct RandomWalk {
    value: f64,
    step: f64,
    lo: f64,
    hi: f64,
}

impl RandomWalk {
    /// Creates a walk starting at `start`, stepping ±`step`, clamped to
    /// `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `step` is not finite and positive.
    pub fn new(start: f64, step: f64, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "bounds must satisfy lo <= hi");
        assert!(step > 0.0 && step.is_finite(), "step must be positive");
        RandomWalk { value: start.clamp(lo, hi), step, lo, hi }
    }
}

impl ValueModel for RandomWalk {
    fn next(&mut self, rng: &mut dyn RngCore) -> f64 {
        let delta = (uniform(rng) * 2.0 - 1.0) * self.step;
        self.value = (self.value + delta).clamp(self.lo, self.hi);
        self.value
    }
}

/// A baseline with occasional spikes: readings sit at `base` (plus
/// small noise) and jump to `base + magnitude` with probability
/// `spike_p` — a missile-launch / overheat pattern for threshold
/// conditions.
#[derive(Debug, Clone, Copy)]
pub struct Spikes {
    base: f64,
    noise: f64,
    magnitude: f64,
    spike_p: f64,
}

impl Spikes {
    /// Creates the process.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= spike_p <= 1`.
    pub fn new(base: f64, noise: f64, magnitude: f64, spike_p: f64) -> Self {
        assert!((0.0..=1.0).contains(&spike_p), "spike probability must be in [0, 1]");
        Spikes { base, noise, magnitude, spike_p }
    }
}

impl ValueModel for Spikes {
    fn next(&mut self, rng: &mut dyn RngCore) -> f64 {
        let jitter = (uniform(rng) * 2.0 - 1.0) * self.noise;
        if uniform(rng) < self.spike_p {
            self.base + self.magnitude + jitter
        } else {
            self.base + jitter
        }
    }
}

/// A deterministic sine wave with additive noise — smooth periodic data
/// for level-crossing conditions.
#[derive(Debug, Clone, Copy)]
pub struct SineNoise {
    mean: f64,
    amplitude: f64,
    period: f64,
    noise: f64,
    t: f64,
}

impl SineNoise {
    /// Creates the process.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    pub fn new(mean: f64, amplitude: f64, period: f64, noise: f64) -> Self {
        assert!(period > 0.0, "period must be positive");
        SineNoise { mean, amplitude, period, noise, t: 0.0 }
    }
}

impl ValueModel for SineNoise {
    fn next(&mut self, rng: &mut dyn RngCore) -> f64 {
        let phase = self.t * std::f64::consts::TAU / self.period;
        self.t += 1.0;
        let jitter = (uniform(rng) * 2.0 - 1.0) * self.noise;
        self.mean + self.amplitude * phase.sin() + jitter
    }
}

/// Replays a fixed list of readings (cycling if exhausted) — used to
/// reproduce the paper's worked examples exactly.
#[derive(Debug, Clone)]
pub struct Scripted {
    values: Vec<f64>,
    i: usize,
}

impl Scripted {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics on an empty script.
    pub fn new(values: impl Into<Vec<f64>>) -> Self {
        let values = values.into();
        assert!(!values.is_empty(), "scripted values must not be empty");
        Scripted { values, i: 0 }
    }
}

impl ValueModel for Scripted {
    fn next(&mut self, _rng: &mut dyn RngCore) -> f64 {
        let v = self.values[self.i % self.values.len()];
        self.i += 1;
        v
    }
}

/// Serializable value-model specification; [`ValueSpec::build`] turns
/// it into a live model. Used where a workload must be rebuilt several
/// times from the same description — e.g. the per-condition runs of a
/// multi-condition system, which must observe identical DM values.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ValueSpec {
    /// [`RandomWalk`] parameters `(start, step, lo, hi)`.
    RandomWalk {
        /// Starting value.
        start: f64,
        /// Max step magnitude.
        step: f64,
        /// Lower clamp.
        lo: f64,
        /// Upper clamp.
        hi: f64,
    },
    /// [`Spikes`] parameters.
    Spikes {
        /// Baseline value.
        base: f64,
        /// Noise magnitude.
        noise: f64,
        /// Spike height.
        magnitude: f64,
        /// Spike probability per reading.
        spike_p: f64,
    },
    /// [`SineNoise`] parameters.
    Sine {
        /// Mean level.
        mean: f64,
        /// Wave amplitude.
        amplitude: f64,
        /// Wave period in readings.
        period: f64,
        /// Noise magnitude.
        noise: f64,
    },
    /// [`Scripted`] readings.
    Scripted(Vec<f64>),
}

impl ValueSpec {
    /// Instantiates the model.
    pub fn build(&self) -> Box<dyn ValueModel> {
        match self {
            ValueSpec::RandomWalk { start, step, lo, hi } => {
                Box::new(RandomWalk::new(*start, *step, *lo, *hi))
            }
            ValueSpec::Spikes { base, noise, magnitude, spike_p } => {
                Box::new(Spikes::new(*base, *noise, *magnitude, *spike_p))
            }
            ValueSpec::Sine { mean, amplitude, period, noise } => {
                Box::new(SineNoise::new(*mean, *amplitude, *period, *noise))
            }
            ValueSpec::Scripted(values) => Box::new(Scripted::new(values.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn walk_stays_in_bounds() {
        let mut w = RandomWalk::new(50.0, 30.0, 0.0, 100.0);
        let mut r = rng(1);
        for _ in 0..10_000 {
            let v = w.next(&mut r);
            assert!((0.0..=100.0).contains(&v));
        }
    }

    #[test]
    fn walk_moves() {
        let mut w = RandomWalk::new(50.0, 5.0, 0.0, 100.0);
        let mut r = rng(2);
        let a = w.next(&mut r);
        let b = w.next(&mut r);
        assert_ne!(a, b);
    }

    #[test]
    fn spikes_hit_roughly_at_rate() {
        let mut s = Spikes::new(100.0, 1.0, 1000.0, 0.1);
        let mut r = rng(3);
        let n = 20_000;
        let hits = (0..n).filter(|_| s.next(&mut r) > 500.0).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn sine_oscillates_around_mean() {
        let mut s = SineNoise::new(100.0, 10.0, 20.0, 0.0);
        let mut r = rng(4);
        let vals: Vec<f64> = (0..20).map(|_| s.next(&mut r)).collect();
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 105.0 && min < 95.0);
    }

    #[test]
    fn scripted_replays_and_cycles() {
        let mut s = Scripted::new(vec![1.0, 2.0]);
        let mut r = rng(5);
        assert_eq!(s.next(&mut r), 1.0);
        assert_eq!(s.next(&mut r), 2.0);
        assert_eq!(s.next(&mut r), 1.0);
    }

    #[test]
    fn value_spec_builds_equivalent_models() {
        let specs = [
            ValueSpec::RandomWalk { start: 10.0, step: 2.0, lo: 0.0, hi: 20.0 },
            ValueSpec::Spikes { base: 5.0, noise: 1.0, magnitude: 50.0, spike_p: 0.2 },
            ValueSpec::Sine { mean: 0.0, amplitude: 3.0, period: 8.0, noise: 0.1 },
            ValueSpec::Scripted(vec![1.0, 2.0]),
        ];
        for spec in specs {
            let mut a = spec.build();
            let mut b = spec.build();
            let (mut r1, mut r2) = (rng(4), rng(4));
            for _ in 0..50 {
                assert_eq!(a.next(&mut r1), b.next(&mut r2), "{spec:?}");
            }
            // And round-trips through serde.
            let json = serde_json::to_string(&spec).unwrap();
            assert_eq!(serde_json::from_str::<ValueSpec>(&json).unwrap(), spec);
        }
    }

    #[test]
    fn determinism_from_seed() {
        let mut a = RandomWalk::new(0.0, 1.0, -10.0, 10.0);
        let mut b = RandomWalk::new(0.0, 1.0, -10.0, 10.0);
        let (mut r1, mut r2) = (rng(9), rng(9));
        for _ in 0..100 {
            assert_eq!(a.next(&mut r1), b.next(&mut r2));
        }
    }
}
