//! Multi-condition systems (paper Appendix D, Fig. D-7(c)).
//!
//! Several conditions are monitored over the *same* real-world
//! variables, each by its own set of replicated Condition Evaluators
//! with its own front links; all alert streams converge on one Alert
//! Displayer, which demultiplexes per condition and runs one filter
//! instance per stream.
//!
//! The construction reduces to independent single-condition systems
//! (the appendix's observation), which is exactly how it is simulated:
//! one engine run per condition, sharing the DM value stream (same
//! seed) over independent links (distinct salts), merged at the AD by
//! arrival time.
//!
//! [`run_hosted`] simulates the alternative *hosted* deployment — one
//! replicated CE group hosting every condition in a sharded
//! [`ConditionRegistry`](rcm_core::ConditionRegistry) — where all
//! conditions on a replica share one subscription and therefore one
//! loss pattern per variable.

use std::sync::Arc;

use rcm_core::condition::{Condition, Triggering};
use rcm_core::{Alert, CeId, CondId, HistorySet, RegistryStats, Update, VarId};

use crate::engine::{run, RunResult};
use crate::event::SimTime;
use crate::scenario::{DelaySpec, LossSpec, Scenario, VarWorkload};
use crate::shard::ShardedRegistry;
use crate::workload::ValueSpec;

/// One shared Data Monitor description (rebuildable per condition run).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SharedWorkload {
    /// The monitored variable.
    pub var: VarId,
    /// Number of updates emitted.
    pub updates: u64,
    /// Ticks between emissions.
    pub period: SimTime,
    /// Tick of the first emission.
    pub offset: SimTime,
    /// Value process specification.
    pub values: ValueSpec,
}

/// A multi-condition scenario: shared DMs, one replicated CE group per
/// condition.
#[derive(Debug)]
pub struct MultiCondScenario {
    /// The monitored conditions; index `i` becomes `CondId::new(i)`.
    pub conditions: Vec<Arc<dyn Condition>>,
    /// Replicas per condition.
    pub replicas: usize,
    /// Shared Data Monitors. Every variable used by any condition must
    /// appear here; each condition's CEs subscribe to the subset they
    /// need.
    pub workloads: Vec<SharedWorkload>,
    /// Front-link loss spec (uniform across links).
    pub front_loss: LossSpec,
    /// Front-link delay spec.
    pub front_delay: DelaySpec,
    /// Back-link delay spec.
    pub back_delay: DelaySpec,
    /// Master seed.
    pub seed: u64,
}

/// Result of a multi-condition run.
#[derive(Debug, Clone)]
pub struct MultiCondResult {
    /// Per condition: the full single-condition execution record, with
    /// alert condition ids rewritten to the condition's index.
    pub per_condition: Vec<RunResult>,
    /// All alerts merged by arrival time (ties broken by condition
    /// index) — the stream the shared AD actually processes.
    pub arrivals: Vec<Alert>,
}

impl MultiCondResult {
    /// The displayed alerts of `displayed` belonging to condition
    /// `index`, with their condition id reset to [`CondId::SINGLE`] so
    /// they compare equal against single-condition reference runs
    /// (property checking).
    pub fn stream_of(displayed: &[Alert], index: u32) -> Vec<Alert> {
        displayed
            .iter()
            .filter(|a| a.cond == CondId::new(index))
            .map(|a| {
                let mut a = a.clone();
                a.cond = CondId::SINGLE;
                a
            })
            .collect()
    }
}

/// Runs a multi-condition scenario: one engine run per condition with
/// the shared seed (identical DM values) and a per-condition link salt
/// (independent losses and delays), merged by arrival time.
///
/// # Panics
///
/// Panics if a condition uses a variable with no shared workload, or
/// propagates the engine's scenario validation panics.
pub fn run_multi(scenario: &MultiCondScenario) -> MultiCondResult {
    let mut per_condition = Vec::with_capacity(scenario.conditions.len());
    let mut tagged: Vec<(u64, u32, usize)> = Vec::new(); // (arrived, cond, idx)

    for (ci, condition) in scenario.conditions.iter().enumerate() {
        let vars = condition.variables();
        let workloads: Vec<VarWorkload> = scenario
            .workloads
            .iter()
            .filter(|w| vars.contains(&w.var))
            .map(|w| VarWorkload {
                var: w.var,
                updates: w.updates,
                period: w.period,
                offset: w.offset,
                model: w.values.build(),
            })
            .collect();
        for v in &vars {
            assert!(
                workloads.iter().any(|w| w.var == *v),
                "condition {ci} uses variable {v} with no shared workload"
            );
        }
        let single = Scenario {
            condition: Arc::clone(condition),
            replicas: scenario.replicas,
            workloads,
            front_loss: vec![scenario.front_loss.clone()],
            front_delay: vec![scenario.front_delay.clone()],
            back_delay: vec![scenario.back_delay.clone()],
            outages: vec![],
            ad_outages: vec![],
            seed: scenario.seed,
            link_salt: ci as u64 + 1,
        };
        let mut result = run(single);
        // Tag every alert with the condition's id.
        let cond_id = CondId::new(ci as u32);
        for alerts in result.ce_outputs.iter_mut() {
            for a in alerts.iter_mut() {
                a.cond = cond_id;
            }
        }
        for (ai, a) in result.arrivals.iter_mut().enumerate() {
            a.cond = cond_id;
            tagged.push((result.arrival_times[ai].1, ci as u32, ai));
        }
        per_condition.push(result);
    }

    // Merge by arrival time; equal times break by condition index then
    // stream position (deterministic). The clone is an `Arc` bump on
    // the alert's shared snapshot, not a payload copy.
    tagged.sort_unstable();
    let arrivals = tagged
        .into_iter()
        .map(|(_, ci, ai)| per_condition[ci as usize].arrivals[ai].clone())
        .collect();
    MultiCondResult { per_condition, arrivals }
}

/// The hosted CE group's subscription: a pseudo-condition carrying the
/// union of the monitored variables. It drives the engine's DM and
/// front-link machinery to produce per-replica input streams and never
/// fires itself.
#[derive(Debug)]
struct Subscription {
    vars: Vec<VarId>,
}

impl Condition for Subscription {
    fn name(&self) -> String {
        "hosted-subscription".to_owned()
    }
    fn variables(&self) -> Vec<VarId> {
        self.vars.clone()
    }
    fn degree(&self, var: VarId) -> usize {
        usize::from(self.vars.binary_search(&var).is_ok())
    }
    fn triggering(&self) -> Triggering {
        Triggering::Conservative
    }
    fn eval(&self, _h: &HistorySet) -> bool {
        false
    }
}

/// Result of a hosted multi-condition run ([`run_hosted`]).
#[derive(Debug, Clone)]
pub struct HostedResult {
    /// Every update emitted by the shared DMs, in emission order.
    pub emitted: Vec<Update>,
    /// Per replica: the updates its CE incorporated, in arrival order —
    /// one stream per replica, shared by all hosted conditions.
    pub inputs: Vec<Vec<Update>>,
    /// Per replica: the alerts its sharded registry emitted over the
    /// input stream, in emission order (condition `i` carries
    /// `CondId::new(i)`).
    pub per_replica: Vec<Vec<Alert>>,
    /// Per replica: registry ingestion counters.
    pub stats: Vec<RegistryStats>,
}

/// Runs a multi-condition scenario in the *hosted* deployment: one
/// replicated CE group hosts every condition in a sharded
/// [`ConditionRegistry`](rcm_core::ConditionRegistry), instead of
/// Appendix D's one CE group per condition ([`run_multi`]).
///
/// The difference is observable: hosted conditions share each replica's
/// front links (one subscription on the variable union, `link_salt` 0),
/// so all conditions on a replica see the *same* loss pattern, while
/// [`run_multi`] gives every condition independent links. Within a
/// replica the registry is byte-identical to independent per-condition
/// evaluators fed that replica's stream, for any shard count and any
/// worker-thread count ([`ShardedRegistry`]'s contract).
///
/// # Panics
///
/// Panics if a condition uses a variable with no shared workload, if
/// `shards` is zero, or propagates the engine's validation panics.
pub fn run_hosted(scenario: &MultiCondScenario, shards: usize) -> HostedResult {
    let mut vars: Vec<VarId> = scenario.workloads.iter().map(|w| w.var).collect();
    vars.sort_unstable();
    vars.dedup();
    for (ci, c) in scenario.conditions.iter().enumerate() {
        for v in c.variables() {
            assert!(
                vars.binary_search(&v).is_ok(),
                "condition {ci} uses variable {v} with no shared workload"
            );
        }
    }
    let workloads: Vec<VarWorkload> = scenario
        .workloads
        .iter()
        .map(|w| VarWorkload {
            var: w.var,
            updates: w.updates,
            period: w.period,
            offset: w.offset,
            model: w.values.build(),
        })
        .collect();
    let probe = Scenario {
        condition: Arc::new(Subscription { vars }),
        replicas: scenario.replicas,
        workloads,
        front_loss: vec![scenario.front_loss.clone()],
        front_delay: vec![scenario.front_delay.clone()],
        back_delay: vec![scenario.back_delay.clone()],
        outages: vec![],
        ad_outages: vec![],
        seed: scenario.seed,
        link_salt: 0,
    };
    let probe_run = run(probe);

    let mut per_replica = Vec::with_capacity(scenario.replicas);
    let mut stats = Vec::with_capacity(scenario.replicas);
    for (ce, stream) in probe_run.inputs.iter().enumerate() {
        let mut reg = ShardedRegistry::from_conditions(
            CeId::new(ce as u32),
            scenario.conditions.iter().map(Arc::clone),
            shards,
        );
        let mut alerts = Vec::new();
        reg.ingest_batch(stream, &mut alerts);
        stats.push(reg.stats());
        per_replica.push(alerts);
    }
    HostedResult { emitted: probe_run.emitted, inputs: probe_run.inputs, per_replica, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::ad::{apply_filter, Ad4, PerCondition};
    use rcm_core::condition::{Cmp, DeltaRise, Threshold};
    use rcm_props::{check_consistent_single, check_ordered};

    fn x() -> VarId {
        VarId::new(0)
    }

    fn scenario(seed: u64) -> MultiCondScenario {
        MultiCondScenario {
            conditions: vec![
                Arc::new(Threshold::new(x(), Cmp::Gt, 110.0)),
                Arc::new(DeltaRise::new(x(), 15.0)),
            ],
            replicas: 2,
            workloads: vec![SharedWorkload {
                var: x(),
                updates: 30,
                period: 10,
                offset: 0,
                values: ValueSpec::RandomWalk { start: 100.0, step: 25.0, lo: 0.0, hi: 200.0 },
            }],
            front_loss: LossSpec::Bernoulli(0.2),
            front_delay: DelaySpec::Uniform(0, 3),
            back_delay: DelaySpec::Uniform(0, 20),
            seed,
        }
    }

    #[test]
    fn conditions_observe_identical_dm_values() {
        let r = run_multi(&scenario(5));
        assert_eq!(r.per_condition.len(), 2);
        // Same emitted stream for both conditions (shared DM)…
        assert_eq!(r.per_condition[0].emitted, r.per_condition[1].emitted);
        // …but independent links: received sets generally differ.
        assert_ne!(r.per_condition[0].inputs, r.per_condition[1].inputs);
    }

    #[test]
    fn merged_arrivals_preserve_time_order_and_tags() {
        let r = run_multi(&scenario(6));
        let total: usize = r.per_condition.iter().map(|p| p.arrivals.len()).sum();
        assert_eq!(r.arrivals.len(), total);
        let c0 = r.arrivals.iter().filter(|a| a.cond == CondId::new(0)).count();
        let c1 = r.arrivals.iter().filter(|a| a.cond == CondId::new(1)).count();
        assert_eq!(c0, r.per_condition[0].arrivals.len());
        assert_eq!(c1, r.per_condition[1].arrivals.len());
    }

    #[test]
    fn per_condition_filtering_keeps_per_stream_guarantees() {
        for seed in 0..5u64 {
            let sc = scenario(seed);
            let r = run_multi(&sc);
            let mut ad = PerCondition::new(|_c| Ad4::new(x()));
            let displayed = apply_filter(&mut ad, &r.arrivals);
            for (ci, cond) in sc.conditions.iter().enumerate() {
                let stream = MultiCondResult::stream_of(&displayed, ci as u32);
                assert!(check_ordered(&stream, &[x()]).ok, "seed {seed} condition {ci} unordered");
                let cons = check_consistent_single(cond, &r.per_condition[ci].inputs, &stream);
                assert!(cons.ok, "seed {seed} condition {ci}: {:?}", cons.conflict);
            }
        }
    }

    #[test]
    fn determinism() {
        let a = run_multi(&scenario(9));
        let b = run_multi(&scenario(9));
        assert_eq!(a.arrivals, b.arrivals);
    }

    #[test]
    #[should_panic(expected = "no shared workload")]
    fn missing_workload_rejected() {
        let mut sc = scenario(1);
        sc.conditions.push(Arc::new(Threshold::new(VarId::new(9), Cmp::Gt, 0.0)));
        run_multi(&sc);
    }

    #[test]
    fn hosted_matches_independent_evaluators_per_replica() {
        use rcm_core::{CeId, Evaluator};
        let sc = scenario(21);
        let r = run_hosted(&sc, 2);
        assert_eq!(r.inputs.len(), sc.replicas);
        assert_eq!(r.per_replica.len(), sc.replicas);
        assert!(r.per_replica.iter().any(|a| !a.is_empty()), "expected hosted alerts");
        for ce in 0..sc.replicas {
            let mut evs: Vec<Evaluator<Arc<dyn Condition>>> = sc
                .conditions
                .iter()
                .enumerate()
                .map(|(ci, c)| {
                    Evaluator::with_ids(Arc::clone(c), CondId::new(ci as u32), CeId::new(ce as u32))
                })
                .collect();
            let mut want = Vec::new();
            for &u in &r.inputs[ce] {
                for (ci, ev) in evs.iter_mut().enumerate() {
                    if sc.conditions[ci].variables().contains(&u.var) {
                        if let Ok(Some(a)) = ev.try_ingest(u) {
                            want.push(a);
                        }
                    }
                }
            }
            assert_eq!(r.per_replica[ce], want);
            for (g, w) in r.per_replica[ce].iter().zip(&want) {
                assert_eq!(g.id, w.id);
                assert_eq!(g.snapshot[..], w.snapshot[..]);
            }
        }
    }

    #[test]
    fn hosted_is_invariant_to_shards_and_threads() {
        use crate::par::with_threads;
        let sc = scenario(22);
        let base = run_hosted(&sc, 1);
        for shards in [2, 3, 8] {
            let r = with_threads(if shards == 3 { 2 } else { 4 }, || run_hosted(&sc, shards));
            assert_eq!(r.inputs, base.inputs, "shards = {shards}");
            assert_eq!(r.per_replica, base.per_replica, "shards = {shards}");
        }
    }

    #[test]
    fn hosted_replicas_share_one_loss_pattern() {
        // All conditions on a replica see the same input stream — the
        // defining difference from `run_multi`'s independent links.
        let sc = scenario(23);
        let r = run_hosted(&sc, 2);
        assert_eq!(r.inputs.len(), 2);
        // The shared stream is the only source: per-replica alerts for
        // both conditions reference seqnos from that replica's inputs.
        for ce in 0..2 {
            let seqnos: Vec<u64> = r.inputs[ce].iter().map(|u| u.seqno.get()).collect();
            for a in &r.per_replica[ce] {
                assert!(seqnos.contains(&a.seqno(x()).unwrap().get()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "no shared workload")]
    fn hosted_missing_workload_rejected() {
        let mut sc = scenario(1);
        sc.conditions.push(Arc::new(Threshold::new(VarId::new(9), Cmp::Gt, 0.0)));
        run_hosted(&sc, 1);
    }
}
