//! Rendering of reproduced property matrices.

use serde::{Deserialize, Serialize};

/// One property cell of a reproduced table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// The paper's claim: `Some(true)` = guaranteed (√),
    /// `Some(false)` = not guaranteed (✗), `None` = no claim.
    pub expected: Option<bool>,
    /// Violations observed across the Monte-Carlo runs.
    pub violations: u64,
    /// Runs executed.
    pub runs: u64,
    /// Seed of the first violating run, for replay.
    pub first_seed: Option<u64>,
}

impl MatrixCell {
    /// Measured verdict: guaranteed-so-far (no violation found).
    pub fn measured_ok(&self) -> bool {
        self.violations == 0
    }

    /// Whether the measurement agrees with the paper's claim: a √ cell
    /// must have zero violations, an ✗ cell must have at least one
    /// (the Monte Carlo found the paper's counterexample class).
    pub fn agrees(&self) -> Option<bool> {
        self.expected.map(|e| e == self.measured_ok())
    }

    fn render(&self) -> String {
        let mark = if self.measured_ok() { "√" } else { "✗" };
        let expect = match self.expected {
            Some(true) => "√",
            Some(false) => "✗",
            None => "·",
        };
        let agree = match self.agrees() {
            Some(true) => "",
            Some(false) => " !!",
            None => "",
        };
        format!("{expect}/{mark} ({}/{}){agree}", self.violations, self.runs)
    }
}

/// One scenario row of a reproduced table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixRow {
    /// Scenario label ("Lossless", "Lossy His. Aggr.", …).
    pub scenario: String,
    /// Orderedness, completeness, consistency cells.
    pub cells: [MatrixCell; 3],
}

/// A reproduced property table (one of the paper's Tables 1–3 or their
/// prose variants).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matrix {
    /// Table title.
    pub title: String,
    /// The AD algorithm the table is for.
    pub filter: String,
    /// Rows in the paper's order.
    pub rows: Vec<MatrixRow>,
}

impl Matrix {
    /// Whether every cell's measurement agrees with the paper's claim.
    pub fn matches_paper(&self) -> bool {
        self.rows.iter().flat_map(|r| r.cells.iter()).all(|c| c.agrees().unwrap_or(true))
    }

    /// Renders the table as aligned ASCII art. Cells read
    /// `claimed/measured (violations/runs)`; a trailing `!!` flags a
    /// disagreement with the paper.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} — Algorithm {}\n", self.title, self.filter));
        let headers = ["Scenario", "Ordered", "Complete", "Consistent"];
        let mut widths = [
            headers[0].len().max(self.rows.iter().map(|r| r.scenario.len()).max().unwrap_or(0)),
            headers[1].len(),
            headers[2].len(),
            headers[3].len(),
        ];
        let rendered: Vec<[String; 3]> = self
            .rows
            .iter()
            .map(|r| [r.cells[0].render(), r.cells[1].render(), r.cells[2].render()])
            .collect();
        for cells in &rendered {
            for (i, c) in cells.iter().enumerate() {
                widths[i + 1] = widths[i + 1].max(c.chars().count());
            }
        }
        out.push_str(&format!(
            "{:<w0$}  {:<w1$}  {:<w2$}  {:<w3$}\n",
            headers[0],
            headers[1],
            headers[2],
            headers[3],
            w0 = widths[0],
            w1 = widths[1],
            w2 = widths[2],
            w3 = widths[3],
        ));
        for (row, cells) in self.rows.iter().zip(&rendered) {
            out.push_str(&format!(
                "{:<w0$}  {:<w1$}  {:<w2$}  {:<w3$}\n",
                row.scenario,
                cells[0],
                cells[1],
                cells[2],
                w0 = widths[0],
                w1 = widths[1],
                w2 = widths[2],
                w3 = widths[3],
            ));
        }
        out
    }

    /// Serializes the matrix as pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics in practice; serialization of plain data cannot
    /// fail.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("matrix serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(expected: Option<bool>, violations: u64) -> MatrixCell {
        MatrixCell { expected, violations, runs: 10, first_seed: (violations > 0).then_some(42) }
    }

    #[test]
    fn agreement_logic() {
        assert_eq!(cell(Some(true), 0).agrees(), Some(true));
        assert_eq!(cell(Some(true), 3).agrees(), Some(false));
        assert_eq!(cell(Some(false), 3).agrees(), Some(true));
        assert_eq!(cell(Some(false), 0).agrees(), Some(false));
        assert_eq!(cell(None, 1).agrees(), None);
    }

    #[test]
    fn render_flags_disagreements() {
        let m = Matrix {
            title: "Test".into(),
            filter: "AD-1".into(),
            rows: vec![MatrixRow {
                scenario: "Lossless".into(),
                cells: [cell(Some(true), 0), cell(Some(false), 0), cell(None, 2)],
            }],
        };
        let s = m.render();
        assert!(s.contains("√/√ (0/10)"));
        assert!(s.contains("✗/√ (0/10) !!"));
        assert!(s.contains("·/✗ (2/10)"));
        assert!(!m.matches_paper());
    }

    #[test]
    fn json_roundtrip() {
        let m = Matrix {
            title: "T".into(),
            filter: "AD-2".into(),
            rows: vec![MatrixRow {
                scenario: "x".into(),
                cells: [cell(Some(true), 0), cell(Some(true), 0), cell(Some(true), 0)],
            }],
        };
        let back: Matrix = serde_json::from_str(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert!(back.matches_paper());
    }
}
