//! The motivating availability experiment (paper §1, Figure 1).
//!
//! Replication exists "to reduce the probability that an important
//! alert is missed". This module quantifies that: a threshold condition
//! is monitored by 1–N replicas whose Condition Evaluators suffer
//! random outages (and, optionally, lossy front links); we measure the
//! fraction of *true* alerts (those the always-up non-replicated system
//! would deliver) that never reach the user.
//!
//! With independent outages of downtime fraction `d`, a replicated
//! system misses an alert only when every replica misses it, so the
//! missed fraction should fall roughly like `d^R` — the experiment
//! reproduces that shape.

use std::collections::HashSet;
use std::sync::Arc;

use rcm_core::ad::{apply_filter, Ad1};
use rcm_core::condition::{Cmp, Threshold};
use rcm_core::{transduce, Alert, CeId, VarId};
use serde::{Deserialize, Serialize};

use crate::engine::run;
use crate::montecarlo::mix;
use crate::scenario::{DelaySpec, LossSpec, Outage, Scenario, VarWorkload};
use crate::workload::Spikes;

/// Parameters of one availability sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityConfig {
    /// Number of CE replicas.
    pub replicas: usize,
    /// Fraction of time each replica is down (0.0–0.9).
    pub downtime: f64,
    /// Per-message front-link loss probability.
    pub link_loss: f64,
    /// Updates emitted by the DM per run.
    pub updates: u64,
    /// Independent runs to average over.
    pub runs: u64,
    /// Base seed.
    pub seed: u64,
}

/// Result of one availability sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityPoint {
    /// The configuration measured.
    pub config: AvailabilityConfig,
    /// True alerts across all runs (what an always-up, lossless
    /// non-replicated system would deliver).
    pub true_alerts: u64,
    /// True alerts that reached the user.
    pub delivered: u64,
}

impl AvailabilityPoint {
    /// Fraction of true alerts the user never saw.
    pub fn missed_fraction(&self) -> f64 {
        if self.true_alerts == 0 {
            0.0
        } else {
            1.0 - self.delivered as f64 / self.true_alerts as f64
        }
    }
}

/// Builds the outage schedule for one replica: alternating up/down
/// periods hitting the requested downtime fraction, phase-shifted by
/// the seed so replicas fail independently.
fn outages_for(ce: usize, downtime: f64, horizon: u64, seed: u64) -> Vec<Outage> {
    if downtime <= 0.0 {
        return vec![];
    }
    let cycle = 200u64; // ticks per up/down cycle
    let down = (cycle as f64 * downtime).round() as u64;
    let phase = mix(seed ^ (ce as u64) << 8) % cycle;
    let mut out = Vec::new();
    let mut t = phase;
    while t < horizon {
        out.push(Outage { ce, from: t, to: (t + down).min(horizon) });
        t += cycle;
    }
    out
}

/// Measures one sweep point.
///
/// The monitored condition is the reactor threshold `c1`
/// (non-historical, so every alert corresponds to one update and "the
/// user misses alert `i`" is well defined as: no replica delivered an
/// alert triggered by update `i`).
pub fn measure(config: AvailabilityConfig) -> AvailabilityPoint {
    let x = VarId::new(0);
    let condition = Arc::new(Threshold::new(x, Cmp::Gt, 500.0));
    let mut true_alerts = 0u64;
    let mut delivered = 0u64;
    for i in 0..config.runs {
        let seed = config.seed.wrapping_add(i.wrapping_mul(0x5851_f42d));
        let horizon = config.updates * 10;
        let outages: Vec<Outage> = (0..config.replicas)
            .flat_map(|ce| outages_for(ce, config.downtime, horizon, seed))
            .collect();
        let scenario = Scenario {
            condition: condition.clone(),
            replicas: config.replicas,
            workloads: vec![VarWorkload {
                var: x,
                updates: config.updates,
                period: 10,
                offset: 0,
                // Baseline 100 with ~15% spikes to 1100: crisp alerts.
                model: Box::new(Spikes::new(100.0, 5.0, 1000.0, 0.15)),
            }],
            front_loss: vec![LossSpec::Bernoulli(config.link_loss)],
            front_delay: vec![DelaySpec::Constant(1)],
            back_delay: vec![DelaySpec::Constant(1)],
            outages,
            ad_outages: vec![],
            link_salt: 0,
            seed,
        };
        let result = run(scenario);
        // Ground truth: T over the full emitted stream.
        let truth = transduce(&*condition, CeId::new(u32::MAX), &result.emitted);
        let displayed = apply_filter(&mut Ad1::new(), &result.arrivals);
        let shown: HashSet<&Alert> = displayed.iter().collect();
        true_alerts += truth.len() as u64;
        delivered += truth.iter().filter(|a| shown.contains(*a)).count() as u64;
    }
    AvailabilityPoint { config, true_alerts, delivered }
}

/// Sweeps missed-alert fraction over replica counts and downtime
/// fractions (the Figure 1 motivation experiment).
pub fn sweep(
    replica_counts: &[usize],
    downtimes: &[f64],
    link_loss: f64,
    runs: u64,
    seed: u64,
) -> Vec<AvailabilityPoint> {
    let mut out = Vec::new();
    for &replicas in replica_counts {
        for &downtime in downtimes {
            out.push(measure(AvailabilityConfig {
                replicas,
                downtime,
                link_loss,
                updates: 60,
                runs,
                seed,
            }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(replicas: usize, downtime: f64) -> AvailabilityConfig {
        AvailabilityConfig { replicas, downtime, link_loss: 0.0, updates: 60, runs: 12, seed: 7 }
    }

    #[test]
    fn no_failures_no_misses() {
        let p = measure(cfg(1, 0.0));
        assert!(p.true_alerts > 0);
        assert_eq!(p.missed_fraction(), 0.0);
    }

    #[test]
    fn replication_reduces_missed_alerts() {
        let single = measure(cfg(1, 0.4));
        let double = measure(cfg(2, 0.4));
        let triple = measure(cfg(3, 0.4));
        assert!(single.missed_fraction() > 0.05, "single: {}", single.missed_fraction());
        assert!(
            double.missed_fraction() < single.missed_fraction(),
            "double {} !< single {}",
            double.missed_fraction(),
            single.missed_fraction()
        );
        assert!(triple.missed_fraction() <= double.missed_fraction() + 0.02);
    }

    #[test]
    fn link_loss_also_causes_misses_in_non_replicated() {
        let lossy = measure(AvailabilityConfig { link_loss: 0.3, ..cfg(1, 0.0) });
        assert!(lossy.missed_fraction() > 0.1);
        let replicated = measure(AvailabilityConfig { link_loss: 0.3, ..cfg(3, 0.0) });
        assert!(replicated.missed_fraction() < lossy.missed_fraction());
    }

    #[test]
    fn sweep_covers_grid() {
        let points = sweep(&[1, 2], &[0.0, 0.3], 0.0, 4, 1);
        assert_eq!(points.len(), 4);
    }

    #[test]
    fn missed_fraction_edge_cases() {
        let p = AvailabilityPoint { config: cfg(1, 0.0), true_alerts: 0, delivered: 0 };
        assert_eq!(p.missed_fraction(), 0.0);
    }
}
