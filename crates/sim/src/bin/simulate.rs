//! `simulate` — run a replicated-monitoring scenario from a JSON spec.
//!
//! ```text
//! cargo run -p rcm-sim --bin simulate -- scenario.json [--filter ad1..ad6] [--json]
//! cat scenario.json | cargo run -p rcm-sim --bin simulate -- - --filter ad4
//! ```
//!
//! The spec format is [`rcm_sim::ScenarioSpec`]; see its documentation
//! for an example. The tool runs the scenario, applies the chosen AD
//! algorithm, prints the displayed alerts, and reports the paper's
//! three properties for the execution.

use std::io::Read;
use std::process::ExitCode;

use rcm_core::ad::apply_filter;
use rcm_core::condition::Condition;
use rcm_props::{check_complete_single, check_consistent_single, check_ordered};
use rcm_sim::montecarlo::FilterKind;
use rcm_sim::{run, ScenarioSpec};

fn usage() -> ExitCode {
    eprintln!(
        "usage: simulate <scenario.json | -> [--filter pass|ad1|ad2|ad3|ad4|ad5|ad6] [--json]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut filter = FilterKind::Ad1;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--filter" => {
                let Some(name) = args.next() else { return usage() };
                filter = match name.as_str() {
                    "pass" => FilterKind::PassThrough,
                    "ad1" => FilterKind::Ad1,
                    "ad2" => FilterKind::Ad2,
                    "ad3" => FilterKind::Ad3,
                    "ad4" => FilterKind::Ad4,
                    "ad5" => FilterKind::Ad5,
                    "ad6" => FilterKind::Ad6,
                    other => {
                        eprintln!("unknown filter '{other}'");
                        return usage();
                    }
                };
            }
            "--json" => json = true,
            _ if path.is_none() => path = Some(arg),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };

    let text = if path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("error: cannot read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let spec: ScenarioSpec = match serde_json::from_str(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: bad scenario spec: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (scenario, registry) = match spec.build() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let condition = scenario.condition.clone();
    let vars = condition.variables();
    let result = run(scenario);
    let mut ad = filter.build(&vars);
    let displayed = apply_filter(&mut *ad, &result.arrivals);

    let ordered = check_ordered(&displayed, &vars).ok;
    let (complete, consistent) = if vars.len() == 1 {
        (
            Some(check_complete_single(&condition, &result.inputs, &displayed).ok),
            Some(check_consistent_single(&condition, &result.inputs, &displayed).ok),
        )
    } else {
        // Multi-variable completeness enumeration can be exponential on
        // big traces; report orderedness only unless the trace is small.
        let total: usize = rcm_props::merge_per_var(&result.inputs).values().map(Vec::len).sum();
        if total <= rcm_props::MULTI_ENUM_CAP {
            (
                Some(rcm_props::check_complete_multi(&condition, &result.inputs, &displayed).ok),
                Some(rcm_props::check_consistent_multi(&condition, &result.inputs, &displayed).ok),
            )
        } else {
            (
                None,
                Some(rcm_props::check_consistent_multi(&condition, &result.inputs, &displayed).ok),
            )
        }
    };

    if json {
        let out = serde_json::json!({
            "condition": condition.name(),
            "filter": filter.label(),
            "stats": {
                "updates_emitted": result.stats.updates_emitted,
                "updates_lost": result.stats.updates_lost,
                "updates_reordered": result.stats.updates_reordered,
                "alerts_emitted": result.stats.alerts_emitted,
                "alerts_arrived": result.arrivals.len(),
                "alerts_displayed": displayed.len(),
                "mean_alert_latency": result.mean_alert_latency(),
            },
            "properties": {
                "ordered": ordered,
                "complete": complete,
                "consistent": consistent,
            },
            "displayed": displayed,
        });
        println!("{}", serde_json::to_string_pretty(&out).expect("serializable"));
        return ExitCode::SUCCESS;
    }

    println!("condition: {}", condition.name());
    println!("filter:    {}", filter.label());
    println!(
        "updates:   {} emitted, {} lost, {} reordered",
        result.stats.updates_emitted, result.stats.updates_lost, result.stats.updates_reordered
    );
    println!(
        "alerts:    {} emitted, {} arrived, {} displayed",
        result.stats.alerts_emitted,
        result.arrivals.len(),
        displayed.len()
    );
    println!("\ndisplayed alerts:");
    for a in &displayed {
        let heads: Vec<String> = a
            .fingerprint
            .iter()
            .map(|(v, seqnos)| {
                let name = registry.name(v).unwrap_or("?");
                format!("{name}@{}", seqnos[0])
            })
            .collect();
        let values: Vec<String> =
            a.snapshot.iter().take(2).map(|u| format!("{}", u.value)).collect();
        println!("  {} (values: {})", heads.join(", "), values.join(", "));
    }
    let fmt = |o: Option<bool>| match o {
        Some(true) => "yes",
        Some(false) => "NO",
        None => "skipped (trace too large)",
    };
    println!("\nproperties of this execution:");
    println!("  ordered:    {}", if ordered { "yes" } else { "NO" });
    println!("  complete:   {}", fmt(complete));
    println!("  consistent: {}", fmt(consistent));
    ExitCode::SUCCESS
}
