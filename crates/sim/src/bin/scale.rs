//! `scale` — the evented engine's link-count gauntlet.
//!
//! ```text
//! cargo run --release -p rcm-sim --bin scale -- \
//!     --front 2000 --back 100 --active 100 --updates 20 --json
//! ```
//!
//! One process, one readiness loop: `--front N` loopback UDP front
//! links feed a single evented CE ingress, and `--back M` TCP back
//! links feed a single evented AD listener. Only `--active A` of the
//! front links carry traffic (`--updates K` each); the rest sit idle
//! until their Fin — the paper's "numerous update streams" regime,
//! where the engine's job is to hold thousands of mostly-quiet links
//! without a thread or a 64 KiB buffer per socket.
//!
//! Every delivered update becomes one alert fanned out on *all* M back
//! links, so the AD sees each alert M times and its AD-1 filter must
//! display it **exactly once**. The run fails (nonzero exit) if:
//!
//! * any of the A×K emitted alerts is displayed zero or multiple times,
//! * the listener heard anything other than emitted × M alerts,
//! * any link surfaced a decode error, or
//! * the run overshot `--budget-ms` of wall clock.
//!
//! `--workers W` routes the CE body through the shard-parallel
//! evaluation pipeline (one always-firing threshold per active
//! variable, sharded `cond_id % W`, merged back into stream order
//! before the fan-out), so the gauntlet also exercises pipelined
//! evaluation under real sockets; the JSON report then carries the
//! pipeline's shed counter and ingest→emit latency percentiles.
//!
//! `--tree DxF` (e.g. `--tree 3x8`: depth 3, fanout 8) swaps the flat
//! CE body for an aggregation tree: the evented loop still owns every
//! socket (front ingress, back links, AD listener), but delivered
//! updates route through `F^(D-1)` leaf CEs that emit derived verdict
//! streams up `D-2` relay tiers to a root CE, whose re-stamped alerts
//! fan out on the back links. The exactly-once assertion is unchanged
//! and now spans the whole tree: every update must surface at the
//! root-fed AD exactly once. `--workers W` maps to worker shards
//! inside each leaf registry.
//!
//! `--json` adds the capacity evidence CI archives: peak process FDs
//! (read from `/proc/self/fd`) and resident-set delta per link, plus
//! the engine's wakeup/timer/spurious counters and (in tree mode) the
//! tree's routing/forwarding counters. CI runs 2,000 front links in
//! the PR gauntlet (`scale-smoke`) plus a `tree-scale-smoke` at
//! `--tree 3x4`; the 10k-link and `--tree 3x8` soaks are nightly.

use std::process::ExitCode;
use std::time::Instant;

use rcm_core::ad::{Ad1, AlertFilter};
use rcm_core::condition::{Cmp, Condition, Threshold};
use rcm_core::{
    Alert, AlertId, CeId, CondId, HistoryFingerprint, LatencyHistogram, SeqNo, Update, VarId,
};
use rcm_net::Backoff;
use rcm_runtime::{
    AlertDrain, EvalPipeline, PipelineOptions, TreeOptions, TreePlan, TreeStats, TreeTopology,
};
use rcm_sync::atomic::{AtomicU64, Ordering};
use rcm_sync::Arc;
use rcm_transport::{BackLinkSpec, EventLoop, EventedBackLink, UdpFrontLink};

use std::time::Duration;

struct Options {
    front: usize,
    back: usize,
    active: usize,
    updates: u64,
    budget: Duration,
    workers: usize,
    /// `Some((depth, fanout))` routes evaluation through an
    /// aggregation tree instead of the flat CE body.
    tree: Option<(usize, usize)>,
    json: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: scale [--front N] [--back M] [--active A] [--updates K] \
         [--budget-ms MS] [--workers W] [--tree DxF] [--json]"
    );
    ExitCode::FAILURE
}

/// Parses `--tree DxF` (e.g. `3x8`): depth ≥ 2 levels of CEs counting
/// the root, fanout ≥ 1 children per interior node.
fn parse_tree(spec: &str) -> Option<(usize, usize)> {
    let (d, f) = spec.split_once(['x', 'X'])?;
    let depth: usize = d.parse().ok()?;
    let fanout: usize = f.parse().ok()?;
    if depth < 2 || fanout < 1 {
        return None;
    }
    Some((depth, fanout))
}

fn parse_args() -> Option<Options> {
    let mut opts = Options {
        front: 2000,
        back: 100,
        active: 100,
        updates: 20,
        budget: Duration::from_secs(120),
        workers: 0,
        tree: None,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--front" => opts.front = args.next()?.parse().ok()?,
            "--back" => opts.back = args.next()?.parse().ok()?,
            "--active" => opts.active = args.next()?.parse().ok()?,
            "--updates" => opts.updates = args.next()?.parse().ok()?,
            "--budget-ms" => opts.budget = Duration::from_millis(args.next()?.parse().ok()?),
            "--workers" => opts.workers = args.next()?.parse().ok()?,
            "--tree" => opts.tree = Some(parse_tree(&args.next()?)?),
            "--json" => opts.json = true,
            _ => return None,
        }
    }
    opts.active = opts.active.min(opts.front);
    Some(opts)
}

/// Pipelined CE body's sink: fans every merged alert out on all M back
/// links (the same fan-out the inline body does) and counts emissions.
struct FanoutDrain {
    backs: Vec<EventedBackLink>,
    emitted: Arc<AtomicU64>,
}

impl AlertDrain for FanoutDrain {
    fn alerts(&mut self, alerts: Vec<Alert>) {
        for alert in alerts {
            for back in &mut self.backs {
                back.send_alert(alert.clone());
            }
            self.emitted.fetch_add(1, Ordering::Relaxed);
        }
    }
    fn end_of_stream(&mut self) {
        for back in &mut self.backs {
            back.finish();
        }
    }
}

/// Open file descriptors of this process (Linux; 0 elsewhere).
fn open_fds() -> u64 {
    std::fs::read_dir("/proc/self/fd").map(|d| d.count() as u64).unwrap_or(0)
}

/// Resident set size in bytes (Linux; 0 elsewhere).
fn rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn main() -> ExitCode {
    let Some(opts) = parse_args() else { return usage() };
    let started = Instant::now();
    let rss_before = rss_bytes();

    // The node under test: one loop holding the CE ingress, the AD
    // listener, and every back link.
    let ce_sock = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind CE socket");
    let ce_addr = ce_sock.local_addr().expect("CE addr");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind AD listener");
    let ad_addr = listener.local_addr().expect("AD addr");

    // The wall-clock budget is the gauntlet's only backstop: the idle
    // timeouts must outlast any legitimately quiet phase (at 10k links
    // the Fin handshake alone is tens of seconds of listener silence),
    // or the backstop severs a healthy pipeline mid-run.
    let idle = opts.budget;
    let mut el = EventLoop::new().expect("event loop");
    let engine_counters = el.counters();
    let (update_tx, update_rx) = rcm_sync::chan::unbounded();
    let ingress = el
        .add_front_ingress(ce_sock, opts.front, idle, move |u| {
            let _ = update_tx.send(u);
        })
        .expect("register ingress");
    let (alert_tx, alert_rx) = rcm_sync::chan::unbounded();
    let ad = el
        .add_alert_listener(listener, opts.back, idle, move |a| {
            let _ = alert_tx.send(a);
        })
        .expect("register listener");
    let mut backs = Vec::with_capacity(opts.back);
    let mut back_stats = Vec::with_capacity(opts.back);
    for j in 0..opts.back {
        let backoff = Backoff::new(Duration::from_micros(200), Duration::from_millis(20), j as u64);
        let back = el
            .add_back_link(BackLinkSpec::new(ad_addr, j as u32, backoff))
            .expect("back link connects");
        back_stats.push(back.stats_handle());
        backs.push(back);
    }
    let engine = rcm_sync::thread::spawn(move || el.run());

    // The DM fleet: every front link exists (and owns an FD); only the
    // active prefix ever sends an update.
    let mut fronts = Vec::with_capacity(opts.front);
    for i in 0..opts.front {
        fronts.push(UdpFrontLink::connect(ce_addr, i as u32).expect("front link connects"));
    }
    let peak_fds = open_fds();
    let rss_after_links = rss_bytes();

    // Pace sends per round: the gauntlet measures link *capacity* and
    // exactly-once display, not the kernel's UDP receive-buffer depth —
    // an unpaced blast of active×updates datagrams into one socket
    // would overflow it and read as loss.
    for k in 1..=opts.updates {
        for (i, link) in fronts.iter_mut().take(opts.active).enumerate() {
            let _ = link.send_update(Update::new(VarId::new(i as u32), k, k as f64));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    for link in &mut fronts {
        link.finish(8);
    }

    // CE body: each delivered update becomes one alert, fanned out on
    // every back link. The channel closes when the ingress saw all N
    // Fins (or its idle backstop fired). With `--workers W` the same
    // body runs through the shard-parallel evaluation pipeline: one
    // always-firing threshold per active variable, sharded
    // `cond_id % W` across worker rings and merged back into stream
    // order before the fan-out — fed on the blocking (never-shedding)
    // path, because the gauntlet asserts exactly-once display.
    let latency = Arc::new(LatencyHistogram::new());
    let updates_shed = Arc::new(AtomicU64::new(0));
    let emitted: u64;
    let mut tree_stats: Option<TreeStats> = None;
    if let Some((depth, fanout)) = opts.tree {
        // Drain the socket ingress to completion first: the tree
        // runtime consumes a finite stream, and the property under
        // test is exactly-once fan-in, not arrival timing. Per-var
        // seqno order survives the drain because the single ingress
        // socket delivers each link's datagrams in order.
        let mut stream = Vec::new();
        while let Ok(update) = update_rx.recv() {
            stream.push(update);
        }
        let leaves = fanout.pow((depth - 1) as u32).max(1);
        let mut plan =
            TreePlan::new(leaves).with_relay_tiers(depth.saturating_sub(2)).with_fanout(fanout);
        for i in 0..opts.active {
            let var = VarId::new(i as u32);
            plan.own(var, i % leaves);
            plan.add_condition(CondId::new(i as u32), Arc::new(Threshold::new(var, Cmp::Gt, 0.0)))
                .expect("single-variable condition lands on its owning leaf");
        }
        let tree_opts = TreeOptions {
            root_ce: CeId::new(0),
            shards_per_leaf: opts.workers.max(1),
            ..TreeOptions::default()
        };
        let report = TreeTopology::new(plan).options(tree_opts).stream(stream).run();
        for alert in &report.displayed {
            for back in &mut backs {
                back.send_alert(alert.clone());
            }
        }
        for back in &mut backs {
            back.finish();
        }
        emitted = report.displayed.len() as u64;
        tree_stats = Some(report.stats);
    } else if opts.workers == 0 {
        let mut count: u64 = 0;
        while let Ok(update) = update_rx.recv() {
            let alert = Alert::new(
                CondId::new(0),
                HistoryFingerprint::single(update.var, vec![update.seqno]),
                vec![update],
                AlertId { ce: CeId::new(0), index: count },
            );
            for back in &mut backs {
                back.send_alert(alert.clone());
            }
            count += 1;
        }
        for back in &mut backs {
            back.finish();
        }
        emitted = count;
    } else {
        let conds: Vec<Arc<dyn Condition>> = (0..opts.active)
            .map(|i| {
                Arc::new(Threshold::new(VarId::new(i as u32), Cmp::Gt, 0.0)) as Arc<dyn Condition>
            })
            .collect();
        let counter = Arc::new(AtomicU64::new(0));
        let drain = FanoutDrain { backs, emitted: Arc::clone(&counter) };
        let mut pipe = EvalPipeline::start(
            CeId::new(0),
            &conds,
            &PipelineOptions::with_workers(opts.workers),
            Box::new(drain),
            Arc::clone(&latency),
            Arc::clone(&updates_shed),
        );
        while let Ok(update) = update_rx.recv() {
            pipe.dispatch_wait(update);
        }
        pipe.finish();
        emitted = counter.load(Ordering::Relaxed);
    }
    engine.join().expect("loop thread");

    // AD body: AD-1 over the merged stream — every emitted alert must
    // survive exactly once.
    let mut filter = Ad1::new();
    let mut heard: u64 = 0;
    let mut displayed: u64 = 0;
    while let Ok(alert) = alert_rx.recv() {
        heard += 1;
        if filter.offer(&alert).is_deliver() {
            displayed += 1;
        }
    }

    let elapsed = started.elapsed();
    let ingress_stats = ingress.snapshot();
    let ad_stats = ad.snapshot();
    let engine_stats = engine_counters.snapshot();
    let lost_overflow: u64 = back_stats.iter().map(|s| s.snapshot().lost_overflow).sum();
    let shed: u64 = back_stats.iter().map(|s| s.snapshot().shed).sum();
    let per_link_bytes = if opts.front == 0 {
        0
    } else {
        rss_after_links.saturating_sub(rss_before) / opts.front as u64
    };

    let expected_emitted = opts.active as u64 * opts.updates;
    let mut violations: Vec<String> = Vec::new();
    if emitted != expected_emitted {
        violations.push(format!("emitted {emitted} alerts, expected {expected_emitted}"));
    }
    if displayed != emitted {
        violations.push(format!("displayed {displayed} of {emitted} alerts — not exactly-once"));
    }
    if heard != emitted * opts.back as u64 {
        violations.push(format!(
            "listener heard {heard} alerts, expected emitted × back links = {}",
            emitted * opts.back as u64
        ));
    }
    if ingress_stats.decode_errors != 0 || ad_stats.decode_errors != 0 {
        violations.push(format!(
            "decode errors on loopback (ingress {}, listener {})",
            ingress_stats.decode_errors, ad_stats.decode_errors
        ));
    }
    if lost_overflow != 0 {
        violations.push(format!("{lost_overflow} alerts lost to resend-queue overflow"));
    }
    if ingress_stats.fins != opts.front as u64 {
        violations.push(format!(
            "ingress saw {} of {} Fins (idle backstop ended the run)",
            ingress_stats.fins, opts.front
        ));
    }
    if elapsed > opts.budget {
        violations.push(format!("wall clock {elapsed:?} overshot budget {:?}", opts.budget));
    }

    if opts.json {
        let doc = serde_json::json!({
            "front_links": opts.front,
            "back_links": opts.back,
            "active_links": opts.active,
            "updates_per_active_link": opts.updates,
            "emitted": emitted,
            "displayed": displayed,
            "listener_alerts": heard,
            "fins_seen": ingress_stats.fins,
            "connections": ad_stats.connections,
            "peak_fds": peak_fds,
            "rss_delta_bytes": rss_after_links.saturating_sub(rss_before),
            "per_link_bytes": per_link_bytes,
            "shed": shed,
            "workers": opts.workers,
            "updates_shed": updates_shed.load(Ordering::Relaxed),
            "latency_p50_ns": latency.snapshot().p50_ns,
            "latency_p99_ns": latency.snapshot().p99_ns,
            "latency_p999_ns": latency.snapshot().p999_ns,
            "latency_count": latency.snapshot().count,
            "elapsed_ms": elapsed.as_millis() as u64,
            "budget_ms": opts.budget.as_millis() as u64,
            "engine": serde_json::to_value(&engine_stats).expect("engine stats serialize"),
            "tree": tree_stats.as_ref().map(|s| serde_json::json!({
                "depth": opts.tree.map_or(0, |t| t.0),
                "fanout": opts.tree.map_or(0, |t| t.1),
                "leaves": opts.tree.map_or(0, |(d, f)| f.pow((d - 1) as u32)),
                "updates_routed": s.updates_routed,
                "derived_emitted": s.derived_emitted,
                "derived_forwarded": s.derived_forwarded,
                "derived_duplicates": s.derived_duplicates,
                "root_alerts": s.root_alerts,
                "wire_frames": s.wire_frames,
                "wire_bytes": s.wire_bytes,
            })),
            "violations": violations,
        });
        println!("{}", serde_json::to_string_pretty(&doc).expect("report serializes"));
    } else {
        println!(
            "scale: {} front links ({} active × {} updates), {} back links, {} eval worker(s)",
            opts.front, opts.active, opts.updates, opts.back, opts.workers
        );
        if let (Some((depth, fanout)), Some(s)) = (opts.tree, &tree_stats) {
            println!(
                "  tree: depth {depth} fanout {fanout} ({} leaves), {} updates routed, \
                 {} derived forwarded, {} root alerts over {} wire frames",
                fanout.pow((depth - 1) as u32),
                s.updates_routed,
                s.derived_forwarded,
                s.root_alerts,
                s.wire_frames
            );
        }
        if opts.workers > 0 {
            let snap = latency.snapshot();
            println!(
                "  pipeline: {} shed, latency p50 {} ns / p99 {} ns / p999 {} ns \
                 over {} update(s)",
                updates_shed.load(Ordering::Relaxed),
                snap.p50_ns,
                snap.p99_ns,
                snap.p999_ns,
                snap.count
            );
        }
        println!(
            "  emitted {emitted}, displayed {displayed} (exactly-once), \
             listener heard {heard}"
        );
        println!(
            "  peak fds {peak_fds}, ~{per_link_bytes} B/link resident, \
             {} wakeups, {} timer fires, {elapsed:?} elapsed",
            engine_stats.wakeups, engine_stats.timer_fires
        );
        for v in &violations {
            println!("  VIOLATION: {v}");
        }
    }

    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
