//! `chaos` — randomized fault-injection gauntlet for the threaded runtime.
//!
//! ```text
//! cargo run --release -p rcm-sim --bin chaos -- [--plans N] [--seed S] [--json]
//! ```
//!
//! Unlike the discrete-event simulator (which *enumerates* adversarial
//! schedules), this harness runs the real `rcm-runtime` pipeline — OS
//! threads, channels, the wire codec — under randomized [`FaultPlan`]s:
//! CE replicas are killed and restarted with history replay, back links
//! are severed and must reconnect losslessly, front links stall and
//! (in the lossy classes) drop. After every run the displayed sequence
//! is checked against the exact property deciders in `rcm-props`.
//!
//! Each plan draws one of five classes, asserting only the properties
//! that provably hold for its configuration:
//!
//! | class | condition | front links | AD   | asserted                      |
//! |-------|-----------|-------------|------|-------------------------------|
//! | 0     | Threshold | lossless    | AD-1 | ordered, complete, consistent |
//! | 1     | DeltaRise | lossless    | AD-1 | consistent                    |
//! | 2     | Threshold | 20% loss    | AD-2 | ordered                       |
//! | 3     | DeltaRise | 20% loss    | AD-3 | consistent                    |
//! | 4     | Threshold | 20% loss    | AD-4 | ordered, consistent           |
//!
//! Class 0 is the strong case: a degree-1 condition over lossless links
//! with a full retained window means crash-recovery replay loses
//! nothing, so every property of the fault-free run must survive
//! arbitrary kills and severs. Class 1 drops completeness/orderedness
//! because a degree-2 condition loses the alert straddling a crash
//! (history is wiped; the first post-replay update has no predecessor
//! in the replica's rebuilt window when the crash lands between the
//! pair), and the AD-1 merge of gap-streams need not be ordered. The
//! lossy classes assert exactly the per-algorithm guarantees of AD-2/3/4,
//! which hold under any interleaving.
//!
//! Before the randomized sweep, one scripted availability plan kills
//! replica 0 permanently (restart budget zero) and requires every alert
//! the surviving replica emitted to be displayed. After it, one
//! loopback **socket** run on the evented engine rides along, so the
//! gauntlet's JSON carries real event-loop counters (wakeups, timer
//! fires, spurious readiness) for `cargo xtask assert-chaos` to gate
//! on.
//!
//! After the flat sweep, a **tree gauntlet** (`--tree-plans`, default
//! 10) runs the threaded aggregation-tree runtime under its own fault
//! classes and checks the root-displayed stream against a flat CE fed
//! the identical survivor stream:
//!
//! | class | topology faults            | asserted                                  |
//! |-------|----------------------------|-------------------------------------------|
//! | 0     | none (lossless)            | per-condition byte-identical, exactly-once |
//! | 1     | subtree kill + re-parent   | same, plus ≥ 1 re-parent with replay       |
//! | 2     | tier-link sever + restore  | same, plus window replay on restore        |
//! | 3     | 20% front-link loss        | per-condition byte-identical, exactly-once |
//! | 4     | leaf-replica kill          | same: survivors mask the crash             |
//!
//! Every class also asserts per-variable orderedness of the root
//! display with the exact `rcm-props` decider. Sender replay windows
//! are sized past the workload, so recovery must be *complete* — any
//! lost or duplicated alert is a violation.
//!
//! Exit status is nonzero if any property check fails or any alert is
//! lost to resend-queue overflow, so CI can gate on this binary.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use rcm_core::ad::{Ad1, Ad2, Ad3, Ad4, AlertFilter};
use rcm_core::condition::{Cmp, Condition, DeltaRise, Threshold};
use rcm_core::{Alert, CeId, CondId, ConditionRegistry, Update, VarId};
use rcm_net::{Bernoulli, LossModel, Lossless};
use rcm_props::{check_complete_single, check_consistent_single, check_ordered};
use rcm_runtime::{
    FaultPlan, MonitorSystem, RunReport, Topology, TransportReport, TreeFault, TreeOptions,
    TreePlan, TreeStats, TreeTopology, VarFeed,
};
use rcm_transport::SeqGate;

/// SplitMix64: the harness's only randomness source, so a `(seed,
/// plans)` pair names one exact gauntlet.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Everything one gauntlet run produced, for reporting.
struct PlanOutcome {
    index: usize,
    class: usize,
    updates: usize,
    replicas: usize,
    kills: u32,
    restarts: u32,
    severs: u64,
    duplicates: u64,
    replayed: u64,
    recovery: Vec<Duration>,
    transport: TransportReport,
    workers: usize,
    updates_shed: u64,
    latency: rcm_core::LatencySnapshot,
    violations: Vec<String>,
}

/// Per-class configuration: what to build and what must hold.
struct ClassSpec {
    name: &'static str,
    lossy: bool,
    assert_ordered: bool,
    assert_complete: bool,
    assert_consistent: bool,
}

const CLASSES: [ClassSpec; 5] = [
    ClassSpec {
        name: "threshold/lossless/ad1",
        lossy: false,
        assert_ordered: true,
        assert_complete: true,
        assert_consistent: true,
    },
    ClassSpec {
        name: "delta-rise/lossless/ad1",
        lossy: false,
        assert_ordered: false,
        assert_complete: false,
        assert_consistent: true,
    },
    ClassSpec {
        name: "threshold/lossy/ad2",
        lossy: true,
        assert_ordered: true,
        assert_complete: false,
        assert_consistent: false,
    },
    ClassSpec {
        name: "delta-rise/lossy/ad3",
        lossy: true,
        assert_ordered: false,
        assert_complete: false,
        assert_consistent: true,
    },
    ClassSpec {
        name: "threshold/lossy/ad4",
        lossy: true,
        assert_ordered: true,
        assert_complete: false,
        assert_consistent: true,
    },
];

/// Per-tree-class configuration: which faults to script.
struct TreeClassSpec {
    name: &'static str,
    front_loss: bool,
    kill_relay: bool,
    sever: bool,
    kill_replica: bool,
}

const TREE_CLASSES: [TreeClassSpec; 5] = [
    TreeClassSpec {
        name: "tree/lossless/no-faults",
        front_loss: false,
        kill_relay: false,
        sever: false,
        kill_replica: false,
    },
    TreeClassSpec {
        name: "tree/subtree-kill+reparent",
        front_loss: false,
        kill_relay: true,
        sever: false,
        kill_replica: false,
    },
    TreeClassSpec {
        name: "tree/tier-link-sever",
        front_loss: false,
        kill_relay: false,
        sever: true,
        kill_replica: false,
    },
    TreeClassSpec {
        name: "tree/20pct-front-loss",
        front_loss: true,
        kill_relay: false,
        sever: false,
        kill_replica: false,
    },
    TreeClassSpec {
        name: "tree/leaf-replica-kill",
        front_loss: false,
        kill_relay: false,
        sever: false,
        kill_replica: true,
    },
];

/// Everything one tree gauntlet run produced, for reporting.
struct TreeOutcome {
    index: usize,
    class: usize,
    updates: usize,
    leaves: usize,
    relay_tiers: usize,
    fanout: usize,
    replicas: usize,
    stats: TreeStats,
    violations: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!("usage: chaos [--plans N] [--tree-plans N] [--seed S] [--json]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut plans = 25usize;
    let mut tree_plans = 10usize;
    let mut seed = 7u64;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--plans" => {
                let Some(n) = args.next().and_then(|s| s.parse().ok()) else { return usage() };
                plans = n;
            }
            "--tree-plans" => {
                let Some(n) = args.next().and_then(|s| s.parse().ok()) else { return usage() };
                tree_plans = n;
            }
            "--seed" => {
                let Some(s) = args.next().and_then(|s| s.parse().ok()) else { return usage() };
                seed = s;
            }
            "--json" => json = true,
            _ => return usage(),
        }
    }

    let availability_violations = availability_check();
    if !json {
        if availability_violations.is_empty() {
            println!("availability: kill-one-replica plan displayed every surviving alert");
        } else {
            for v in &availability_violations {
                println!("availability VIOLATION: {v}");
            }
        }
    }

    let (socket_transport, socket_violations) = socket_smoke();
    if !json {
        if socket_violations.is_empty() {
            println!(
                "socket smoke: evented loopback run matched in-process output \
                 ({} wakeups, {} timer fires)",
                socket_transport.engine.wakeups, socket_transport.engine.timer_fires
            );
        } else {
            for v in &socket_violations {
                println!("socket smoke VIOLATION: {v}");
            }
        }
    }

    let mut outcomes = Vec::with_capacity(plans);
    for index in 0..plans {
        let outcome = run_plan(index, mix(seed ^ (index as u64).wrapping_mul(0x9e37_79b9)));
        if !json {
            print_outcome(&outcome);
        }
        outcomes.push(outcome);
    }

    let mut tree_outcomes = Vec::with_capacity(tree_plans);
    for index in 0..tree_plans {
        let outcome =
            run_tree_plan(index, mix(seed ^ (index as u64).wrapping_mul(0x517c_c1b7_2722_0a95)));
        if !json {
            print_tree_outcome(&outcome);
        }
        tree_outcomes.push(outcome);
    }
    let tree_violation_count: usize = tree_outcomes.iter().map(|o| o.violations.len()).sum();

    let violation_count = availability_violations.len()
        + socket_violations.len()
        + tree_violation_count
        + outcomes.iter().map(|o| o.violations.len()).sum::<usize>();
    let mut recovery: Vec<Duration> = outcomes.iter().flat_map(|o| o.recovery.clone()).collect();
    recovery.sort_unstable();
    let recovery_max = recovery.last().copied().unwrap_or(Duration::ZERO);
    let recovery_mean = if recovery.is_empty() {
        Duration::ZERO
    } else {
        recovery.iter().sum::<Duration>() / recovery.len() as u32
    };
    let kills: u32 = outcomes.iter().map(|o| o.kills).sum();
    let restarts: u32 = outcomes.iter().map(|o| o.restarts).sum();
    let severs: u64 = outcomes.iter().map(|o| o.severs).sum();
    let duplicates: u64 = outcomes.iter().map(|o| o.duplicates).sum();
    let replayed: u64 = outcomes.iter().map(|o| o.replayed).sum();
    let frames_dropped: u64 = outcomes.iter().map(|o| o.transport.front_frames_dropped()).sum();
    let reconnects: u64 = outcomes.iter().map(|o| o.transport.reconnects()).sum();
    let frames_sent: u64 = outcomes.iter().map(|o| o.transport.front_frames_sent()).sum();
    let updates_sent: u64 = outcomes.iter().map(|o| o.transport.front_updates_sent()).sum();
    let bytes_sent: u64 = outcomes.iter().map(|o| o.transport.front_bytes_sent()).sum();
    // In-process plans report zero engine counters; the socket smoke
    // run is what makes these totals nonzero.
    let engine_wakeups: u64 = socket_transport.engine.wakeups
        + outcomes.iter().map(|o| o.transport.engine.wakeups).sum::<u64>();
    let engine_timer_fires: u64 = socket_transport.engine.timer_fires
        + outcomes.iter().map(|o| o.transport.engine.timer_fires).sum::<u64>();
    let engine_spurious: u64 = socket_transport.engine.spurious_readiness
        + outcomes.iter().map(|o| o.transport.engine.spurious_readiness).sum::<u64>();
    // Pipeline rollup: shed totals sum; latency percentiles report the
    // worst (max) over the plans that actually recorded samples.
    let pipelined_plans = outcomes.iter().filter(|o| o.workers > 0).count();
    let updates_shed: u64 = outcomes.iter().map(|o| o.updates_shed).sum();
    let latency_count: u64 = outcomes.iter().map(|o| o.latency.count).sum();
    let latency_p50: u64 = outcomes.iter().map(|o| o.latency.p50_ns).max().unwrap_or(0);
    let latency_p99: u64 = outcomes.iter().map(|o| o.latency.p99_ns).max().unwrap_or(0);
    let latency_p999: u64 = outcomes.iter().map(|o| o.latency.p999_ns).max().unwrap_or(0);

    // Tree gauntlet rollup: the counters `xtask assert-chaos` gates on.
    let tree_totals = tree_outcomes.iter().fold(TreeStats::default(), |mut acc, o| {
        acc.updates_routed += o.stats.updates_routed;
        acc.gate_dropped_raw += o.stats.gate_dropped_raw;
        acc.leaf_alerts += o.stats.leaf_alerts;
        acc.derived_emitted += o.stats.derived_emitted;
        acc.derived_forwarded += o.stats.derived_forwarded;
        acc.derived_duplicates += o.stats.derived_duplicates;
        acc.reparent_events += o.stats.reparent_events;
        acc.replayed_frames += o.stats.replayed_frames;
        acc.frames_to_dead += o.stats.frames_to_dead;
        acc.root_alerts += o.stats.root_alerts;
        acc.wire_frames += o.stats.wire_frames;
        acc.wire_bytes += o.stats.wire_bytes;
        acc
    });

    if json {
        let doc = serde_json::json!({
            "seed": seed,
            "plans": plans,
            "violations": violation_count,
            "availability_violations": availability_violations,
            "socket_smoke": serde_json::json!({
                "violations": socket_violations,
                "transport": serde_json::to_value(&socket_transport)
                    .expect("transport serializes"),
            }),
            "totals": serde_json::json!({
                "kills": kills,
                "restarts": restarts,
                "backlink_severs": severs,
                "backlink_duplicates": duplicates,
                "updates_replayed": replayed,
                "front_frames_dropped": frames_dropped,
                "backlink_reconnects": reconnects,
                "front_frames_sent": frames_sent,
                "front_updates_sent": updates_sent,
                "front_bytes_sent": bytes_sent,
                "updates_per_datagram": if frames_sent == 0 {
                    0.0
                } else {
                    updates_sent as f64 / frames_sent as f64
                },
                "recovery_mean_us": recovery_mean.as_micros() as u64,
                "recovery_max_us": recovery_max.as_micros() as u64,
                "engine_wakeups": engine_wakeups,
                "engine_timer_fires": engine_timer_fires,
                "engine_spurious_readiness": engine_spurious,
                "pipelined_plans": pipelined_plans,
                "updates_shed": updates_shed,
                "latency_count": latency_count,
                "latency_p50_ns": latency_p50,
                "latency_p99_ns": latency_p99,
                "latency_p999_ns": latency_p999,
            }),
            "tree": serde_json::json!({
                "plans": tree_plans,
                "violations": tree_violation_count,
                "totals": serde_json::json!({
                    "updates_routed": tree_totals.updates_routed,
                    "derived_emitted": tree_totals.derived_emitted,
                    "derived_forwarded": tree_totals.derived_forwarded,
                    "derived_duplicates": tree_totals.derived_duplicates,
                    "reparent_events": tree_totals.reparent_events,
                    "replayed_frames": tree_totals.replayed_frames,
                    "frames_to_dead": tree_totals.frames_to_dead,
                    "root_alerts": tree_totals.root_alerts,
                    "wire_frames": tree_totals.wire_frames,
                    "wire_bytes": tree_totals.wire_bytes,
                }),
                "runs": tree_outcomes.iter().map(|o| serde_json::json!({
                    "plan": o.index,
                    "class": TREE_CLASSES[o.class].name,
                    "updates": o.updates,
                    "leaves": o.leaves,
                    "relay_tiers": o.relay_tiers,
                    "fanout": o.fanout,
                    "replicas": o.replicas,
                    "derived_emitted": o.stats.derived_emitted,
                    "derived_forwarded": o.stats.derived_forwarded,
                    "derived_duplicates": o.stats.derived_duplicates,
                    "reparent_events": o.stats.reparent_events,
                    "replayed_frames": o.stats.replayed_frames,
                    "frames_to_dead": o.stats.frames_to_dead,
                    "root_alerts": o.stats.root_alerts,
                    "wire_frames": o.stats.wire_frames,
                    "violations": o.violations.clone(),
                })).collect::<Vec<_>>(),
            }),
            "runs": outcomes.iter().map(|o| serde_json::json!({
                "plan": o.index,
                "class": CLASSES[o.class].name,
                "updates": o.updates,
                "replicas": o.replicas,
                "kills": o.kills,
                "restarts": o.restarts,
                "backlink_severs": o.severs,
                "backlink_duplicates": o.duplicates,
                "updates_replayed": o.replayed,
                "workers": o.workers,
                "updates_shed": o.updates_shed,
                "latency_p50_ns": o.latency.p50_ns,
                "latency_p99_ns": o.latency.p99_ns,
                "latency_p999_ns": o.latency.p999_ns,
                "recovery_us": o.recovery.iter().map(|d| d.as_micros() as u64).collect::<Vec<_>>(),
                "transport": serde_json::to_value(&o.transport).expect("transport serializes"),
                "violations": o.violations.clone(),
            })).collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&doc).expect("report serializes"));
    } else {
        println!(
            "\nchaos: {plans} plans, {kills} kills, {restarts} restarts, \
             {severs} severs, {duplicates} duplicate offers, {replayed} updates replayed"
        );
        println!(
            "recovery latency: mean {recovery_mean:?}, max {recovery_max:?} \
             over {} recoveries",
            recovery.len()
        );
        println!(
            "pipeline: {pipelined_plans} of {plans} plans ran sharded, {updates_shed} shed; \
             worst ingest→emit latency p50 {latency_p50} ns / p99 {latency_p99} ns / \
             p999 {latency_p999} ns over {latency_count} update(s)"
        );
        println!(
            "tree: {tree_plans} plans, {} derived forwarded, {} duplicates gated, \
             {} re-parent events, {} frames replayed, {} lost to dead relays",
            tree_totals.derived_forwarded,
            tree_totals.derived_duplicates,
            tree_totals.reparent_events,
            tree_totals.replayed_frames,
            tree_totals.frames_to_dead,
        );
        println!("violations: {violation_count}");
    }

    if violation_count == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Scripted plan: replica 0 is killed on its first arrival with a zero
/// restart budget, so it stays dead. Availability demands the surviving
/// replica carry the run: every alert it emitted must be displayed.
fn availability_check() -> Vec<String> {
    let x = VarId::new(0);
    let cond: Arc<dyn Condition> = Arc::new(Threshold::new(x, Cmp::Gt, 50.0));
    let system = MonitorSystem::builder(cond)
        .replicas(2)
        .feed(VarFeed::new(x, vec![60.0, 40.0, 70.0, 55.0, 30.0, 80.0]))
        .faults(FaultPlan::scripted().kill_ce(0, 1).max_restarts(0))
        .start()
        .expect("availability plan config is valid");
    let report = system.wait();

    let mut violations = Vec::new();
    if report.faults.replicas_abandoned != 1 {
        violations.push(format!(
            "expected exactly one abandoned replica, saw {}",
            report.faults.replicas_abandoned
        ));
    }
    for alert in &report.emitted[1] {
        if !report.displayed.contains(alert) {
            violations.push(format!("surviving replica's alert {alert:?} was not displayed"));
        }
    }
    if report.displayed.len() != 4 {
        violations.push(format!(
            "expected the 4 surviving-replica alerts displayed, saw {}",
            report.displayed.len()
        ));
    }
    violations
}

/// One loopback socket run on the evented engine: output must match
/// the in-process model, and the readiness loop must actually have
/// carried it (nonzero wakeups).
fn socket_smoke() -> (TransportReport, Vec<String>) {
    let x = VarId::new(0);
    let cond: Arc<dyn Condition> = Arc::new(Threshold::new(x, Cmp::Gt, 50.0));
    let values: Vec<f64> =
        (0..40).map(|i| if i % 2 == 1 { 60.0 + f64::from(i) } else { 40.0 }).collect();
    let in_process = MonitorSystem::builder(cond.clone())
        .replicas(2)
        .feed(VarFeed::new(x, values.clone()))
        .start()
        .expect("in-process smoke config is valid")
        .wait();
    let bound = Topology::loopback(2).bind().expect("loopback topology binds");
    let sockets = MonitorSystem::builder(cond)
        .replicas(2)
        .feed(VarFeed::new(x, values).period(Duration::from_millis(1)))
        .transport(bound)
        .start()
        .expect("socket smoke config is valid")
        .wait();

    let mut violations = Vec::new();
    if sockets.displayed != in_process.displayed {
        violations.push(format!(
            "evented socket run displayed {} alert(s), in-process displayed {}",
            sockets.displayed.len(),
            in_process.displayed.len()
        ));
    }
    if sockets.transport.engine.wakeups == 0 {
        violations.push("evented engine recorded no wakeups".into());
    }
    if sockets.transport.decode_errors() != 0 {
        violations.push(format!("{} decode errors on loopback", sockets.transport.decode_errors()));
    }
    (sockets.transport, violations)
}

/// Runs one randomized plan and checks its class's properties.
fn run_plan(index: usize, plan_seed: u64) -> PlanOutcome {
    let class = index % CLASSES.len();
    let spec = &CLASSES[class];
    let x = VarId::new(0);
    let replicas = 2 + (mix(plan_seed ^ 1) % 2) as usize;
    let updates = 60 + (mix(plan_seed ^ 2) % 81) as usize;

    // A jittery random walk: enough threshold crossings and steep rises
    // that every class produces a meaningful alert stream.
    let mut state = mix(plan_seed ^ 3);
    let values: Vec<f64> = (0..updates)
        .map(|_| {
            state = mix(state);
            (state % 1000) as f64 / 10.0
        })
        .collect();

    let condition: Arc<dyn Condition> = if spec.name.starts_with("threshold") {
        Arc::new(Threshold::new(x, Cmp::Gt, 50.0))
    } else {
        Arc::new(DeltaRise::new(x, 5.0))
    };

    // A retained window larger than the workload plus a generous
    // restart budget: recovery replays the full history, which is what
    // makes the class-0 completeness assertion sound.
    let plan = FaultPlan::random(plan_seed, replicas, 1, updates as u64)
        .retain_window(4096)
        .max_restarts(8);
    let lossy = spec.lossy;
    // Alternate the CE evaluation strategy across plans: inline
    // (workers = 0) and the shard-parallel pipeline at 1–3 workers, so
    // every fault class also runs pipelined. The default rings are far
    // deeper than any plan's workload, so no plan sheds — class-0
    // completeness stays sound.
    let workers = (mix(plan_seed ^ 4) % 4) as usize;
    let mut builder = MonitorSystem::builder(condition.clone())
        .replicas(replicas)
        .workers(workers)
        .feed(VarFeed::new(x, values))
        .seed(plan_seed)
        .faults(plan)
        .loss(move |_, _| {
            if lossy {
                Box::new(Bernoulli::new(0.2)) as Box<dyn LossModel>
            } else {
                Box::new(Lossless)
            }
        });
    builder = match class {
        0 | 1 => builder.filter(|_| Box::new(Ad1::new()) as Box<dyn AlertFilter>),
        2 => builder.filter(|vars| Box::new(Ad2::new(vars[0])) as Box<dyn AlertFilter>),
        3 => builder.filter(|vars| Box::new(Ad3::new(vars[0])) as Box<dyn AlertFilter>),
        _ => builder.filter(|vars| Box::new(Ad4::new(vars[0])) as Box<dyn AlertFilter>),
    };
    let report = builder.start().expect("chaos plan config is valid").wait();

    let violations = check(spec, &condition, &report, x);
    PlanOutcome {
        index,
        class,
        updates,
        replicas,
        kills: report.faults.kills_injected,
        restarts: report.faults.total_restarts(),
        severs: report.faults.backlink_severs,
        duplicates: report.faults.backlink_duplicates,
        replayed: report.faults.updates_replayed,
        recovery: report.faults.recovery_latency.clone(),
        transport: report.transport.clone(),
        workers: report.pipeline.workers,
        updates_shed: report.pipeline.updates_shed,
        latency: report.pipeline.latency,
        violations,
    }
}

/// Applies the class's property assertions plus the invariants every
/// class must uphold.
fn check(
    spec: &ClassSpec,
    condition: &Arc<dyn Condition>,
    report: &RunReport,
    x: VarId,
) -> Vec<String> {
    let mut violations = Vec::new();
    // The lossless back-link contract: severance may queue and
    // duplicate, never drop. This holds in every class.
    if report.faults.alerts_lost_overflow != 0 {
        violations.push(format!(
            "{} alerts lost to resend-queue overflow",
            report.faults.alerts_lost_overflow
        ));
    }
    if report.faults.replicas_abandoned != 0 {
        violations.push(format!(
            "{} replicas exhausted a restart budget sized to be inexhaustible",
            report.faults.replicas_abandoned
        ));
    }
    if spec.assert_ordered {
        let ordered = check_ordered(&report.displayed, &[x]);
        if !ordered.ok {
            violations.push(format!("orderedness violated: {:?}", ordered.violation));
        }
    }
    if spec.assert_complete {
        let complete = check_complete_single(condition, &report.ingested, &report.displayed);
        if !complete.ok {
            violations.push(format!(
                "completeness violated: missing {:?}, extraneous {:?}",
                complete.missing, complete.extraneous
            ));
        }
    }
    if spec.assert_consistent {
        let consistent = check_consistent_single(condition, &report.ingested, &report.displayed);
        if !consistent.ok {
            violations.push(format!("consistency violated: {:?}", consistent.conflict));
        }
    }
    violations
}

/// Runs one randomized aggregation-tree plan through the threaded
/// runtime and checks the root display against a flat CE fed the
/// identical survivor stream.
fn run_tree_plan(index: usize, plan_seed: u64) -> TreeOutcome {
    let class = index % TREE_CLASSES.len();
    let spec = &TREE_CLASSES[class];
    const ROOT_CE: CeId = CeId::new(99);

    let leaves = 2 + (mix(plan_seed ^ 1) % 3) as usize;
    // Subtree-kill needs an interior tier with a live sibling to adopt
    // orphans; fanout 1 keeps one relay per leaf so killing relay 0
    // orphans exactly leaf 0's subtree.
    let (relay_tiers, fanout) = if spec.kill_relay {
        (1, 1)
    } else {
        ((mix(plan_seed ^ 2) % 3) as usize, 1 + (mix(plan_seed ^ 3) % 3) as usize)
    };
    let replicas = if spec.kill_replica { 2 } else { 1 + (mix(plan_seed ^ 4) % 2) as usize };
    let shards = 1 + (mix(plan_seed ^ 5) % 4) as usize;

    // One single-variable threshold condition per variable; ownership
    // round-robins variables over leaves, so global condition ids
    // interleave across leaves exactly as the keystone proptest does.
    let vars = leaves * (1 + (mix(plan_seed ^ 6) % 2) as usize);
    let mut plan = TreePlan::new(leaves).with_relay_tiers(relay_tiers).with_fanout(fanout);
    let mut conds: Vec<(CondId, VarId, f64)> = Vec::new();
    for v in 0..vars {
        let var = VarId::new(v as u32);
        plan.own(var, v % leaves);
        let threshold = (mix(plan_seed ^ (0x100 + v as u64)) % 100) as f64 - 50.0;
        conds.push((CondId::new(v as u32), var, threshold));
    }
    for &(id, var, threshold) in &conds {
        plan.add_condition(id, Arc::new(Threshold::new(var, Cmp::Gt, threshold)))
            .expect("single-variable condition lands on its owning leaf");
    }

    // The survivor stream both systems see: per-variable seqno gaps,
    // scripted front loss applied once, before the fan-out.
    let steps = 150 + (mix(plan_seed ^ 7) % 101) as usize;
    let mut state = mix(plan_seed ^ 8);
    let mut next_seq = vec![1u64; vars];
    let mut stream = Vec::new();
    for _ in 0..steps {
        state = mix(state);
        let v = (state % vars as u64) as usize;
        state = mix(state);
        let seqno = next_seq[v] + state % 2;
        next_seq[v] = seqno + 1;
        state = mix(state);
        let value = (state % 120) as f64 - 60.0;
        state = mix(state);
        if spec.front_loss && state % 100 < 20 {
            continue;
        }
        stream.push(Update::new(VarId::new(v as u32), seqno, value));
    }

    let at = stream.len() as u64;
    let mut faults = Vec::new();
    if spec.kill_relay {
        faults.push(TreeFault::KillRelay { tier: 1, idx: 0, at_update: at / 3 });
        faults.push(TreeFault::Reparent { at_update: 2 * at / 3 });
    }
    if spec.sever {
        faults.push(TreeFault::SeverUplink {
            tier: 0,
            idx: 0,
            replica: 0,
            at_update: at / 4,
            down_for: at / 4,
        });
    }
    if spec.kill_replica {
        faults.push(TreeFault::KillLeafReplica { leaf: 0, replica: 1, at_update: at / 2 });
    }

    // Replay windows sized past the workload: recovery must be
    // complete, so exactly-once at the root is an invariant, not a
    // best effort.
    let opts = TreeOptions {
        root_ce: ROOT_CE,
        leaf_replicas: replicas,
        shards_per_leaf: shards,
        replay_window: 4096,
        ..TreeOptions::default()
    };
    let report =
        TreeTopology::new(plan).options(opts).stream(stream.iter().copied()).faults(faults).run();

    // Flat reference: one gate, one registry, ascending condition ids.
    let mut gate = SeqGate::new();
    let mut reg = ConditionRegistry::new(ROOT_CE);
    for &(id, var, threshold) in &conds {
        reg.insert(id, Arc::new(Threshold::new(var, Cmp::Gt, threshold)));
    }
    let mut want: Vec<Alert> = Vec::new();
    for &u in &stream {
        if gate.admit(&u) {
            reg.ingest(u, &mut want);
        }
    }

    let mut violations = Vec::new();
    // Exactly-once: the root displays the flat count, nothing lost to
    // the outage (windows cover it) and nothing duplicated by replay.
    if report.displayed.len() != want.len() {
        violations.push(format!(
            "exactly-once violated: root displayed {} alert(s), flat CE displayed {}",
            report.displayed.len(),
            want.len()
        ));
    }
    // Per-condition sequences byte-identical to the flat CE — payload,
    // snapshot and provenance numbering (global interleaving may shift
    // while a subtree is orphaned; per-stream order may not).
    for &(id, ..) in &conds {
        let got: Vec<&Alert> = report.displayed.iter().filter(|a| a.cond == id).collect();
        let flat: Vec<&Alert> = want.iter().filter(|a| a.cond == id).collect();
        if got.len() != flat.len() {
            violations.push(format!(
                "condition {}: {} alert(s) at the root, {} at the flat CE",
                id.index(),
                got.len(),
                flat.len()
            ));
            continue;
        }
        for (g, w) in got.iter().zip(&flat) {
            if g != w || g.id != w.id {
                violations.push(format!(
                    "condition {}: alert diverges from the flat CE ({:?} vs {:?})",
                    id.index(),
                    g.id,
                    w.id
                ));
                break;
            }
        }
    }
    // Per-variable orderedness of the root display, with the exact
    // decider. Tier links are FIFO and each variable lives on one
    // leaf, so this must hold in every class, faults included.
    let var_ids: Vec<VarId> = (0..vars as u32).map(VarId::new).collect();
    let ordered = check_ordered(&report.displayed, &var_ids);
    if !ordered.ok {
        violations.push(format!("root display orderedness violated: {:?}", ordered.violation));
    }
    // Fault classes must actually exercise their machinery. Replay and
    // duplicate counters only move when the affected window held
    // verdicts, so those checks are conditioned on alerts existing.
    if spec.kill_relay && report.stats.reparent_events == 0 {
        violations.push("subtree-kill class re-parented nothing".to_string());
    }
    if (spec.kill_relay || spec.sever)
        && !report.displayed.is_empty()
        && report.stats.replayed_frames == 0
    {
        violations.push("recovery class replayed no frames".to_string());
    }
    if replicas > 1
        && !spec.kill_replica
        && !report.displayed.is_empty()
        && report.stats.derived_duplicates == 0
    {
        violations.push("replicated leaves produced no gated duplicates".to_string());
    }

    TreeOutcome {
        index,
        class,
        updates: stream.len(),
        leaves,
        relay_tiers,
        fanout,
        replicas,
        stats: report.stats,
        violations,
    }
}

fn print_tree_outcome(o: &TreeOutcome) {
    let verdict = if o.violations.is_empty() { "ok" } else { "VIOLATION" };
    println!(
        "tree {:>3}  {:<26} updates={:<3} leaves={} tiers={} fanout={} replicas={} \
         reparents={} replayed={}  {verdict}",
        o.index,
        TREE_CLASSES[o.class].name,
        o.updates,
        o.leaves,
        o.relay_tiers,
        o.fanout,
        o.replicas,
        o.stats.reparent_events,
        o.stats.replayed_frames,
    );
    for v in &o.violations {
        println!("          {v}");
    }
}

fn print_outcome(o: &PlanOutcome) {
    let verdict = if o.violations.is_empty() { "ok" } else { "VIOLATION" };
    println!(
        "plan {:>3}  {:<24} updates={:<3} replicas={} kills={} restarts={} \
         severs={} dups={}  {verdict}",
        o.index,
        CLASSES[o.class].name,
        o.updates,
        o.replicas,
        o.kills,
        o.restarts,
        o.severs,
        o.duplicates,
    );
    for v in &o.violations {
        println!("          {v}");
    }
}
