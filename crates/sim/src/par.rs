//! Deterministic parallel map for the Monte-Carlo harness.
//!
//! The property tables replay hundreds of independent seeded runs; the
//! only thing the harness needs from parallelism is "run `f(i)` for
//! every index, give me the results in index order". [`map_indexed`]
//! does exactly that on `std::thread::scope` — no work stealing, no
//! shared state — which makes the determinism contract trivial to
//! state and to test:
//!
//! > `map_indexed(jobs, f)` returns exactly `(0..jobs).map(f)`,
//! > regardless of how many worker threads execute it.
//!
//! Jobs are split into contiguous index chunks, one per worker; each
//! worker fills its own output vector and the chunks are concatenated
//! in order. `f` must derive everything from its index (the harness
//! derives per-run RNG seeds from the index, so this holds by
//! construction).

use std::cell::Cell;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

struct OverrideGuard(Option<usize>);

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|c| c.set(self.0));
    }
}

/// Runs `f` with the harness thread count forced to `n` on the calling
/// thread, restoring the previous setting afterwards (also on panic).
///
/// This is how tests and benches compare serial (`n = 1`) and parallel
/// executions of the same workload without touching process-global
/// environment variables.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread count must be at least 1");
    let _guard = OverrideGuard(THREAD_OVERRIDE.with(|c| c.replace(Some(n))));
    f()
}

/// Worker threads [`map_indexed`] will use: the innermost
/// [`with_threads`] override if inside one, else the `RCM_THREADS`
/// environment variable, else `std::thread::available_parallelism`.
pub fn harness_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("RCM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Evaluates `f` over `0..jobs` across [`harness_threads`] worker
/// threads and returns the results in index order.
///
/// Output is bit-identical to the serial `(0..jobs).map(f).collect()`
/// for any thread count — see the module docs for the contract.
pub fn map_indexed<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed_with(harness_threads(), jobs, f)
}

/// Evaluates `f` over every element of a mutable slice across
/// [`harness_threads`] worker threads and returns the per-element
/// results in slice order.
///
/// This is the in-place sibling of [`map_indexed`], for workloads that
/// mutate persistent state per job (e.g. registry shards ingesting a
/// batch). The slice is split into contiguous chunks, one per worker;
/// each element is visited exactly once, and the output is bit-identical
/// to the serial `items.iter_mut().enumerate().map(|(i, t)| f(i, t))`
/// for any thread count.
pub fn map_slice_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    map_slice_mut_with(harness_threads(), items, f)
}

/// [`map_slice_mut`] with an explicit worker-thread count.
pub fn map_slice_mut_with<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let jobs = items.len();
    let threads = threads.clamp(1, jobs.max(1));
    if threads == 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = jobs.div_ceil(threads);
    let f = &f;
    let mut out = Vec::with_capacity(jobs);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, part)| {
                let lo = c * chunk;
                s.spawn(move || {
                    part.iter_mut().enumerate().map(|(i, t)| f(lo + i, t)).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// [`map_indexed`] with an explicit worker-thread count.
pub fn map_indexed_with<T, F>(threads: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, jobs.max(1));
    if threads == 1 {
        return (0..jobs).map(f).collect();
    }
    let chunk = jobs.div_ceil(threads);
    let f = &f;
    let mut out = Vec::with_capacity(jobs);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = (t * chunk).min(jobs);
                let hi = ((t + 1) * chunk).min(jobs);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_for_every_thread_count() {
        let serial: Vec<u64> = (0..97).map(|i| (i as u64).wrapping_mul(0x9e37)).collect();
        for threads in [1, 2, 3, 7, 8, 16, 200] {
            let par = map_indexed_with(threads, 97, |i| (i as u64).wrapping_mul(0x9e37));
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(map_indexed_with(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed_with(8, 1, |i| i), vec![0]);
        assert_eq!(map_indexed_with(8, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn override_nests_and_restores() {
        with_threads(3, || {
            assert_eq!(harness_threads(), 3);
            with_threads(1, || assert_eq!(harness_threads(), 1));
            assert_eq!(harness_threads(), 3);
        });
        // Outside any override the count comes from the environment or
        // hardware; it must at least be positive.
        assert!(harness_threads() >= 1);
    }

    #[test]
    fn override_restored_after_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(5, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_ne!(THREAD_OVERRIDE.with(Cell::get), Some(5));
    }

    #[test]
    fn slice_map_matches_serial_and_mutates_every_element() {
        for threads in [1, 2, 3, 7, 8, 16, 200] {
            let mut items: Vec<u64> = (0..53).collect();
            let out = map_slice_mut_with(threads, &mut items, |i, t| {
                *t += 1;
                *t * i as u64
            });
            let want: Vec<u64> = (0..53u64).map(|i| (i + 1) * i).collect();
            assert_eq!(out, want, "threads = {threads}");
            assert_eq!(items, (1..54).collect::<Vec<u64>>(), "threads = {threads}");
        }
    }

    #[test]
    fn slice_map_empty_and_tiny() {
        let mut empty: Vec<u8> = Vec::new();
        assert_eq!(map_slice_mut_with(8, &mut empty, |i, _| i), Vec::<usize>::new());
        let mut one = vec![5u8];
        assert_eq!(map_slice_mut_with(8, &mut one, |i, t| (i, *t)), vec![(0, 5)]);
    }

    #[test]
    fn parallel_execution_actually_uses_workers() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        map_indexed_with(4, 64, |i| {
            ids.lock().unwrap().insert(std::thread::current().id());
            i
        });
        assert!(ids.lock().unwrap().len() > 1, "work never left the calling thread");
    }
}
