//! Discrete-event scheduling core.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in abstract ticks.
pub type SimTime = u64;

/// A deterministic time-ordered event queue.
///
/// Events scheduled for the same tick fire in insertion order (a
/// monotone sequence number breaks ties), so runs are reproducible
/// regardless of heap internals.
///
/// ```rust
/// use rcm_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(5, "b");
/// q.schedule(3, "a");
/// q.schedule(5, "c");
/// assert_eq!(q.pop(), Some((3, "a")));
/// assert_eq!(q.pop(), Some((5, "b"))); // same-tick FIFO
/// assert_eq!(q.pop(), Some((5, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventBox<E>)>>,
    next_seq: u64,
}

/// Wrapper granting `Ord` by never comparing the payload.
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` to fire at absolute tick `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq, EventBox(event))));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse((at, _, EventBox(e)))| (at, e))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.schedule(10, 1);
        q.schedule(2, 2);
        q.schedule(10, 3);
        q.schedule(2, 4);
        let drained: Vec<(SimTime, i32)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![(2, 2), (2, 4), (10, 1), (10, 3)]);
    }

    #[test]
    fn len_tracks_pending() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        q.schedule(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn events_scheduled_during_processing_interleave() {
        let mut q = EventQueue::new();
        q.schedule(1, "first");
        let (t, _) = q.pop().unwrap();
        q.schedule(t, "same-tick follow-up");
        q.schedule(t + 1, "later");
        assert_eq!(q.pop().unwrap().1, "same-tick follow-up");
        assert_eq!(q.pop().unwrap().1, "later");
    }
}
