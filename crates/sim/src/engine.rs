//! The simulation engine: wires DMs, CEs and the AD over simulated
//! links and runs the event loop to completion.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use rcm_core::{Alert, CeId, CondId, Evaluator, Update, VarId};
use rcm_net::{InOrderGate, LossyLink, ReliableLink, Transmit};

use crate::event::EventQueue;
use crate::scenario::Scenario;

/// Aggregate counters of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Updates emitted by all DMs.
    pub updates_emitted: u64,
    /// Updates dropped by front-link loss models.
    pub updates_lost: u64,
    /// Updates discarded by receiver in-order gates (overtaken in
    /// flight).
    pub updates_reordered: u64,
    /// Updates that arrived while their replica was down.
    pub updates_missed_down: u64,
    /// Updates actually incorporated, summed over replicas.
    pub updates_ingested: u64,
    /// Alerts emitted, summed over replicas.
    pub alerts_emitted: u64,
}

/// Everything a run produced, for property checking and metrics.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Every update emitted by the DMs, in emission order (the paper's
    /// `U`, per variable interleaved by time).
    pub emitted: Vec<Update>,
    /// Per replica: the updates it incorporated, in arrival order (the
    /// paper's `U_i`).
    pub inputs: Vec<Vec<Update>>,
    /// Per replica: the alerts it emitted (the paper's `A_i = T(U_i)`).
    pub ce_outputs: Vec<Vec<Alert>>,
    /// The merged alert arrival sequence at the Alert Displayer, before
    /// any filtering.
    pub arrivals: Vec<Alert>,
    /// Per arrival: `(sent_at, arrived_at)` ticks, aligned with
    /// `arrivals` — the difference is the alert's delivery latency,
    /// including any AD-outage buffering.
    pub arrival_times: Vec<(u64, u64)>,
    /// Aggregate counters.
    pub stats: RunStats,
}

impl RunResult {
    /// Mean alert delivery latency in ticks (0 when no alerts arrived).
    pub fn mean_alert_latency(&self) -> f64 {
        if self.arrival_times.is_empty() {
            return 0.0;
        }
        let total: u64 = self.arrival_times.iter().map(|(s, a)| a - s).sum();
        total as f64 / self.arrival_times.len() as f64
    }
}

#[derive(Debug)]
enum Ev {
    Emit {
        var_index: usize,
    },
    DeliverUpdate {
        ce: usize,
        var_index: usize,
        tag: u64,
        update: Update,
    },
    /// Alerts travel by reference: `(ce, idx)` names the alert already
    /// recorded in `ce_outputs`, so the event loop never clones one.
    DeliverAlert {
        ce: usize,
        idx: usize,
        sent_at: u64,
    },
    CrashStart {
        ce: usize,
    },
    CrashEnd {
        ce: usize,
    },
}

/// Runs a scenario to completion (all workloads drained, all in-flight
/// messages delivered) and returns the full execution record.
///
/// The run is a pure function of the scenario: identical scenarios
/// (including seeds) produce identical results.
///
/// # Panics
///
/// Panics if the scenario is malformed: zero replicas, a workload for
/// a variable outside the condition's variable set, or empty spec
/// lists.
pub fn run(scenario: Scenario) -> RunResult {
    assert!(scenario.replicas >= 1, "need at least one replica");
    let vars: Vec<VarId> = scenario.condition.variables();
    for w in &scenario.workloads {
        assert!(
            vars.contains(&w.var),
            "workload variable {} not in the condition's variable set",
            w.var
        );
    }
    let n_ce = scenario.replicas;
    let n_var = scenario.workloads.len();

    // Two independent random streams: DM values depend on the seed
    // alone, link behaviour also on the salt — so per-condition runs of
    // a multi-condition system (Appendix D) observe identical variables
    // over independent links.
    let mut values_rng = ChaCha8Rng::seed_from_u64(scenario.seed);
    let mut rng =
        ChaCha8Rng::seed_from_u64(scenario.seed ^ scenario.link_salt.rotate_left(17) ^ 0x11a5);
    let mut queue: EventQueue<Ev> = EventQueue::new();

    // Component state. Everything reading `&scenario` is built first;
    // the owned fields (condition, workloads, AD outages) are then
    // moved out rather than cloned.
    let mut front_links: Vec<LossyLink> = (0..n_var * n_ce)
        .map(|i| {
            let (v, c) = (i / n_ce, i % n_ce);
            LossyLink::new(
                scenario.front_loss_for(v, c).build(),
                scenario.front_delay_for(v, c).build(),
            )
        })
        .collect();
    let mut gates: Vec<InOrderGate> = vec![InOrderGate::new(); n_var * n_ce];
    let mut back_links: Vec<ReliableLink> =
        (0..n_ce).map(|c| ReliableLink::new(scenario.back_delay_for(c).build())).collect();
    let mut down = vec![false; n_ce];

    // Replica evaluators share the scenario's condition by borrow (a
    // `&dyn Condition` is itself a `Condition`) — no per-replica
    // refcount traffic, no clone.
    let condition = scenario.condition;
    let cond: &dyn rcm_core::Condition = &*condition;
    let mut evaluators: Vec<Evaluator<&dyn rcm_core::Condition>> = (0..n_ce)
        .map(|ce| Evaluator::with_ids(cond, CondId::SINGLE, CeId::new(ce as u32)))
        .collect();

    // Workload state.
    let mut models = scenario.workloads;
    let mut next_seqno: Vec<u64> = vec![0; n_var];

    // Outputs. Arrivals are logged as `(ce, idx)` references into
    // `ce_outputs` and materialized once after the event loop.
    let mut emitted: Vec<Update> = Vec::new();
    let mut inputs: Vec<Vec<Update>> = vec![Vec::new(); n_ce];
    let mut ce_outputs: Vec<Vec<Alert>> = vec![Vec::new(); n_ce];
    let mut arrival_log: Vec<(usize, usize)> = Vec::new();
    let mut arrival_times: Vec<(u64, u64)> = Vec::new();
    let mut stats = RunStats::default();

    // Normalize AD outage windows: sorted, validated.
    let mut ad_outages = scenario.ad_outages;
    ad_outages.sort_unstable();
    for w in ad_outages.windows(2) {
        assert!(w[0].1 <= w[1].0, "AD outage windows must not overlap");
    }
    for &(from, to) in &ad_outages {
        assert!(from <= to, "AD outage window inverted");
    }
    // If the AD is down at `t`, the end of the containing window.
    let ad_up_at = |t: u64| -> Option<u64> {
        ad_outages.iter().find(|&&(from, to)| from <= t && t < to).map(|&(_, to)| to)
    };

    // Schedule emissions and outages.
    for (vi, w) in models.iter().enumerate() {
        for i in 0..w.updates {
            queue.schedule(w.offset + i * w.period, Ev::Emit { var_index: vi });
        }
    }
    for o in &scenario.outages {
        assert!(o.ce < n_ce, "outage names replica {} of {n_ce}", o.ce);
        assert!(o.from <= o.to, "outage window inverted");
        queue.schedule(o.from, Ev::CrashStart { ce: o.ce });
        queue.schedule(o.to, Ev::CrashEnd { ce: o.ce });
    }

    while let Some((now, ev)) = queue.pop() {
        match ev {
            Ev::Emit { var_index } => {
                let w = &mut models[var_index];
                next_seqno[var_index] += 1;
                let value = w.model.next(&mut values_rng);
                let update = Update::new(w.var, next_seqno[var_index], value);
                emitted.push(update);
                stats.updates_emitted += 1;
                for ce in 0..n_ce {
                    let link = &mut front_links[var_index * n_ce + ce];
                    match link.transmit(now, &mut rng) {
                        Transmit::Dropped => stats.updates_lost += 1,
                        Transmit::DeliverAt { at, tag } => {
                            queue.schedule(at, Ev::DeliverUpdate { ce, var_index, tag, update })
                        }
                    }
                }
            }
            Ev::DeliverUpdate { ce, var_index, tag, update } => {
                if down[ce] {
                    stats.updates_missed_down += 1;
                    continue;
                }
                if !gates[var_index * n_ce + ce].accept(tag) {
                    stats.updates_reordered += 1;
                    continue;
                }
                let maybe_alert = evaluators[ce]
                    .try_ingest(update)
                    .expect("update routed to evaluator lacking its variable");
                inputs[ce].push(update);
                stats.updates_ingested += 1;
                if let Some(alert) = maybe_alert {
                    stats.alerts_emitted += 1;
                    let idx = ce_outputs[ce].len();
                    ce_outputs[ce].push(alert);
                    let at = back_links[ce].transmit(now, &mut rng);
                    queue.schedule(at, Ev::DeliverAlert { ce, idx, sent_at: now });
                }
            }
            Ev::DeliverAlert { ce, idx, sent_at } => {
                // Powered-off PDA: the reliable back link buffers the
                // alert and redelivers when the AD comes back. Same-tick
                // redeliveries keep their relative (FIFO) order through
                // the queue's insertion-order tie-break.
                if let Some(up_at) = ad_up_at(now) {
                    queue.schedule(up_at, Ev::DeliverAlert { ce, idx, sent_at });
                } else {
                    arrival_times.push((sent_at, now));
                    arrival_log.push((ce, idx));
                }
            }
            Ev::CrashStart { ce } => {
                down[ce] = true;
                evaluators[ce].restart();
            }
            Ev::CrashEnd { ce } => down[ce] = false,
        }
    }

    // Materialize the AD's arrival stream; each clone here is an
    // `Arc` bump on the shared snapshot, and this is the only place in
    // the run that copies an alert.
    let arrivals: Vec<Alert> =
        arrival_log.into_iter().map(|(ce, idx)| ce_outputs[ce][idx].clone()).collect();
    RunResult { emitted, inputs, ce_outputs, arrivals, arrival_times, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DelaySpec, LossSpec, Outage, VarWorkload};
    use crate::workload::Scripted;
    use rcm_core::condition::{Cmp, Threshold};
    use std::sync::Arc;

    fn x() -> VarId {
        VarId::new(0)
    }

    fn base_scenario(seed: u64) -> Scenario {
        Scenario {
            condition: Arc::new(Threshold::new(x(), Cmp::Gt, 3000.0)),
            replicas: 2,
            workloads: vec![VarWorkload {
                var: x(),
                updates: 3,
                period: 10,
                offset: 0,
                model: Box::new(Scripted::new(vec![2900.0, 3100.0, 3200.0])),
            }],
            front_loss: vec![LossSpec::Lossless],
            front_delay: vec![DelaySpec::Constant(1)],
            back_delay: vec![DelaySpec::Constant(1)],
            outages: vec![],
            ad_outages: vec![],
            link_salt: 0,
            seed,
        }
    }

    #[test]
    fn example_1_lossless_run() {
        let r = run(base_scenario(1));
        assert_eq!(r.stats.updates_emitted, 3);
        assert_eq!(r.stats.updates_lost, 0);
        // Both CEs receive everything and emit alerts on updates 2 and 3.
        assert_eq!(r.inputs[0].len(), 3);
        assert_eq!(r.inputs[1].len(), 3);
        assert_eq!(r.ce_outputs[0].len(), 2);
        assert_eq!(r.ce_outputs[1].len(), 2);
        assert_eq!(r.arrivals.len(), 4);
    }

    #[test]
    fn example_1_with_scripted_loss() {
        // CE2 misses update 2 (link index 1 = var 0, replica 1).
        let mut sc = base_scenario(2);
        sc.front_loss = vec![LossSpec::Lossless, LossSpec::Scripted(vec![1])];
        let r = run(sc);
        assert_eq!(r.inputs[0].len(), 3);
        assert_eq!(r.inputs[1].len(), 2);
        assert_eq!(r.ce_outputs[0].len(), 2);
        assert_eq!(r.ce_outputs[1].len(), 1); // only the alert on update 3
        assert_eq!(r.stats.updates_lost, 1);
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = base_scenario(7);
        a.front_loss = vec![LossSpec::Bernoulli(0.3)];
        a.front_delay = vec![DelaySpec::Uniform(0, 5)];
        let mut b = base_scenario(7);
        b.front_loss = vec![LossSpec::Bernoulli(0.3)];
        b.front_delay = vec![DelaySpec::Uniform(0, 5)];
        let ra = run(a);
        let rb = run(b);
        assert_eq!(ra.inputs, rb.inputs);
        assert_eq!(ra.arrivals, rb.arrivals);
        assert_eq!(ra.stats, rb.stats);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = base_scenario(1);
        a.front_loss = vec![LossSpec::Bernoulli(0.5)];
        a.workloads[0].updates = 50;
        let mut b = base_scenario(2);
        b.front_loss = vec![LossSpec::Bernoulli(0.5)];
        b.workloads[0].updates = 50;
        assert_ne!(run(a).inputs, run(b).inputs);
    }

    #[test]
    fn outage_drops_updates_and_clears_history() {
        let mut sc = base_scenario(3);
        sc.outages = vec![Outage { ce: 1, from: 5, to: 15 }];
        // Updates emitted at 0, 10, 20, delivered at +1: CE1 misses the
        // one delivered at 11.
        let r = run(sc);
        assert_eq!(r.inputs[0].len(), 3);
        assert_eq!(r.inputs[1].len(), 2);
        assert_eq!(r.stats.updates_missed_down, 1);
    }

    #[test]
    fn reordering_becomes_loss_at_the_gate() {
        let mut sc = base_scenario(4);
        sc.workloads[0].updates = 40;
        sc.workloads[0].period = 1;
        sc.front_delay = vec![DelaySpec::Uniform(0, 10)];
        let r = run(sc);
        assert!(r.stats.updates_reordered > 0, "expected overtaking with jittery delays");
        // Gate-discarded updates are missing from the replica's input.
        assert!(r.inputs[0].len() < 40 || r.inputs[1].len() < 40);
        // Received seqnos are strictly increasing per replica.
        for input in &r.inputs {
            let seqs: Vec<u64> = input.iter().map(|u| u.seqno.get()).collect();
            assert!(rcm_core::seq::is_strictly_ordered(&seqs));
        }
    }

    #[test]
    fn ad_outage_buffers_alerts_in_order() {
        // Updates at 0, 10, 20 (delivered +1, alerts back +1 → arrivals
        // at 12 and 22 normally). AD down during [5, 100): everything is
        // buffered and redelivered at 100, still in order.
        let mut sc = base_scenario(11);
        sc.replicas = 1;
        sc.ad_outages = vec![(5, 100)];
        let r = run(sc);
        assert_eq!(r.arrivals.len(), 2);
        let seqs: Vec<u64> = r.arrivals.iter().map(|a| a.seqno(x()).unwrap().get()).collect();
        assert_eq!(seqs, vec![2, 3]);
        for &(sent, arrived) in &r.arrival_times {
            assert_eq!(arrived, 100, "buffered alert must arrive at outage end");
            assert!(arrived > sent);
        }
        assert!(r.mean_alert_latency() > 50.0);
    }

    #[test]
    fn ad_outage_outside_alert_window_changes_nothing() {
        let mut base = base_scenario(12);
        base.replicas = 1;
        let plain = run(base);
        let mut with_outage = base_scenario(12);
        with_outage.replicas = 1;
        with_outage.ad_outages = vec![(500, 600)]; // after everything
        let outaged = run(with_outage);
        assert_eq!(plain.arrivals, outaged.arrivals);
        assert_eq!(plain.arrival_times, outaged.arrival_times);
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_ad_outages_rejected() {
        let mut sc = base_scenario(13);
        sc.ad_outages = vec![(0, 50), (40, 90)];
        run(sc);
    }

    #[test]
    fn latency_is_tracked_without_outages() {
        let r = run(base_scenario(14));
        assert_eq!(r.arrivals.len(), r.arrival_times.len());
        // Back delay is a constant 1 tick.
        assert!(r.arrival_times.iter().all(|&(s, a)| a - s == 1));
        assert_eq!(r.mean_alert_latency(), 1.0);
    }

    #[test]
    fn non_replicated_system_has_one_stream() {
        let mut sc = base_scenario(5);
        sc.replicas = 1;
        let r = run(sc);
        assert_eq!(r.inputs.len(), 1);
        assert_eq!(r.ce_outputs.len(), 1);
        assert_eq!(r.arrivals.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let mut sc = base_scenario(6);
        sc.replicas = 0;
        run(sc);
    }

    #[test]
    #[should_panic(expected = "not in the condition's variable set")]
    fn unknown_workload_variable_rejected() {
        let mut sc = base_scenario(8);
        sc.workloads[0].var = VarId::new(9);
        run(sc);
    }
}
