//! Monte-Carlo reproduction of the paper's property tables.
//!
//! Each cell of Tables 1–3 claims that a property (orderedness,
//! completeness, consistency) is or is not guaranteed for a scenario
//! class (lossless links; lossy links with a non-historical,
//! conservative or aggressive condition) under an AD algorithm. We
//! reproduce the tables empirically:
//!
//! * a **√** cell is validated by finding *zero* violations across many
//!   randomized seeded runs;
//! * an **✗** cell is validated by *finding* a concrete violating run
//!   (whose seed is reported for replay).
//!
//! [`property_matrix`] produces one table; [`paper_expected`] returns
//! the paper's claimed cells so reports can show claimed vs measured.

use std::sync::Arc;

use rcm_core::ad::{apply_filter, Ad1, Ad2, Ad3, Ad4, Ad5, Ad6, AlertFilter, PassThrough};
use rcm_core::condition::{
    Band, Cmp, Condition, Conservative, CrossesLevel, DeltaRise, Or, Threshold,
};
use rcm_core::{Alert, Update, VarId};
use rcm_props::{
    check_complete_multi, check_complete_single, check_consistent_multi, check_consistent_single,
    check_ordered,
};
use serde::{Deserialize, Serialize};

use crate::engine::{run, RunResult};
use crate::report::{Matrix, MatrixCell, MatrixRow};
use crate::scenario::{DelaySpec, LossSpec, Scenario, VarWorkload};
use crate::workload::RandomWalk;

/// The four scenario classes of Tables 1–3, in row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Lossless front links, any condition (rotated per seed).
    Lossless,
    /// Lossy front links, non-historical condition.
    LossyNonHistorical,
    /// Lossy front links, conservatively triggered historical condition.
    LossyConservative,
    /// Lossy front links, aggressively triggered historical condition.
    LossyAggressive,
}

impl ScenarioKind {
    /// All kinds in the tables' row order.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::Lossless,
        ScenarioKind::LossyNonHistorical,
        ScenarioKind::LossyConservative,
        ScenarioKind::LossyAggressive,
    ];

    /// Row label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioKind::Lossless => "Lossless",
            ScenarioKind::LossyNonHistorical => "Lossy Non-his.",
            ScenarioKind::LossyConservative => "Lossy His. Cons.",
            ScenarioKind::LossyAggressive => "Lossy His. Aggr.",
        }
    }
}

/// Single- vs multi-variable systems (Tables 1–2 vs Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// One variable, one DM (paper §3–4).
    SingleVar,
    /// Two variables, two DMs (paper §5).
    MultiVar,
    /// Three variables, three DMs — the paper's §5 analysis "can be
    /// easily extended"; this topology checks that AD-5/AD-6 really do
    /// generalize beyond the two-variable pseudo-code.
    MultiVar3,
}

impl Topology {
    /// Whether this is a multi-variable topology (Appendix C
    /// definitions apply).
    pub fn is_multi(self) -> bool {
        !matches!(self, Topology::SingleVar)
    }
}

/// Which AD algorithm filters the merged alert stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FilterKind {
    /// No filtering at all.
    PassThrough,
    /// Exact duplicate removal (Fig. A-1).
    Ad1,
    /// Single-variable orderedness (Fig. A-2).
    Ad2,
    /// Single-variable consistency (Fig. A-3).
    Ad3,
    /// AD-2 ∧ AD-3 (Fig. A-4).
    Ad4,
    /// Multi-variable orderedness (Fig. A-5).
    Ad5,
    /// AD-5 ∧ multi-variable AD-3 (Fig. A-6).
    Ad6,
}

impl FilterKind {
    /// Display name ("AD-1", …).
    pub fn label(self) -> &'static str {
        match self {
            FilterKind::PassThrough => "pass-through",
            FilterKind::Ad1 => "AD-1",
            FilterKind::Ad2 => "AD-2",
            FilterKind::Ad3 => "AD-3",
            FilterKind::Ad4 => "AD-4",
            FilterKind::Ad5 => "AD-5",
            FilterKind::Ad6 => "AD-6",
        }
    }

    /// Builds a fresh filter instance for a condition over `vars`.
    ///
    /// # Panics
    ///
    /// Panics when a single-variable algorithm (AD-2/3/4) is built for
    /// a multi-variable set.
    pub fn build(self, vars: &[VarId]) -> Box<dyn AlertFilter> {
        match self {
            FilterKind::PassThrough => Box::new(PassThrough::new()),
            FilterKind::Ad1 => Box::new(Ad1::new()),
            FilterKind::Ad2 => {
                assert_eq!(vars.len(), 1, "AD-2 is single-variable");
                Box::new(Ad2::new(vars[0]))
            }
            FilterKind::Ad3 => {
                assert_eq!(vars.len(), 1, "AD-3 is single-variable");
                Box::new(Ad3::new(vars[0]))
            }
            FilterKind::Ad4 => {
                assert_eq!(vars.len(), 1, "AD-4 is single-variable");
                Box::new(Ad4::new(vars[0]))
            }
            FilterKind::Ad5 => Box::new(Ad5::new(vars.iter().copied())),
            FilterKind::Ad6 => Box::new(Ad6::new(vars.iter().copied())),
        }
    }
}

fn x() -> VarId {
    VarId::new(0)
}
fn y() -> VarId {
    VarId::new(1)
}
fn z() -> VarId {
    VarId::new(2)
}

/// Deterministic tiny PRNG for scenario parameter derivation (splitmix64).
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn single_condition(kind: ScenarioKind, seed: u64) -> Arc<dyn Condition> {
    let pick = mix(seed) % 3;
    let non_historical: Arc<dyn Condition> = match pick {
        0 => Arc::new(Threshold::new(x(), Cmp::Gt, 100.0)),
        1 => Arc::new(Threshold::new(x(), Cmp::Lt, 90.0)),
        _ => Arc::new(Band::outside(x(), 80.0, 120.0)),
    };
    let aggressive: Arc<dyn Condition> = match pick {
        0 => Arc::new(DeltaRise::new(x(), 10.0)),
        1 => Arc::new(DeltaRise::new(x(), 20.0)),
        _ => Arc::new(CrossesLevel::new(x(), 100.0)),
    };
    let conservative: Arc<dyn Condition> = match pick {
        0 => Arc::new(Conservative::new(DeltaRise::new(x(), 10.0))),
        1 => Arc::new(Conservative::new(DeltaRise::new(x(), 20.0))),
        _ => Arc::new(Conservative::new(CrossesLevel::new(x(), 100.0))),
    };
    match kind {
        ScenarioKind::Lossless => match mix(seed ^ 0xabcd) % 3 {
            0 => non_historical,
            1 => conservative,
            _ => aggressive,
        },
        ScenarioKind::LossyNonHistorical => non_historical,
        ScenarioKind::LossyConservative => conservative,
        ScenarioKind::LossyAggressive => aggressive,
    }
}

fn multi_condition(kind: ScenarioKind, seed: u64) -> Arc<dyn Condition> {
    let theta = if mix(seed).is_multiple_of(2) { 5.0 } else { 20.0 };
    let delta = if mix(seed ^ 0x11).is_multiple_of(2) { 8.0 } else { 15.0 };
    let non_historical: Arc<dyn Condition> =
        Arc::new(rcm_core::condition::AbsDifference::new(x(), y(), theta));
    let aggressive: Arc<dyn Condition> =
        Arc::new(Or::new(DeltaRise::new(x(), delta), DeltaRise::new(y(), delta)));
    let conservative: Arc<dyn Condition> = Arc::new(Conservative::new(Or::new(
        DeltaRise::new(x(), delta),
        DeltaRise::new(y(), delta),
    )));
    match kind {
        ScenarioKind::Lossless => match mix(seed ^ 0xabcd) % 3 {
            0 => non_historical,
            1 => conservative,
            _ => aggressive,
        },
        ScenarioKind::LossyNonHistorical => non_historical,
        ScenarioKind::LossyConservative => conservative,
        ScenarioKind::LossyAggressive => aggressive,
    }
}

fn multi_condition3(kind: ScenarioKind, seed: u64) -> Arc<dyn Condition> {
    let theta = if mix(seed).is_multiple_of(2) { 5.0 } else { 20.0 };
    let delta = if mix(seed ^ 0x11).is_multiple_of(2) { 8.0 } else { 15.0 };
    let non_historical: Arc<dyn Condition> = Arc::new(Or::new(
        rcm_core::condition::AbsDifference::new(x(), y(), theta),
        rcm_core::condition::AbsDifference::new(y(), z(), theta),
    ));
    let aggressive: Arc<dyn Condition> = Arc::new(Or::new(
        Or::new(DeltaRise::new(x(), delta), DeltaRise::new(y(), delta)),
        DeltaRise::new(z(), delta),
    ));
    let conservative: Arc<dyn Condition> = Arc::new(Conservative::new(Or::new(
        Or::new(DeltaRise::new(x(), delta), DeltaRise::new(y(), delta)),
        DeltaRise::new(z(), delta),
    )));
    match kind {
        ScenarioKind::Lossless => match mix(seed ^ 0xabcd) % 3 {
            0 => non_historical,
            1 => conservative,
            _ => aggressive,
        },
        ScenarioKind::LossyNonHistorical => non_historical,
        ScenarioKind::LossyConservative => conservative,
        ScenarioKind::LossyAggressive => aggressive,
    }
}

fn loss_spec(kind: ScenarioKind, seed: u64, link: u64) -> LossSpec {
    match kind {
        ScenarioKind::Lossless => LossSpec::Lossless,
        _ => match mix(seed ^ (0x77 + link)) % 2 {
            0 => LossSpec::Bernoulli(0.2),
            _ => LossSpec::Burst { target: 0.25, burst_len: 3.0 },
        },
    }
}

/// Builds the randomized scenario for one Monte-Carlo run.
///
/// Lossless scenarios use per-link constant delays (no loss, no
/// reordering — every replica receives everything, though multi-var
/// replicas may see different interleavings, exactly Theorem 10's
/// setting). Lossy scenarios add Bernoulli or burst loss; jittery front
/// delays additionally convert overtaking into loss at the in-order
/// gate, which is still "lossy front links" in the paper's model.
pub fn build_scenario(kind: ScenarioKind, topo: Topology, seed: u64) -> Scenario {
    build_scenario_n(kind, topo, seed, 2)
}

/// [`build_scenario`] with an explicit replica count (1 = the paper's
/// non-replicated system; the paper's two-CE analysis "can be easily
/// extended" to more).
pub fn build_scenario_n(
    kind: ScenarioKind,
    topo: Topology,
    seed: u64,
    replicas: usize,
) -> Scenario {
    let condition: Arc<dyn Condition> = match topo {
        Topology::SingleVar => single_condition(kind, seed),
        Topology::MultiVar => multi_condition(kind, seed),
        Topology::MultiVar3 => multi_condition3(kind, seed),
    };
    let vars = condition.variables();
    let (updates, period) = match topo {
        Topology::SingleVar => (24u64, 10u64),
        Topology::MultiVar => (6u64, 10u64),
        // 9 combined updates keeps the completeness enumeration
        // (multinomial over three streams) tractable.
        Topology::MultiVar3 => (3u64, 10u64),
    };
    let workloads: Vec<VarWorkload> = vars
        .iter()
        .enumerate()
        .map(|(vi, &var)| VarWorkload {
            var,
            updates,
            period,
            offset: (vi as u64) * 3 + mix(seed ^ (0x55 + vi as u64)) % 4,
            model: Box::new(RandomWalk::new(100.0, 25.0, 0.0, 200.0)),
        })
        .collect();

    let links = vars.len() * replicas;
    let front_loss: Vec<LossSpec> = (0..links).map(|l| loss_spec(kind, seed, l as u64)).collect();
    let front_delay: Vec<DelaySpec> = (0..links)
        .map(|l| match kind {
            // Constant per-link delay: lossless AND in-order. Spreads
            // of several update periods give the replicas genuinely
            // different interleavings (Theorem 10's setting).
            ScenarioKind::Lossless => DelaySpec::Constant(1 + mix(seed ^ (0x99 + l as u64)) % 35),
            _ => DelaySpec::Uniform(0, 4),
        })
        .collect();
    // Replica-skewed back delays: one replica's alerts can lag several
    // update periods behind another's, making cross-replica arrival
    // inversions at the AD a regular occurrence rather than a
    // coincidence.
    let back_delay: Vec<DelaySpec> = (0..replicas)
        .map(|c| {
            let base = mix(seed ^ (0x33 + c as u64)) % 40;
            DelaySpec::Uniform(base, base + 25)
        })
        .collect();

    Scenario {
        condition,
        replicas,
        workloads,
        front_loss,
        front_delay,
        back_delay,
        outages: vec![],
        ad_outages: vec![],
        link_salt: 0,
        seed,
    }
}

/// Violation counters for one (scenario class, filter) cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropertyCounts {
    /// Runs executed.
    pub runs: u64,
    /// Runs whose displayed sequence was unordered.
    pub unordered: u64,
    /// Runs whose displayed sequence was incomplete.
    pub incomplete: u64,
    /// Runs whose displayed sequence was inconsistent.
    pub inconsistent: u64,
    /// Seed of the first unordered run.
    pub first_unordered_seed: Option<u64>,
    /// Seed of the first incomplete run.
    pub first_incomplete_seed: Option<u64>,
    /// Seed of the first inconsistent run.
    pub first_inconsistent_seed: Option<u64>,
}

/// Runs one simulation and checks all three properties of the filtered
/// output; returns `(ordered, complete, consistent)`.
pub fn check_run(
    topo: Topology,
    condition: &Arc<dyn Condition>,
    result: &RunResult,
    displayed: &[Alert],
) -> (bool, bool, bool) {
    let vars = condition.variables();
    let ordered = check_ordered(displayed, &vars).ok;
    let inputs: Vec<Vec<Update>> = result.inputs.clone();
    let (complete, consistent) = match topo {
        Topology::SingleVar => (
            check_complete_single(condition, &inputs, displayed).ok,
            check_consistent_single(condition, &inputs, displayed).ok,
        ),
        Topology::MultiVar | Topology::MultiVar3 => (
            check_complete_multi(condition, &inputs, displayed).ok,
            check_consistent_multi(condition, &inputs, displayed).ok,
        ),
    };
    (ordered, complete, consistent)
}

/// Evaluates one table cell: `runs` randomized executions of the
/// scenario class under the filter, with property checks on each.
pub fn evaluate_cell(
    kind: ScenarioKind,
    topo: Topology,
    filter: FilterKind,
    runs: u64,
    base_seed: u64,
) -> PropertyCounts {
    evaluate_cell_n(kind, topo, filter, runs, base_seed, 2)
}

/// The per-run seed for run `i` of a cell evaluated with `base_seed`.
fn run_seed(base_seed: u64, i: u64) -> u64 {
    base_seed.wrapping_add(i.wrapping_mul(0x9e37_79b9))
}

/// One seeded trial: builds the scenario, runs it, filters the
/// arrivals, and checks the three properties. Returns
/// `(ordered, complete, consistent)`.
fn run_property_trial(
    kind: ScenarioKind,
    topo: Topology,
    filter: FilterKind,
    seed: u64,
    replicas: usize,
) -> (bool, bool, bool) {
    let scenario = build_scenario_n(kind, topo, seed, replicas);
    let condition = scenario.condition.clone();
    let vars = condition.variables();
    let result = run(scenario);
    let mut filt = filter.build(&vars);
    let displayed = apply_filter(&mut *filt, &result.arrivals);
    check_run(topo, &condition, &result, &displayed)
}

/// Folds per-run trial outcomes into counters, in run order — the fold
/// is sequential so `first_*_seed` is the genuinely first violating
/// seed regardless of how the trials were executed.
fn fold_trials(
    runs: u64,
    trials: impl IntoIterator<Item = (u64, (bool, bool, bool))>,
) -> PropertyCounts {
    let mut counts = PropertyCounts { runs, ..Default::default() };
    for (seed, (ordered, complete, consistent)) in trials {
        if !ordered {
            counts.unordered += 1;
            counts.first_unordered_seed.get_or_insert(seed);
        }
        if !complete {
            counts.incomplete += 1;
            counts.first_incomplete_seed.get_or_insert(seed);
        }
        if !consistent {
            counts.inconsistent += 1;
            counts.first_inconsistent_seed.get_or_insert(seed);
        }
    }
    counts
}

/// [`evaluate_cell`] with an explicit replica count.
///
/// The `runs` trials execute on the deterministic parallel harness
/// ([`crate::par::map_indexed`]); each trial's seed is a pure function
/// of its index, so the returned counts are identical for any worker
/// count.
pub fn evaluate_cell_n(
    kind: ScenarioKind,
    topo: Topology,
    filter: FilterKind,
    runs: u64,
    base_seed: u64,
    replicas: usize,
) -> PropertyCounts {
    let trials = crate::par::map_indexed(runs as usize, |i| {
        let seed = run_seed(base_seed, i as u64);
        (seed, run_property_trial(kind, topo, filter, seed, replicas))
    });
    fold_trials(runs, trials)
}

/// The paper's claimed cells for a (topology, filter) pair, in
/// [`ScenarioKind::ALL`] row order; each row is
/// `[ordered, complete, consistent]`, `true` = guaranteed (√).
///
/// Sources: Table 1 (AD-1), Table 2 (AD-2), §4.3/§4.4 prose (AD-3 and
/// AD-4 variants), Theorem 10 (multi-variable AD-1), Table 3 (AD-5),
/// §5.2 prose (AD-6).
pub fn paper_expected(topo: Topology, filter: FilterKind) -> Option<[[bool; 3]; 4]> {
    use FilterKind::*;
    use Topology::*;
    let t = true;
    let f = false;
    match (topo, filter) {
        (SingleVar, Ad1) => Some([[t, t, t], [f, t, t], [f, f, t], [f, f, f]]),
        (SingleVar, Ad2) => Some([[t, t, t], [t, f, t], [t, f, t], [t, f, f]]),
        (SingleVar, Ad3) => Some([[t, t, t], [f, t, t], [f, f, t], [f, f, t]]),
        (SingleVar, Ad4) => Some([[t, t, t], [t, f, t], [t, f, t], [t, f, t]]),
        (MultiVar | MultiVar3, Ad1) => Some([[f, f, f], [f, f, f], [f, f, f], [f, f, f]]),
        (MultiVar | MultiVar3, Ad5) => Some([[t, f, t], [t, f, t], [t, f, t], [t, f, f]]),
        (MultiVar | MultiVar3, Ad6) => Some([[t, f, t], [t, f, t], [t, f, t], [t, f, t]]),
        _ => None,
    }
}

/// Produces a full property matrix (one of the paper's tables) by
/// Monte Carlo.
pub fn property_matrix(
    title: &str,
    topo: Topology,
    filter: FilterKind,
    runs: u64,
    base_seed: u64,
) -> Matrix {
    let expected = paper_expected(topo, filter);
    let replicas = 2;
    let per_cell = runs as usize;
    // Flatten the whole (scenario row × run) grid into one indexed job
    // list so the parallel harness balances across rows, not just
    // within a cell. Each job derives its row and its seed purely from
    // the flat index, and the per-row sequential folds below reproduce
    // exactly what per-cell serial loops would have counted.
    let trials = crate::par::map_indexed(ScenarioKind::ALL.len() * per_cell, |j| {
        let ri = j / per_cell.max(1);
        let i = (j % per_cell.max(1)) as u64;
        let kind = ScenarioKind::ALL[ri];
        let seed = run_seed(base_seed ^ (ri as u64) << 32, i);
        (seed, run_property_trial(kind, topo, filter, seed, replicas))
    });
    let rows = ScenarioKind::ALL
        .iter()
        .enumerate()
        .map(|(ri, &kind)| {
            let row_trials = trials[ri * per_cell..(ri + 1) * per_cell].iter().copied();
            let counts = fold_trials(runs, row_trials);
            let exp = expected.map(|e| e[ri]);
            MatrixRow {
                scenario: kind.label().to_owned(),
                cells: [
                    MatrixCell {
                        expected: exp.map(|e| e[0]),
                        violations: counts.unordered,
                        runs,
                        first_seed: counts.first_unordered_seed,
                    },
                    MatrixCell {
                        expected: exp.map(|e| e[1]),
                        violations: counts.incomplete,
                        runs,
                        first_seed: counts.first_incomplete_seed,
                    },
                    MatrixCell {
                        expected: exp.map(|e| e[2]),
                        violations: counts.inconsistent,
                        runs,
                        first_seed: counts.first_inconsistent_seed,
                    },
                ],
            }
        })
        .collect();
    Matrix { title: title.to_owned(), filter: filter.label().to_owned(), rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RUNS: u64 = 25;

    #[test]
    fn lossless_single_ad1_has_no_violations() {
        let c =
            evaluate_cell(ScenarioKind::Lossless, Topology::SingleVar, FilterKind::Ad1, RUNS, 11);
        assert_eq!((c.unordered, c.incomplete, c.inconsistent), (0, 0, 0), "{c:?}");
    }

    #[test]
    fn lossy_aggressive_ad1_finds_all_three_violations() {
        let c = evaluate_cell(
            ScenarioKind::LossyAggressive,
            Topology::SingleVar,
            FilterKind::Ad1,
            60,
            22,
        );
        assert!(c.unordered > 0, "{c:?}");
        assert!(c.incomplete > 0, "{c:?}");
        assert!(c.inconsistent > 0, "{c:?}");
        assert!(c.first_inconsistent_seed.is_some());
    }

    #[test]
    fn ad2_always_ordered_ad3_always_consistent() {
        for kind in ScenarioKind::ALL {
            let c2 = evaluate_cell(kind, Topology::SingleVar, FilterKind::Ad2, RUNS, 33);
            assert_eq!(c2.unordered, 0, "AD-2 unordered under {kind:?}");
            let c3 = evaluate_cell(kind, Topology::SingleVar, FilterKind::Ad3, RUNS, 44);
            assert_eq!(c3.inconsistent, 0, "AD-3 inconsistent under {kind:?}");
            let c4 = evaluate_cell(kind, Topology::SingleVar, FilterKind::Ad4, RUNS, 55);
            assert_eq!(c4.unordered + c4.inconsistent, 0, "AD-4 violated under {kind:?}");
        }
    }

    #[test]
    fn multi_var_ad5_ordered_ad6_consistent() {
        for kind in ScenarioKind::ALL {
            let c5 = evaluate_cell(kind, Topology::MultiVar, FilterKind::Ad5, 15, 66);
            assert_eq!(c5.unordered, 0, "AD-5 unordered under {kind:?}");
            let c6 = evaluate_cell(kind, Topology::MultiVar, FilterKind::Ad6, 15, 77);
            assert_eq!(c6.unordered + c6.inconsistent, 0, "AD-6 violated under {kind:?}");
        }
    }

    #[test]
    fn three_variable_systems_keep_the_guarantees() {
        for kind in [ScenarioKind::Lossless, ScenarioKind::LossyAggressive] {
            let c5 = evaluate_cell(kind, Topology::MultiVar3, FilterKind::Ad5, 10, 88);
            assert_eq!(c5.unordered, 0, "AD-5 unordered under {kind:?} with 3 vars");
            let c6 = evaluate_cell(kind, Topology::MultiVar3, FilterKind::Ad6, 10, 99);
            assert_eq!(
                c6.unordered + c6.inconsistent,
                0,
                "AD-6 violated under {kind:?} with 3 vars"
            );
        }
    }

    #[test]
    fn single_replica_never_violates_anything() {
        // replicas = 1 is the paper's corresponding non-replicated
        // system: every property holds by construction.
        for filter in [FilterKind::PassThrough, FilterKind::Ad1] {
            let c = evaluate_cell_n(
                ScenarioKind::LossyAggressive,
                Topology::SingleVar,
                filter,
                40,
                123,
                1,
            );
            assert_eq!((c.unordered, c.incomplete, c.inconsistent), (0, 0, 0), "{filter:?}: {c:?}");
        }
    }

    #[test]
    fn more_replicas_expose_more_inconsistency_under_ad1() {
        let two = evaluate_cell_n(
            ScenarioKind::LossyAggressive,
            Topology::SingleVar,
            FilterKind::Ad1,
            40,
            7,
            2,
        );
        let four = evaluate_cell_n(
            ScenarioKind::LossyAggressive,
            Topology::SingleVar,
            FilterKind::Ad1,
            40,
            7,
            4,
        );
        assert!(
            four.inconsistent >= two.inconsistent,
            "four replicas {} < two replicas {}",
            four.inconsistent,
            two.inconsistent
        );
        // AD-4 keeps its guarantees regardless of the replica count.
        let four_ad4 = evaluate_cell_n(
            ScenarioKind::LossyAggressive,
            Topology::SingleVar,
            FilterKind::Ad4,
            40,
            7,
            4,
        );
        assert_eq!(four_ad4.unordered + four_ad4.inconsistent, 0);
    }

    #[test]
    fn scenario_building_is_deterministic() {
        let a = build_scenario(ScenarioKind::LossyAggressive, Topology::SingleVar, 9);
        let b = build_scenario(ScenarioKind::LossyAggressive, Topology::SingleVar, 9);
        assert_eq!(a.condition.name(), b.condition.name());
        assert_eq!(a.front_loss, b.front_loss);
        assert_eq!(a.front_delay, b.front_delay);
        let ra = run(a);
        let rb = run(b);
        assert_eq!(ra.arrivals, rb.arrivals);
    }

    #[test]
    fn filter_kinds_build_and_label() {
        let single = [x()];
        let multi = [x(), y()];
        for fk in [
            FilterKind::PassThrough,
            FilterKind::Ad1,
            FilterKind::Ad2,
            FilterKind::Ad3,
            FilterKind::Ad4,
        ] {
            let f = fk.build(&single);
            assert!(!f.name().is_empty());
        }
        for fk in [FilterKind::Ad5, FilterKind::Ad6] {
            let f = fk.build(&multi);
            assert!(!f.name().is_empty());
        }
        assert_eq!(FilterKind::Ad1.label(), "AD-1");
    }

    #[test]
    #[should_panic(expected = "single-variable")]
    fn ad2_rejects_multi_var() {
        FilterKind::Ad2.build(&[x(), y()]);
    }

    #[test]
    fn expected_tables_shape() {
        let t1 = paper_expected(Topology::SingleVar, FilterKind::Ad1).unwrap();
        assert_eq!(t1[0], [true, true, true]);
        assert_eq!(t1[3], [false, false, false]);
        assert!(paper_expected(Topology::SingleVar, FilterKind::Ad5).is_none());
    }

    #[test]
    fn evaluate_cell_is_identical_for_any_thread_count() {
        let cell = |threads| {
            crate::par::with_threads(threads, || {
                evaluate_cell(
                    ScenarioKind::LossyAggressive,
                    Topology::SingleVar,
                    FilterKind::Ad1,
                    30,
                    22,
                )
            })
        };
        let serial = cell(1);
        for threads in [2, 3, 8] {
            assert_eq!(cell(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn property_matrix_is_bit_identical_serial_vs_parallel() {
        let matrix = |threads| {
            crate::par::with_threads(threads, || {
                property_matrix("Table 1", Topology::SingleVar, FilterKind::Ad1, 8, 0x5eed)
            })
        };
        let serial = matrix(1);
        for threads in [2, 7] {
            assert_eq!(matrix(threads), serial, "threads = {threads}");
        }
        let json = serde_json::to_string(&serial).unwrap();
        assert_eq!(json, serde_json::to_string(&matrix(6)).unwrap(), "wire form diverged");
    }
}
