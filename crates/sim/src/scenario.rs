//! Scenario descriptions: everything a simulation run depends on.

use std::fmt;
use std::sync::Arc;

use rcm_core::condition::Condition;
use rcm_core::VarId;
use rcm_net::{
    Bernoulli, ConstantDelay, DelayModel, ExponentialDelay, GilbertElliott, LossModel, Lossless,
    UniformDelay,
};
use serde::{Deserialize, Serialize};

use crate::event::SimTime;
use crate::workload::ValueModel;

/// Serializable loss-model specification; [`LossSpec::build`] turns it
/// into a live model (one instance per front link).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LossSpec {
    /// Never drop ([`Lossless`]).
    Lossless,
    /// Independent drops with the given probability ([`Bernoulli`]).
    Bernoulli(f64),
    /// Gilbert–Elliott bursts with the given target rate and mean burst
    /// length ([`GilbertElliott::bursty`]).
    Burst {
        /// Long-run loss rate.
        target: f64,
        /// Mean burst length in messages.
        burst_len: f64,
    },
    /// Drop exactly these 0-based per-link message positions
    /// ([`rcm_net::Scripted`]).
    Scripted(Vec<u64>),
}

impl LossSpec {
    /// Instantiates the model.
    pub fn build(&self) -> Box<dyn LossModel> {
        match self {
            LossSpec::Lossless => Box::new(Lossless),
            LossSpec::Bernoulli(p) => Box::new(Bernoulli::new(*p)),
            LossSpec::Burst { target, burst_len } => {
                Box::new(GilbertElliott::bursty(*target, *burst_len))
            }
            LossSpec::Scripted(positions) => {
                Box::new(rcm_net::Scripted::new(positions.iter().copied()))
            }
        }
    }
}

/// Serializable delay-model specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DelaySpec {
    /// Fixed delay.
    Constant(u64),
    /// Uniform delay in `[min, max]`.
    Uniform(u64, u64),
    /// Base plus geometric tail with the given mean.
    Exponential {
        /// Fixed component.
        base: u64,
        /// Mean of the random tail.
        mean: f64,
    },
}

impl DelaySpec {
    /// Instantiates the model.
    pub fn build(&self) -> Box<dyn DelayModel> {
        match self {
            DelaySpec::Constant(t) => Box::new(ConstantDelay::new(*t)),
            DelaySpec::Uniform(lo, hi) => Box::new(UniformDelay::new(*lo, *hi)),
            DelaySpec::Exponential { base, mean } => Box::new(ExponentialDelay::new(*base, *mean)),
        }
    }
}

/// One Data Monitor's workload: how many updates it emits, how often,
/// and the value process driving it.
pub struct VarWorkload {
    /// The monitored variable.
    pub var: VarId,
    /// Number of updates to emit.
    pub updates: u64,
    /// Ticks between consecutive emissions.
    pub period: SimTime,
    /// Tick of the first emission.
    pub offset: SimTime,
    /// Value process (boxed; constructed fresh per run from the
    /// scenario builder).
    pub model: Box<dyn ValueModel>,
}

impl fmt::Debug for VarWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VarWorkload")
            .field("var", &self.var)
            .field("updates", &self.updates)
            .field("period", &self.period)
            .field("offset", &self.offset)
            .field("model", &self.model)
            .finish()
    }
}

/// A Condition Evaluator outage: the replica is down during
/// `[from, to)` — it misses all updates delivered in that window and
/// loses its in-memory histories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outage {
    /// Affected replica index.
    pub ce: usize,
    /// First tick of the outage.
    pub from: SimTime,
    /// First tick after the outage.
    pub to: SimTime,
}

/// A complete, replayable simulation input.
///
/// Per-link loss/delay specs: the front-link models are instantiated
/// per `(variable, replica)` pair — index `var_index * replicas + ce` —
/// falling back to the last entry when fewer specs than links are
/// given (so a single entry configures every link uniformly).
pub struct Scenario {
    /// The monitored condition.
    pub condition: Arc<dyn Condition>,
    /// Number of Condition Evaluator replicas (1 = the paper's
    /// non-replicated system).
    pub replicas: usize,
    /// One workload per variable in the condition's variable set.
    pub workloads: Vec<VarWorkload>,
    /// Front-link loss specs (see struct docs for indexing).
    pub front_loss: Vec<LossSpec>,
    /// Front-link delay specs (same indexing).
    pub front_delay: Vec<DelaySpec>,
    /// Back-link delay specs, one per replica (same fallback rule).
    pub back_delay: Vec<DelaySpec>,
    /// Replica outages.
    pub outages: Vec<Outage>,
    /// Alert Displayer outages (`[from, to)` windows): while the AD is
    /// off (the paper's powered-down PDA), alerts are buffered — the
    /// back links are reliable and stateful — and delivered, still in
    /// order, when the window ends.
    pub ad_outages: Vec<(SimTime, SimTime)>,
    /// Master seed; all randomness in the run derives from it. DM
    /// values are drawn from a stream seeded by `seed` alone, and link
    /// behaviour from `seed ^ link_salt` — so two scenarios sharing a
    /// seed but differing in salt observe the *same* real-world
    /// variables over *independent* links (the multi-condition
    /// construction of Appendix D).
    pub seed: u64,
    /// Salt for the link-randomness stream (see `seed`). Zero for
    /// single-condition systems.
    pub link_salt: u64,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("condition", &self.condition.name())
            .field("replicas", &self.replicas)
            .field("workloads", &self.workloads)
            .field("front_loss", &self.front_loss)
            .field("front_delay", &self.front_delay)
            .field("back_delay", &self.back_delay)
            .field("outages", &self.outages)
            .field("ad_outages", &self.ad_outages)
            .field("seed", &self.seed)
            .field("link_salt", &self.link_salt)
            .finish()
    }
}

impl Scenario {
    /// The loss spec for the front link from `var_index`'s DM to
    /// replica `ce`.
    pub(crate) fn front_loss_for(&self, var_index: usize, ce: usize) -> &LossSpec {
        pick(&self.front_loss, var_index * self.replicas + ce)
    }

    /// The delay spec for the same link.
    pub(crate) fn front_delay_for(&self, var_index: usize, ce: usize) -> &DelaySpec {
        pick(&self.front_delay, var_index * self.replicas + ce)
    }

    /// The delay spec for replica `ce`'s back link.
    pub(crate) fn back_delay_for(&self, ce: usize) -> &DelaySpec {
        pick(&self.back_delay, ce)
    }
}

fn pick<T>(list: &[T], index: usize) -> &T {
    assert!(!list.is_empty(), "scenario spec lists must not be empty");
    list.get(index).unwrap_or_else(|| list.last().expect("non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn specs_build_models() {
        let mut r = ChaCha8Rng::seed_from_u64(0);
        assert!(!LossSpec::Lossless.build().drops(&mut r));
        assert!(LossSpec::Bernoulli(1.0).build().drops(&mut r));
        let mut scripted = LossSpec::Scripted(vec![0]).build();
        assert!(scripted.drops(&mut r));
        assert!(!scripted.drops(&mut r));
        let _ = LossSpec::Burst { target: 0.1, burst_len: 4.0 }.build();
        assert_eq!(DelaySpec::Constant(5).build().sample(&mut r), 5);
        let d = DelaySpec::Uniform(1, 3).build().sample(&mut r);
        assert!((1..=3).contains(&d));
        let _ = DelaySpec::Exponential { base: 1, mean: 4.0 }.build();
    }

    #[test]
    fn spec_indexing_falls_back_to_last() {
        let sc = Scenario {
            condition: Arc::new(rcm_core::condition::Threshold::new(
                VarId::new(0),
                rcm_core::condition::Cmp::Gt,
                0.0,
            )),
            replicas: 2,
            workloads: vec![],
            front_loss: vec![LossSpec::Lossless, LossSpec::Bernoulli(0.5)],
            front_delay: vec![DelaySpec::Constant(1)],
            back_delay: vec![DelaySpec::Constant(0)],
            outages: vec![],
            ad_outages: vec![],
            link_salt: 0,
            seed: 0,
        };
        assert_eq!(*sc.front_loss_for(0, 0), LossSpec::Lossless);
        assert_eq!(*sc.front_loss_for(0, 1), LossSpec::Bernoulli(0.5));
        // Out-of-range indices reuse the last entry.
        assert_eq!(*sc.front_loss_for(3, 1), LossSpec::Bernoulli(0.5));
        assert_eq!(*sc.front_delay_for(1, 1), DelaySpec::Constant(1));
        assert_eq!(*sc.back_delay_for(7), DelaySpec::Constant(0));
    }

    #[test]
    fn specs_serialize_roundtrip() {
        let spec = LossSpec::Burst { target: 0.2, burst_len: 3.0 };
        let json = serde_json::to_string(&spec).unwrap();
        assert_eq!(serde_json::from_str::<LossSpec>(&json).unwrap(), spec);
        let d = DelaySpec::Exponential { base: 2, mean: 7.5 };
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(serde_json::from_str::<DelaySpec>(&json).unwrap(), d);
    }
}
