//! # rcm-sim — deterministic simulator for replicated condition
//! monitoring
//!
//! A seeded discrete-event simulator of the paper's full system: Data
//! Monitors emitting synthetic update streams, replicated Condition
//! Evaluators fed over lossy in-order front links, and an Alert
//! Displayer receiving the replicas' alert streams over reliable FIFO
//! back links. Every run is a pure function of its [`Scenario`]
//! (including the seed), so any property violation found by the
//! Monte-Carlo harness is replayable.
//!
//! The [`montecarlo`] module regenerates the paper's Tables 1–3 (and
//! the AD-3/AD-4/AD-6 variants described in prose): for each scenario
//! class (lossless links; lossy links with non-historical, conservative
//! or aggressive conditions) it runs many randomized executions,
//! applies an AD algorithm to the merged alert arrivals, and checks the
//! three properties with the exact deciders from `rcm-props`. A √ cell
//! means zero violations across the run budget; an ✗ cell reports the
//! violation count and a replay seed. Cell runs and the table grid
//! execute on the deterministic parallel harness in [`par`]: the
//! `Matrix` produced for a base seed is bit-identical for any worker
//! count (`RCM_THREADS` or [`par::with_threads`] control it).
//!
//! The [`availability`] module runs the motivating experiment of the
//! paper's Figure 1: how replication reduces the probability that a
//! critical alert is missed when Condition Evaluators crash or links
//! drop updates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod availability;
mod engine;
mod event;
pub mod montecarlo;
pub mod multicond;
pub mod par;
pub mod report;
mod scenario;
pub mod shard;
mod spec;
mod workload;

pub use engine::{run, RunResult, RunStats};
pub use event::{EventQueue, SimTime};
pub use scenario::{DelaySpec, LossSpec, Outage, Scenario, VarWorkload};
pub use spec::{ScenarioSpec, WorkloadSpec};
pub use workload::{RandomWalk, Scripted, SineNoise, Spikes, ValueModel, ValueSpec};
