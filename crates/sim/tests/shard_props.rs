//! Property pin for the sharded multi-condition engine: for random
//! condition families, random update streams (with seqno gaps and stale
//! duplicates), any shard count and any worker-thread count,
//! [`ShardedRegistry`] is byte-identical to the unsharded
//! [`ConditionRegistry`] — whether fed one big batch or one update at a
//! time — which is itself pinned to a loop of independent
//! [`Evaluator`]s.

use proptest::prelude::*;

use rcm_core::condition::expr::CompiledCondition;
use rcm_core::condition::Condition;
use rcm_core::{CeId, CondId, ConditionRegistry, Evaluator, Update, VarId, VarRegistry};
use rcm_sim::par::with_threads;
use rcm_sim::shard::ShardedRegistry;

const VARS: [&str; 2] = ["x", "y"];

/// Condition sources drawn from the paper's family: thresholds,
/// conservative deltas, and a two-variable sum.
fn source() -> impl Strategy<Value = String> {
    prop_oneof![
        (0..VARS.len(), -20i64..20).prop_map(|(v, t)| format!("{}[0].value > {t}", VARS[v])),
        (0..VARS.len(), 0i64..10).prop_map(|(v, t)| {
            format!("{0}[0].value - {0}[-1].value > {t} && consecutive({0})", VARS[v])
        }),
        (-30i64..30).prop_map(|t| format!("x[0].value + y[0].value > {t}")),
    ]
}

/// Stream steps: `(variable, seqno gap, value)` — gap 0 re-sends the
/// previous seqno (stale duplicate), ≥2 models loss.
fn stream() -> impl Strategy<Value = Vec<(usize, u64, f64)>> {
    prop::collection::vec((0..VARS.len(), 0u64..4, -50.0f64..50.0), 0..60)
}

fn updates(steps: &[(usize, u64, f64)], ids: &[VarId]) -> Vec<Update> {
    let mut next: Vec<u64> = vec![1; ids.len()];
    let mut out = Vec::with_capacity(steps.len());
    for &(v, gap, value) in steps {
        let seqno = if gap == 0 { next[v].saturating_sub(1).max(1) } else { next[v] + gap - 1 };
        next[v] = next[v].max(seqno + 1);
        out.push(Update::new(ids[v], seqno, value));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_matches_unsharded_and_evaluators(
        sources in prop::collection::vec(source(), 1..8),
        steps in stream(),
        shards in 1usize..6,
        threads in 1usize..5,
    ) {
        let mut vars = VarRegistry::new();
        let ids: Vec<VarId> = VARS.iter().map(|n| vars.register(n)).collect();
        let conds: Vec<CompiledCondition> = sources
            .iter()
            .map(|s| CompiledCondition::compile(s, &mut vars).unwrap())
            .collect();
        let stream = updates(&steps, &ids);
        let ce = CeId::new(4);

        // Reference 1: the unsharded registry.
        let mut plain = ConditionRegistry::new(ce);
        for c in &conds {
            plain.add_compiled(c.clone());
        }
        let mut want = Vec::new();
        plain.ingest_batch(&stream, &mut want);

        // Reference 2: independent evaluators (the paper's model).
        let mut evs: Vec<Evaluator<CompiledCondition>> = conds
            .iter()
            .enumerate()
            .map(|(i, c)| Evaluator::with_ids(c.clone(), CondId::new(i as u32), ce))
            .collect();
        let mut independent = Vec::new();
        for &u in &stream {
            for (ci, ev) in evs.iter_mut().enumerate() {
                if conds[ci].variables().contains(&u.var) {
                    if let Ok(Some(a)) = ev.try_ingest(u) {
                        independent.push(a);
                    }
                }
            }
        }
        prop_assert_eq!(&want, &independent);

        // Sharded, one big batch, under the drawn thread count.
        let batched = with_threads(threads, || {
            let mut reg = ShardedRegistry::from_compiled(ce, conds.iter().cloned(), shards);
            let mut out = Vec::new();
            reg.ingest_batch(&stream, &mut out);
            out
        });
        prop_assert_eq!(batched.len(), want.len());
        for (g, w) in batched.iter().zip(&want) {
            prop_assert_eq!(g, w);
            prop_assert_eq!(g.id, w.id);
            prop_assert_eq!(&g.snapshot[..], &w.snapshot[..]);
        }

        // Sharded, one update at a time (singleton batches).
        let stepped = with_threads(threads, || {
            let mut reg = ShardedRegistry::from_compiled(ce, conds.iter().cloned(), shards);
            let mut out = Vec::new();
            for u in &stream {
                reg.ingest_batch(std::slice::from_ref(u), &mut out);
            }
            out
        });
        prop_assert_eq!(&stepped, &batched);
        for (g, w) in stepped.iter().zip(&batched) {
            prop_assert_eq!(g.id, w.id);
        }
    }
}
