//! Packet-loss models for front links.

use std::collections::BTreeSet;
use std::fmt;

use rand::RngCore;

/// Decides, per transmitted message, whether the link drops it.
///
/// Models are stateful (burst models track channel state; scripted
/// models count packets) and draw randomness only from the RNG passed
/// in, keeping executions replayable.
pub trait LossModel: fmt::Debug + Send {
    /// Samples whether the next message is dropped.
    fn drops(&mut self, rng: &mut dyn RngCore) -> bool;

    /// Restores the model's initial state.
    fn reset(&mut self);
}

/// Never drops anything (the paper's "lossless front links" scenario,
/// Theorem 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct Lossless;

impl LossModel for Lossless {
    fn drops(&mut self, _rng: &mut dyn RngCore) -> bool {
        false
    }

    fn reset(&mut self) {}
}

/// Drops each message independently with probability `p`.
#[derive(Debug, Clone, Copy)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0, 1]");
        Bernoulli { p }
    }

    /// The per-message drop probability.
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl LossModel for Bernoulli {
    fn drops(&mut self, rng: &mut dyn RngCore) -> bool {
        // Uniform in [0, 1) from 53 random bits.
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < self.p
    }

    fn reset(&mut self) {}
}

/// Two-state Gilbert–Elliott burst-loss model: the channel alternates
/// between a *good* state (low loss) and a *bad* state (high loss),
/// producing the bursty losses typical of congested or wireless links —
/// the situation that makes two replicas miss *different* runs of
/// updates and exercises the paper's consistency machinery hardest.
#[derive(Debug, Clone, Copy)]
pub struct GilbertElliott {
    /// P(good → bad) per message.
    p_enter_bad: f64,
    /// P(bad → good) per message.
    p_leave_bad: f64,
    /// Drop probability in the good state.
    loss_good: f64,
    /// Drop probability in the bad state.
    loss_bad: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// Creates the model; all four parameters are probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is outside `[0, 1]`.
    pub fn new(p_enter_bad: f64, p_leave_bad: f64, loss_good: f64, loss_bad: f64) -> Self {
        for (name, v) in [
            ("p_enter_bad", p_enter_bad),
            ("p_leave_bad", p_leave_bad),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0, 1]");
        }
        GilbertElliott { p_enter_bad, p_leave_bad, loss_good, loss_bad, in_bad: false }
    }

    /// A typical bursty profile: mostly clean, occasional loss bursts
    /// averaging `burst_len` messages, with overall loss rate roughly
    /// `target` for small targets.
    pub fn bursty(target: f64, burst_len: f64) -> Self {
        assert!(burst_len >= 1.0, "burst length must be at least 1");
        let p_leave_bad = 1.0 / burst_len;
        let p_enter_bad = (target * p_leave_bad / (1.0 - target).max(1e-9)).min(1.0);
        GilbertElliott::new(p_enter_bad, p_leave_bad, 0.0, 1.0)
    }

    fn uniform(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl LossModel for GilbertElliott {
    fn drops(&mut self, rng: &mut dyn RngCore) -> bool {
        // State transition first, then loss draw in the new state.
        if self.in_bad {
            if Self::uniform(rng) < self.p_leave_bad {
                self.in_bad = false;
            }
        } else if Self::uniform(rng) < self.p_enter_bad {
            self.in_bad = true;
        }
        let p = if self.in_bad { self.loss_bad } else { self.loss_good };
        Self::uniform(rng) < p
    }

    fn reset(&mut self) {
        self.in_bad = false;
    }
}

/// Drops exactly the messages at the given zero-based positions —
/// deterministic loss for reproducing the paper's worked examples
/// ("CE2 misses update 2").
#[derive(Debug, Clone, Default)]
pub struct Scripted {
    drop_at: BTreeSet<u64>,
    sent: u64,
}

impl Scripted {
    /// Creates a model dropping the messages at `positions` (0-based,
    /// counted per link).
    pub fn new(positions: impl IntoIterator<Item = u64>) -> Self {
        Scripted { drop_at: positions.into_iter().collect(), sent: 0 }
    }
}

impl LossModel for Scripted {
    fn drops(&mut self, _rng: &mut dyn RngCore) -> bool {
        let idx = self.sent;
        self.sent += 1;
        self.drop_at.contains(&idx)
    }

    fn reset(&mut self) {
        self.sent = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn lossless_never_drops() {
        let mut m = Lossless;
        let mut r = rng(1);
        assert!((0..1000).all(|_| !m.drops(&mut r)));
    }

    #[test]
    fn bernoulli_rate_is_approximately_p() {
        let mut m = Bernoulli::new(0.3);
        let mut r = rng(42);
        let drops = (0..20_000).filter(|_| m.drops(&mut r)).count();
        let rate = drops as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng(7);
        let mut all = Bernoulli::new(1.0);
        assert!((0..100).all(|_| all.drops(&mut r)));
        let mut none = Bernoulli::new(0.0);
        assert!((0..100).all(|_| !none.drops(&mut r)));
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn bernoulli_rejects_bad_probability() {
        Bernoulli::new(1.5);
    }

    #[test]
    fn gilbert_elliott_produces_bursts() {
        let mut m = GilbertElliott::new(0.02, 0.25, 0.0, 1.0);
        let mut r = rng(3);
        let outcomes: Vec<bool> = (0..50_000).map(|_| m.drops(&mut r)).collect();
        // Count runs of consecutive drops; burst model should produce
        // mean run length well above 1 (1 / p_leave_bad = 4-ish).
        let mut runs = Vec::new();
        let mut cur = 0usize;
        for &d in &outcomes {
            if d {
                cur += 1;
            } else if cur > 0 {
                runs.push(cur);
                cur = 0;
            }
        }
        if cur > 0 {
            runs.push(cur);
        }
        let mean = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
        assert!(mean > 2.0, "mean burst length {mean}");
    }

    #[test]
    fn gilbert_elliott_bursty_hits_target_rate() {
        let mut m = GilbertElliott::bursty(0.1, 4.0);
        let mut r = rng(9);
        let drops = (0..100_000).filter(|_| m.drops(&mut r)).count();
        let rate = drops as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.03, "rate = {rate}");
    }

    #[test]
    fn scripted_drops_exact_positions() {
        let mut m = Scripted::new([1, 3]);
        let mut r = rng(0);
        let pattern: Vec<bool> = (0..5).map(|_| m.drops(&mut r)).collect();
        assert_eq!(pattern, vec![false, true, false, true, false]);
        m.reset();
        assert!(!m.drops(&mut r)); // counting restarts
    }

    #[test]
    fn reset_restores_burst_state() {
        let mut m = GilbertElliott::new(1.0, 0.0, 0.0, 1.0); // enters bad immediately, never leaves
        let mut r = rng(5);
        assert!(m.drops(&mut r));
        m.reset();
        // Deterministically re-enters bad, but the point is in_bad was cleared.
        assert!(m.drops(&mut r));
    }
}
