//! Reconnect backoff schedules for lossless back links.
//!
//! The paper's back links are "in-order and lossless", which a real
//! deployment obtains from a connection-oriented protocol — and
//! connections drop. A reconnecting sender must not hammer a recovering
//! Alert Displayer, so retry delays grow exponentially up to a cap,
//! with deterministic seeded jitter to de-synchronize replicas that
//! lost the same link at the same instant. Every schedule is a pure
//! function of `(base, cap, seed)`, so fault-injection runs replay
//! exactly.

use std::fmt;
use std::time::Duration;

/// splitmix64: the same tiny deterministic mixer the simulator uses for
/// scenario derivation. Good enough for jitter; not for cryptography.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Capped exponential backoff with deterministic seeded jitter.
///
/// Attempt `i` (zero-based) nominally waits `base << i`, saturating at
/// `cap`; the actual delay is jittered into `[nominal/2, nominal)` by a
/// seeded splitmix64 stream, so two schedules with the same parameters
/// and seed produce identical delay sequences.
///
/// ```rust
/// use rcm_net::Backoff;
/// use std::time::Duration;
/// let mut a = Backoff::new(Duration::from_millis(1), Duration::from_millis(8), 7);
/// let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(8), 7);
/// let delays: Vec<_> = (0..6).map(|_| a.next_delay()).collect();
/// assert_eq!(delays, (0..6).map(|_| b.next_delay()).collect::<Vec<_>>());
/// assert!(delays.iter().all(|d| *d < Duration::from_millis(8)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    seed: u64,
    attempt: u32,
}

impl Backoff {
    /// Creates a schedule; the first [`Backoff::next_delay`] is jittered
    /// from `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero or `cap < base`: a zero base would spin
    /// and an inverted cap silently truncates the first delay.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        assert!(!base.is_zero(), "backoff base must be non-zero");
        assert!(cap >= base, "backoff cap must be at least the base");
        Backoff { base, cap, seed, attempt: 0 }
    }

    /// The delay before the next reconnect attempt; successive calls
    /// walk the exponential schedule.
    pub fn next_delay(&mut self) -> Duration {
        let nominal = self.nominal(self.attempt);
        // Jitter factor in [0.5, 1.0): a fresh splitmix64 draw per
        // attempt, seeded so the whole schedule replays.
        let bits = mix(self.seed ^ u64::from(self.attempt).wrapping_mul(0x9e37_79b9));
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
        self.attempt = self.attempt.saturating_add(1);
        nominal.mul_f64(0.5 + 0.5 * unit)
    }

    /// Attempts scheduled so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Restores the schedule to attempt zero (after a successful
    /// reconnect).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// The nominal (un-jittered) delay of attempt `i`, for reporting.
    ///
    /// The exponent is capped *before* the shift: past
    /// [`Backoff::cap_exponent`] every nominal is `cap` anyway, and an
    /// uncapped `1u32 << i` debug-panics at `i >= 32` — reachable by a
    /// link that stays severed through a long soak.
    pub fn nominal(&self, i: u32) -> Duration {
        self.base.saturating_mul(1u32 << i.min(self.cap_exponent())).min(self.cap)
    }

    /// Smallest exponent whose un-jittered delay already reaches `cap`,
    /// clamped to 31 (the largest shift that cannot overflow the `u32`
    /// multiplier). Attempts at or past this exponent all wait `cap`
    /// (or `base << 31`, whichever is smaller).
    fn cap_exponent(&self) -> u32 {
        // `cap >= base > 0` is a constructor invariant, so the ratio is
        // at least 1 and `ilog2` cannot panic.
        let ratio = self.cap.as_nanos() / self.base.as_nanos().max(1);
        let exact = ratio.is_power_of_two();
        (ratio.ilog2() + u32::from(!exact)).min(31)
    }
}

impl fmt::Display for Backoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "backoff({:?}..{:?}, attempt {})", self.base, self.cap, self.attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = Backoff::new(ms(2), ms(50), 42);
        let mut b = Backoff::new(ms(2), ms(50), 42);
        for i in 0..10 {
            assert_eq!(a.next_delay(), b.next_delay(), "attempt {i}");
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let mut a = Backoff::new(ms(2), ms(50), 1);
        let mut b = Backoff::new(ms(2), ms(50), 2);
        let da: Vec<_> = (0..8).map(|_| a.next_delay()).collect();
        let db: Vec<_> = (0..8).map(|_| b.next_delay()).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn delays_stay_within_jittered_envelope() {
        let mut b = Backoff::new(ms(1), ms(16), 9);
        for i in 0..12 {
            let nominal = b.nominal(i);
            let d = b.next_delay();
            assert!(d >= nominal.mul_f64(0.5), "attempt {i}: {d:?} < half of {nominal:?}");
            assert!(d < nominal, "attempt {i}: {d:?} >= {nominal:?}");
        }
    }

    #[test]
    fn nominal_doubles_then_caps() {
        let b = Backoff::new(ms(1), ms(8), 0);
        assert_eq!(b.nominal(0), ms(1));
        assert_eq!(b.nominal(1), ms(2));
        assert_eq!(b.nominal(2), ms(4));
        assert_eq!(b.nominal(3), ms(8));
        assert_eq!(b.nominal(10), ms(8));
        assert_eq!(b.nominal(60), ms(8)); // exponent capped, no overflow
    }

    #[test]
    fn nominal_exponent_caps_before_the_shift() {
        // A huge cap/base ratio pushes the raw exponent far past 31;
        // the clamp must absorb the u32 shift boundary and beyond.
        let b = Backoff::new(Duration::from_nanos(1), Duration::from_secs(3600), 0);
        assert_eq!(b.nominal(31), Duration::from_nanos(1 << 31));
        for i in [32, 33, 63, u32::MAX] {
            assert_eq!(b.nominal(i), b.nominal(31), "attempt {i}");
        }
    }

    #[test]
    fn nominal_is_monotone_and_reaches_the_cap_exactly() {
        // ratio 40/3 rounds up to exponent 4: nominal(4) = 48ms, capped
        // to 40ms; everything past it holds there.
        let b = Backoff::new(ms(3), ms(40), 0);
        let mut prev = Duration::ZERO;
        for i in 0..64 {
            let n = b.nominal(i);
            assert!(n >= prev, "attempt {i}: {n:?} < {prev:?}");
            prev = n;
        }
        assert_eq!(b.nominal(3), ms(24));
        assert_eq!(b.nominal(4), ms(40));
        assert_eq!(b.nominal(63), ms(40));
    }

    #[test]
    fn exact_power_of_two_ratio_needs_no_extra_exponent() {
        // cap/base = 8 exactly: exponent 3 lands on the cap, and the
        // clamp keeps later attempts from shifting further.
        let b = Backoff::new(ms(1), ms(8), 0);
        assert_eq!(b.nominal(3), ms(8));
        assert_eq!(b.nominal(u32::MAX), ms(8));
    }

    #[test]
    fn high_attempt_counts_never_panic_next_delay() {
        let mut b = Backoff::new(Duration::from_nanos(1), Duration::from_secs(60), 77);
        for _ in 0..40 {
            let d = b.next_delay();
            assert!(d <= Duration::from_secs(60));
        }
        assert_eq!(b.attempts(), 40);
    }

    #[test]
    fn reset_replays_from_the_start() {
        let mut b = Backoff::new(ms(3), ms(40), 5);
        let first: Vec<_> = (0..4).map(|_| b.next_delay()).collect();
        assert_eq!(b.attempts(), 4);
        b.reset();
        let again: Vec<_> = (0..4).map(|_| b.next_delay()).collect();
        assert_eq!(first, again);
    }

    #[test]
    #[should_panic(expected = "base must be non-zero")]
    fn zero_base_rejected() {
        Backoff::new(Duration::ZERO, ms(1), 0);
    }

    #[test]
    #[should_panic(expected = "cap must be at least")]
    fn inverted_cap_rejected() {
        Backoff::new(ms(2), ms(1), 0);
    }
}
