//! Link types: the lossy in-order front link and the reliable FIFO
//! back link.

use rand::RngCore;

use crate::delay::DelayModel;
use crate::loss::LossModel;
use crate::Tick;

/// Counters maintained by every link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages handed to the link.
    pub sent: u64,
    /// Messages dropped by the loss model.
    pub dropped: u64,
}

impl LinkStats {
    /// Messages that left the link toward the receiver.
    pub fn transmitted(&self) -> u64 {
        self.sent - self.dropped
    }
}

/// Outcome of handing one message to a lossy link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transmit {
    /// The message was lost in transit.
    Dropped,
    /// The message will arrive at the given absolute tick, carrying the
    /// given link-level sequence tag (for the receiver's
    /// [`InOrderGate`]).
    DeliverAt {
        /// Absolute arrival time.
        at: Tick,
        /// Link-level sequence tag (independent of update seqnos).
        tag: u64,
    },
}

/// A UDP-like front link: per-message loss and delay; delivery order is
/// whatever the delays produce, and the receiver is expected to discard
/// overtaken messages via an [`InOrderGate`] (the paper's "tag all
/// messages with a sequence number and let the receiver discard
/// messages that arrive out of order").
#[derive(Debug)]
pub struct LossyLink {
    loss: Box<dyn LossModel>,
    delay: Box<dyn DelayModel>,
    next_tag: u64,
    stats: LinkStats,
}

impl LossyLink {
    /// Creates the link from a loss and a delay model.
    pub fn new(loss: Box<dyn LossModel>, delay: Box<dyn DelayModel>) -> Self {
        LossyLink { loss, delay, next_tag: 0, stats: LinkStats::default() }
    }

    /// Hands a message to the link at time `now`.
    pub fn transmit(&mut self, now: Tick, rng: &mut dyn RngCore) -> Transmit {
        self.stats.sent += 1;
        let tag = self.next_tag;
        self.next_tag += 1;
        if self.loss.drops(rng) {
            self.stats.dropped += 1;
            return Transmit::Dropped;
        }
        let at = now + self.delay.sample(rng);
        Transmit::DeliverAt { at, tag }
    }

    /// Link counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Restores the link's initial state (loss model, tags, counters).
    pub fn reset(&mut self) {
        self.loss.reset();
        self.next_tag = 0;
        self.stats = LinkStats::default();
    }
}

/// Receiver-side in-order enforcement for a [`LossyLink`]: accepts a
/// message iff its link tag is newer than everything accepted so far.
///
/// Messages overtaken in flight are discarded, converting reordering
/// into loss — exactly the paper's cheap ordered-delivery mechanism.
#[derive(Debug, Clone, Copy, Default)]
pub struct InOrderGate {
    last: Option<u64>,
    discarded: u64,
}

impl InOrderGate {
    /// Creates the gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a message with `tag` should be accepted; updates the
    /// watermark when it is.
    pub fn accept(&mut self, tag: u64) -> bool {
        match self.last {
            Some(last) if tag <= last => {
                self.discarded += 1;
                false
            }
            _ => {
                self.last = Some(tag);
                true
            }
        }
    }

    /// Messages discarded for arriving out of order.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }
}

/// A TCP-like back link: never drops, never reorders. Delivery time is
/// `max(now + delay, previous delivery)` so later sends cannot overtake
/// earlier ones.
#[derive(Debug)]
pub struct ReliableLink {
    delay: Box<dyn DelayModel>,
    horizon: Tick,
    stats: LinkStats,
}

impl ReliableLink {
    /// Creates the link from a delay model.
    pub fn new(delay: Box<dyn DelayModel>) -> Self {
        ReliableLink { delay, horizon: 0, stats: LinkStats::default() }
    }

    /// Hands a message to the link at time `now`, returning its
    /// arrival time.
    pub fn transmit(&mut self, now: Tick, rng: &mut dyn RngCore) -> Tick {
        self.stats.sent += 1;
        let at = (now + self.delay.sample(rng)).max(self.horizon);
        self.horizon = at;
        at
    }

    /// Link counters (nothing is ever dropped).
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Restores the link's initial state.
    pub fn reset(&mut self) {
        self.horizon = 0;
        self.stats = LinkStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bernoulli, ConstantDelay, Lossless, Scripted, UniformDelay};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn lossless_link_delivers_everything_with_constant_delay() {
        let mut link = LossyLink::new(Box::new(Lossless), Box::new(ConstantDelay::new(3)));
        let mut r = rng(0);
        for now in 0..10 {
            match link.transmit(now, &mut r) {
                Transmit::DeliverAt { at, tag } => {
                    assert_eq!(at, now + 3);
                    assert_eq!(tag, now);
                }
                Transmit::Dropped => panic!("lossless link dropped"),
            }
        }
        assert_eq!(link.stats().transmitted(), 10);
    }

    #[test]
    fn scripted_loss_reflected_in_stats() {
        let mut link =
            LossyLink::new(Box::new(Scripted::new([1])), Box::new(ConstantDelay::new(0)));
        let mut r = rng(0);
        assert!(matches!(link.transmit(0, &mut r), Transmit::DeliverAt { .. }));
        assert!(matches!(link.transmit(1, &mut r), Transmit::Dropped));
        assert!(matches!(link.transmit(2, &mut r), Transmit::DeliverAt { .. }));
        assert_eq!(link.stats(), LinkStats { sent: 3, dropped: 1 });
    }

    #[test]
    fn gate_discards_overtaken_messages() {
        let mut gate = InOrderGate::new();
        assert!(gate.accept(0));
        assert!(gate.accept(2)); // 1 still in flight
        assert!(!gate.accept(1)); // overtaken → discarded
        assert!(!gate.accept(2)); // duplicate tag
        assert!(gate.accept(3));
        assert_eq!(gate.discarded(), 2);
    }

    #[test]
    fn reliable_link_is_fifo_under_random_delays() {
        let mut link = ReliableLink::new(Box::new(UniformDelay::new(0, 20)));
        let mut r = rng(7);
        let mut prev = 0;
        for now in 0..200 {
            let at = link.transmit(now, &mut r);
            assert!(at >= prev, "reordered: {at} < {prev}");
            assert!(at >= now);
            prev = at;
        }
        assert_eq!(link.stats().dropped, 0);
    }

    #[test]
    fn lossy_link_reset_restores_tags_and_counters() {
        let mut link =
            LossyLink::new(Box::new(Bernoulli::new(1.0)), Box::new(ConstantDelay::new(0)));
        let mut r = rng(1);
        let _ = link.transmit(0, &mut r);
        link.reset();
        assert_eq!(link.stats(), LinkStats::default());
        match LossyLink::new(Box::new(Lossless), Box::new(ConstantDelay::new(0)))
            .transmit(5, &mut r)
        {
            Transmit::DeliverAt { tag, .. } => assert_eq!(tag, 0),
            Transmit::Dropped => panic!(),
        }
    }

    #[test]
    fn reliable_link_reset_clears_horizon() {
        let mut link = ReliableLink::new(Box::new(ConstantDelay::new(100)));
        let mut r = rng(2);
        let first = link.transmit(0, &mut r);
        assert_eq!(first, 100);
        link.reset();
        assert_eq!(link.transmit(0, &mut r), 100);
    }
}
