//! # rcm-net — simulated link substrate for replicated condition
//! monitoring
//!
//! The paper's §2.1 assumes two kinds of links:
//!
//! * **front links** (DM → CE) deliver in order but are *potentially
//!   lossy* — the DM is a simple device multicasting numerous updates,
//!   so a UDP-like datagram protocol is appropriate. In-order delivery
//!   is obtained by tagging messages with a sequence number and letting
//!   the receiver discard anything that arrives out of order.
//! * **back links** (CE → AD) are in-order and *lossless* — a TCP-like
//!   protocol is justified because alert traffic is light, the CE
//!   buffers alerts anyway, and losing an alert is far worse than
//!   losing an update.
//!
//! This crate provides those links for the discrete-event simulator and
//! the threaded runtime: composable [`LossModel`]s (including a
//! Gilbert–Elliott burst-loss model), [`DelayModel`]s, the lossy
//! in-order [`LossyLink`] and the FIFO lossless [`ReliableLink`]. All
//! randomness flows through caller-supplied RNGs, so every execution is
//! replayable from a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backoff;
mod delay;
mod link;
mod loss;

pub use backoff::Backoff;
pub use delay::{ConstantDelay, DelayModel, ExponentialDelay, UniformDelay};
pub use link::{InOrderGate, LinkStats, LossyLink, ReliableLink, Transmit};
pub use loss::{Bernoulli, GilbertElliott, LossModel, Lossless, Scripted};

/// Simulated time, in abstract ticks.
pub type Tick = u64;
