//! Propagation-delay models.

use std::fmt;

use rand::RngCore;

use crate::Tick;

/// Samples a per-message propagation delay in ticks.
pub trait DelayModel: fmt::Debug + Send {
    /// Samples the next message's delay.
    fn sample(&mut self, rng: &mut dyn RngCore) -> Tick;
}

/// Fixed delay for every message.
#[derive(Debug, Clone, Copy)]
pub struct ConstantDelay {
    ticks: Tick,
}

impl ConstantDelay {
    /// Creates the model.
    pub fn new(ticks: Tick) -> Self {
        ConstantDelay { ticks }
    }
}

impl DelayModel for ConstantDelay {
    fn sample(&mut self, _rng: &mut dyn RngCore) -> Tick {
        self.ticks
    }
}

/// Uniform delay in `[min, max]` — the simplest model that lets
/// messages overtake each other, producing the cross-replica
/// interleaving differences at the heart of the paper's §5.
#[derive(Debug, Clone, Copy)]
pub struct UniformDelay {
    min: Tick,
    max: Tick,
}

impl UniformDelay {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: Tick, max: Tick) -> Self {
        assert!(min <= max, "delay bounds must satisfy min <= max");
        UniformDelay { min, max }
    }
}

impl DelayModel for UniformDelay {
    fn sample(&mut self, rng: &mut dyn RngCore) -> Tick {
        let span = self.max - self.min + 1;
        self.min + rng.next_u64() % span
    }
}

/// Geometrically distributed delay with the given mean (a discrete
/// stand-in for exponential network delays).
#[derive(Debug, Clone, Copy)]
pub struct ExponentialDelay {
    mean: f64,
    base: Tick,
}

impl ExponentialDelay {
    /// Creates the model: `base` fixed ticks plus a geometric tail with
    /// the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn new(base: Tick, mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean delay must be positive");
        ExponentialDelay { mean, base }
    }
}

impl DelayModel for ExponentialDelay {
    fn sample(&mut self, rng: &mut dyn RngCore) -> Tick {
        let u = ((rng.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        let tail = (-u.ln() * self.mean).round();
        self.base + tail as Tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn constant_is_constant() {
        let mut d = ConstantDelay::new(7);
        let mut r = rng(0);
        assert!((0..100).all(|_| d.sample(&mut r) == 7));
    }

    #[test]
    fn uniform_stays_in_bounds_and_covers_them() {
        let mut d = UniformDelay::new(2, 5);
        let mut r = rng(1);
        let samples: Vec<Tick> = (0..1000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&t| (2..=5).contains(&t)));
        for want in 2..=5 {
            assert!(samples.contains(&want), "never sampled {want}");
        }
    }

    #[test]
    fn uniform_degenerate_range() {
        let mut d = UniformDelay::new(3, 3);
        let mut r = rng(2);
        assert_eq!(d.sample(&mut r), 3);
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn uniform_rejects_inverted_bounds() {
        UniformDelay::new(5, 2);
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut d = ExponentialDelay::new(1, 10.0);
        let mut r = rng(3);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut r)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 11.0).abs() < 0.5, "mean = {mean}");
    }
}
