//! Property-based invariants of the link substrate.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use rcm_net::{
    Bernoulli, ConstantDelay, GilbertElliott, InOrderGate, Lossless, LossyLink, ReliableLink,
    Transmit, UniformDelay,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn reliable_link_never_reorders(
        seed in any::<u64>(),
        sends in proptest::collection::vec(0u64..5, 1..100),
        max_delay in 0u64..50,
    ) {
        let mut link = ReliableLink::new(Box::new(UniformDelay::new(0, max_delay)));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut now = 0;
        let mut prev = 0;
        for gap in sends {
            now += gap;
            let at = link.transmit(now, &mut rng);
            prop_assert!(at >= now);
            prop_assert!(at >= prev, "reliable link reordered: {at} < {prev}");
            prev = at;
        }
        prop_assert_eq!(link.stats().dropped, 0);
    }

    #[test]
    fn lossy_link_tags_are_strictly_increasing(
        seed in any::<u64>(),
        n in 1usize..200,
        p in 0.0f64..1.0,
    ) {
        let mut link = LossyLink::new(
            Box::new(Bernoulli::new(p)),
            Box::new(ConstantDelay::new(1)),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut last_tag = None;
        for now in 0..n as u64 {
            if let Transmit::DeliverAt { tag, .. } = link.transmit(now, &mut rng) {
                if let Some(last) = last_tag {
                    prop_assert!(tag > last);
                }
                last_tag = Some(tag);
            }
        }
        let stats = link.stats();
        prop_assert_eq!(stats.sent, n as u64);
        prop_assert_eq!(stats.transmitted() + stats.dropped, n as u64);
    }

    #[test]
    fn gate_output_tags_are_strictly_increasing(
        tags in proptest::collection::vec(0u64..50, 0..100),
    ) {
        let mut gate = InOrderGate::new();
        let mut accepted = Vec::new();
        for t in &tags {
            if gate.accept(*t) {
                accepted.push(*t);
            }
        }
        prop_assert!(accepted.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(
            accepted.len() as u64 + gate.discarded(),
            tags.len() as u64
        );
    }

    #[test]
    fn loss_models_are_deterministic_per_seed(
        seed in any::<u64>(),
        n in 1usize..300,
    ) {
        for model in [
            "bernoulli",
            "gilbert",
            "lossless",
        ] {
            let make = || -> Box<dyn rcm_net::LossModel> {
                match model {
                    "bernoulli" => Box::new(Bernoulli::new(0.3)),
                    "gilbert" => Box::new(GilbertElliott::bursty(0.2, 4.0)),
                    _ => Box::new(Lossless),
                }
            };
            let mut a = make();
            let mut b = make();
            let mut ra = ChaCha8Rng::seed_from_u64(seed);
            let mut rb = ChaCha8Rng::seed_from_u64(seed);
            for _ in 0..n {
                prop_assert_eq!(a.drops(&mut ra), b.drops(&mut rb), "{}", model);
            }
        }
    }

    #[test]
    fn end_to_end_gate_converts_overtaking_to_loss(
        seed in any::<u64>(),
        n in 1usize..100,
    ) {
        // A jittery lossless link plus a gate: everything delivered is
        // in order and nothing is double-counted.
        let mut link = LossyLink::new(
            Box::new(Lossless),
            Box::new(UniformDelay::new(0, 10)),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut deliveries: Vec<(u64, u64)> = (0..n as u64)
            .filter_map(|now| match link.transmit(now, &mut rng) {
                Transmit::DeliverAt { at, tag } => Some((at, tag)),
                Transmit::Dropped => None,
            })
            .collect();
        prop_assert_eq!(deliveries.len(), n); // lossless: all sent
        // Sort by arrival time, breaking ties by tag (queue order).
        deliveries.sort_unstable();
        let mut gate = InOrderGate::new();
        let accepted: Vec<u64> = deliveries
            .iter()
            .filter(|(_, tag)| gate.accept(*tag))
            .map(|(_, tag)| *tag)
            .collect();
        prop_assert!(accepted.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(accepted.len() as u64 + gate.discarded(), n as u64);
    }
}
