//! # rcm — Replicated Condition Monitoring
//!
//! Facade crate re-exporting the whole RCM stack, a from-scratch Rust
//! implementation of *Replicated condition monitoring* (Huang &
//! Garcia-Molina, PODC 2001):
//!
//! * [`core`] — data model, condition framework, Condition Evaluator
//!   and the six Alert Displayer filtering algorithms;
//! * [`props`] — exact checkers for the paper's three correctness
//!   properties (orderedness, completeness, consistency) plus
//!   domination and maximality probes;
//! * [`net`] — simulated link substrate (loss, delay, ordering);
//! * [`sim`] — deterministic discrete-event simulator and the
//!   Monte-Carlo harness that regenerates the paper's tables;
//! * [`runtime`] — threaded actor runtime for deploying a monitoring
//!   pipeline in a real process;
//! * [`transport`] — real UDP/TCP socket transport and the topology
//!   spec behind the deployable `rcm-dm`/`rcm-ce`/`rcm-ad` node
//!   binaries;
//! * [`tree`] — hierarchical CE fan-in: aggregation trees of
//!   condition engines whose leaves emit derived verdict streams
//!   upward to a root whose display matches a flat CE byte-for-byte.
//!
//! See `examples/quickstart.rs` for a end-to-end tour, and DESIGN.md /
//! EXPERIMENTS.md for the experiment index.

pub use rcm_core as core;
pub use rcm_net as net;
pub use rcm_props as props;
pub use rcm_runtime as runtime;
pub use rcm_sim as sim;
pub use rcm_transport as transport;
pub use rcm_tree as tree;

/// One-stop imports for the common monitoring workflow.
///
/// ```rust
/// use rcm::prelude::*;
/// # use std::sync::Arc;
///
/// let x = VarId::new(0);
/// let system = MonitorSystem::builder(Arc::new(Threshold::new(x, Cmp::Gt, 100.0)))
///     .replicas(2)
///     .feed(VarFeed::new(x, vec![90.0, 120.0]))
///     .filter(|vars| Box::new(Ad4::new(vars[0])))
///     .start()?;
/// assert_eq!(system.wait().displayed.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub mod prelude {
    pub use rcm_core::ad::{apply_filter, Ad1, Ad2, Ad3, Ad4, Ad5, Ad6, AlertFilter, PerCondition};
    pub use rcm_core::condition::expr::CompiledCondition;
    pub use rcm_core::condition::{
        AbsDifference, Band, Cmp, Condition, ConditionExt, Conservative, DeltaRise, FnCondition,
        SustainedAbove, Threshold, Triggering,
    };
    pub use rcm_core::{
        transduce, Alert, CeId, CondId, Evaluator, SeqNo, Update, VarId, VarRegistry,
    };
    pub use rcm_runtime::{MonitorSystem, VarFeed};
    pub use rcm_sim::{run, Scenario, ScenarioSpec};
}

/// Compiles the README's code blocks as doctests so the front-page
/// examples can never rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
mod readme_doctests {}
